"""Benchmark results, summary metrics and baseline comparison.

A :class:`BenchReport` is the machine-readable artifact behind
``BENCH_core.json``: one :class:`BenchResult` row per benchmark case plus a
``summary`` of throughput geomeans.  :func:`compare_reports` implements the
CI smoke gate -- all summary metrics are rates (higher is better), so a
regression is simply a metric falling more than ``tolerance`` below the
committed baseline.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.report import geomean as _strict_geomean


def geomean(values) -> float:
    """Geometric mean of positive values, skipping ``None`` entries.

    Thin wrapper over :func:`repro.experiments.report.geomean` (one shared
    implementation) that drops the ``None`` cells non-sim cases produce.
    """
    return _strict_geomean(value for value in values if value is not None)


@dataclass
class BenchResult:
    """Outcome of one benchmark case.

    ``ops`` counts the unit of work (dynamic micro-ops generated, micro-ops
    committed, or sweep jobs); ``cycles`` is only set for simulation cases.
    Throughput fields are derived from the best (smallest) wall time over
    the configured repeats -- best-of, not mean, because scheduler noise
    only ever adds time.
    """

    name: str
    kind: str  # "trace_gen" | "sim" | "sweep"
    ops: int
    wall_seconds: float
    cycles: int | None = None
    detail: dict = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        """Work units per second (the headline throughput figure)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.ops / self.wall_seconds

    @property
    def cycles_per_sec(self) -> float | None:
        """Simulated cycles per wall second (``None`` for non-sim cases)."""
        if self.cycles is None or self.wall_seconds <= 0:
            return None
        return self.cycles / self.wall_seconds

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "kind": self.kind,
            "ops": self.ops,
            "wall_seconds": self.wall_seconds,
            "ops_per_sec": self.ops_per_sec,
            "cycles": self.cycles,
            "cycles_per_sec": self.cycles_per_sec,
        }
        if self.detail:
            data["detail"] = dict(self.detail)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "BenchResult":
        return cls(
            name=data["name"],
            kind=data["kind"],
            ops=int(data["ops"]),
            wall_seconds=float(data["wall_seconds"]),
            cycles=None if data.get("cycles") is None else int(data["cycles"]),
            detail=dict(data.get("detail", {})),
        )


@dataclass
class BenchReport:
    """All benchmark results plus derived summary metrics."""

    results: list[BenchResult] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def cases(self, kind: str) -> list[BenchResult]:
        """The results of one benchmark kind, in run order."""
        return [result for result in self.results if result.kind == kind]

    def summary(self) -> dict[str, float]:
        """Geomean throughput per benchmark kind (the smoke-gate metrics).

        Every metric is a rate in "per second" units, so *higher is
        better* -- :func:`compare_reports` relies on that convention.
        """
        out: dict[str, float] = {}
        trace_gen = self.cases("trace_gen")
        if trace_gen:
            out["trace_gen_ops_per_sec_geomean"] = geomean(
                case.ops_per_sec for case in trace_gen)
        sims = self.cases("sim")
        if sims:
            out["sim_ops_per_sec_geomean"] = geomean(case.ops_per_sec for case in sims)
            out["sim_cycles_per_sec_geomean"] = geomean(
                case.cycles_per_sec for case in sims)
        ff = self.cases("ff")
        if ff:
            out["ff_ops_per_sec_geomean"] = geomean(case.ops_per_sec for case in ff)
        decode = self.cases("decode")
        if decode:
            # RV32I source instructions decoded + lowered per second.
            out["decode_insns_per_sec_geomean"] = geomean(
                case.ops_per_sec for case in decode)
        for kind in ("sampled", "sampled_long"):
            cases = self.cases(kind)
            if not cases:
                continue
            out[f"{kind}_ops_per_sec_geomean"] = geomean(
                case.ops_per_sec for case in cases)
            ratios = [case.detail.get("ipc_ratio") for case in cases]
            if all(ratio for ratio in ratios):
                out[f"{kind}_ipc_ratio_geomean"] = geomean(ratios)
            speedups = [case.detail.get("speedup") for case in cases]
            if all(speedup for speedup in speedups):
                out[f"{kind}_speedup_geomean"] = geomean(speedups)
        sweeps = self.cases("sweep")
        if sweeps:
            out["sweep_jobs_per_sec"] = geomean(case.ops_per_sec for case in sweeps)
        paper = self.cases("paper")
        if paper:
            # Cells-per-second of the end-to-end smoke figure pipeline
            # (grid expansion + store + simulation + SVG/report rendering).
            out["paper_cells_per_sec"] = geomean(
                case.ops_per_sec for case in paper)
        farm = self.cases("sweep_farm")
        if farm:
            out["sweep_farm_jobs_per_sec"] = geomean(case.ops_per_sec for case in farm)
            speedups = [case.detail.get("speedup") for case in farm]
            if all(speedups):
                out["sweep_farm_speedup_geomean"] = geomean(speedups)
        adaptive = self.cases("adaptive")
        if adaptive:
            out["adaptive_ops_per_sec_geomean"] = geomean(
                case.ops_per_sec for case in adaptive)
            # Fixed-geometry detailed micro-ops per adaptive detailed
            # micro-op at equal achieved tolerance: >= 1.0 means the error
            # budget spent no more detailed simulation than the fixed
            # geometry (the acceptance gate), > 1.0 that it stopped early.
            saved = [case.detail.get("ops_saved_ratio") for case in adaptive]
            if all(saved):
                out["adaptive_ops_saved_geomean"] = geomean(saved)
            # Unpaired/paired speedup-delta variance: > 1.0 means matched
            # window offsets reduced the variance of the per-window
            # ISRB/baseline IPC ratio below the independent-sampling
            # estimate.
            gains = [case.detail.get("unpaired_delta_var", 0.0)
                     / case.detail["paired_delta_var"]
                     for case in adaptive
                     if case.detail.get("paired_delta_var")]
            if gains:
                out["adaptive_pairing_gain_geomean"] = geomean(gains)
        return out

    def to_dict(self) -> dict:
        return {
            "meta": dict(self.meta),
            "summary": self.summary(),
            "results": [result.to_dict() for result in self.results],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str | Path) -> Path:
        """Write the JSON artifact (``BENCH_core.json`` by convention)."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, data: dict) -> "BenchReport":
        return cls(
            results=[BenchResult.from_dict(row) for row in data.get("results", [])],
            meta=dict(data.get("meta", {})),
        )

    @classmethod
    def load(cls, path: str | Path) -> "BenchReport":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def to_text(self) -> str:
        """Human-readable table printed by ``repro bench``."""
        lines = []
        width = max((len(result.name) for result in self.results), default=12)
        for result in self.results:
            cycles = (f"  {result.cycles_per_sec:12.0f} cyc/s"
                      if result.cycles_per_sec is not None else "")
            extra = ""
            if "events_per_cycle" in result.detail:
                extra += f" epc={result.detail['events_per_cycle']:.2f}"
            if "speedup" in result.detail:
                extra += f" speedup={result.detail['speedup']:.2f}x"
            lines.append(f"{result.name:{width}s}  [{result.kind}] "
                         f"{result.ops_per_sec:12.1f} ops/s{cycles} "
                         f" wall={result.wall_seconds:.3f}s{extra}")
        lines.append("")
        for key, value in sorted(self.summary().items()):
            lines.append(f"{key:32s} {value:12.1f}")
        return "\n".join(lines)


def default_meta(**extra) -> dict:
    """Environment metadata recorded in every report."""
    meta = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
    }
    meta.update(extra)
    return meta


def compare_reports(current: BenchReport, baseline: BenchReport,
                    tolerance: float = 0.30,
                    kinds: list[str] | None = None) -> list[str]:
    """Compare throughput against a committed baseline.

    Returns a list of human-readable regression messages; empty means the
    gate passes.  Only cases present *in both reports by name* are
    compared -- per-kind geomeans are recomputed over that shared subset,
    so a reduced ``--smoke`` run gated against the committed full-suite
    ``BENCH_core.json`` compares like against like instead of a fast
    subset against a full-suite average (and adding or removing a
    benchmark case never fails the gate by itself).  Improvements are
    never failures.  ``tolerance`` is the allowed fractional slowdown
    (0.30 = 30%), sized generously because CI machines differ in absolute
    speed run-to-run.

    ``kinds`` restricts the gate to those benchmark kinds (e.g.
    ``["sim"]`` for the tight tracing-off overhead gate, which needs a
    much smaller tolerance than the microbenchmark kinds can hold on
    shared CI runners).  ``None`` gates every shared kind.
    """
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must be in [0, 1)")
    current_by_name = {result.name: result for result in current.results}
    baseline_by_name = {result.name: result for result in baseline.results}
    shared = sorted(set(current_by_name) & set(baseline_by_name))

    metrics: list[tuple[str, float, float]] = []
    shared_kinds = sorted({baseline_by_name[name].kind for name in shared})
    if kinds is not None:
        shared_kinds = [kind for kind in shared_kinds if kind in kinds]
    for kind in shared_kinds:
        names = [name for name in shared if baseline_by_name[name].kind == kind]
        metrics.append((
            f"{kind}_ops_per_sec_geomean[{len(names)} shared case(s)]",
            geomean(current_by_name[name].ops_per_sec for name in names),
            geomean(baseline_by_name[name].ops_per_sec for name in names),
        ))
        if any(baseline_by_name[name].cycles_per_sec is not None for name in names):
            metrics.append((
                f"{kind}_cycles_per_sec_geomean[{len(names)} shared case(s)]",
                geomean(current_by_name[name].cycles_per_sec for name in names),
                geomean(baseline_by_name[name].cycles_per_sec for name in names),
            ))

    regressions: list[str] = []
    for key, now, base_value in metrics:
        if base_value <= 0 or now <= 0:
            continue
        floor = base_value * (1.0 - tolerance)
        if now < floor:
            regressions.append(
                f"{key}: {now:.1f}/s is {(1 - now / base_value) * 100:.1f}% below "
                f"baseline {base_value:.1f}/s (allowed {tolerance * 100:.0f}%)")
    return regressions
