"""Benchmark case definitions and the suite runner.

The suite has three tiers, mirroring where simulator time actually goes:

* ``trace_gen/<workload>`` -- the functional executor, one case per
  benchmarked workload;
* ``sim/<scheme>/<workload>`` -- the cycle-level core, one case per
  (tracker scheme, workload) cell, replaying a pre-generated trace so only
  the timing model is measured;
* ``ff/<workload>`` -- the compiled functional fast-forward core
  (:class:`~repro.isa.functional.FunctionalCore`), the fast half of the
  two-speed engine;
* ``sampled/<workload>`` -- two-speed sampled simulation end to end, with
  a full-detail reference run of the same length; the case detail records
  the sampled/full IPC ratio and wall-clock speedup (the sampling-error
  acceptance numbers);
* ``sampled_long/<workload>`` -- the long-horizon (>=1M micro-op)
  workloads that are only tractable under sampling, again with a one-shot
  full-detail reference for the speedup figure;
* ``sweep_farm/<workload>`` -- a multi-scheme sampled sweep run with the
  shared-warmup checkpoint farm and again with per-scheme independent
  warming; the case detail records the wall-clock speedup (results are
  identical by construction, and the tier verifies that);
* ``adaptive/<workload>`` -- error-budget sampling vs the fixed geometry
  at the accuracy the fixed run *achieved*: the case detail records the
  detailed micro-ops saved at equal tolerance plus the paired-vs-unpaired
  speedup-delta variance from replaying one frozen plan (matched window
  offsets) under the baseline and ISRB machines;
* ``decode/<binary>`` -- the RISC-V frontend (RV32I decode + lowering into
  the micro-op ISA) on the checked-in sample binary, replicated to a fixed
  instruction budget, measured in source instructions/second;
* ``sweep/small`` -- an end-to-end :func:`~repro.experiments.runner.run_sweep`
  over a tiny matrix (grid expansion + trace cache + in-process pool +
  report aggregation), measured in jobs/second;
* ``paper/smoke`` -- the paper-figure pipeline (``repro paper --smoke``)
  end to end into a scratch directory: figure grids, results store, SVG
  and report rendering, measured in grid cells/second.  Guards the
  acceptance bar that the smoke deliverable stays CI-cheap.

Wall time per case is best-of-``repeat`` (scheduler noise only ever adds
time).  The clock is injectable for unit tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.report import BenchReport, BenchResult, default_meta
from repro.experiments.grid import SCHEME_PRESETS, SweepSpec
from repro.experiments.runner import run_sweep
from repro.isa.functional import FunctionalCore
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate_trace
from repro.pipeline.sampling import SampledSimulator, SamplingConfig
from repro.workloads import DEFAULT_SUITE, build_workload, generate_trace, list_workloads

#: Workloads the default suite times: a sharing-heavy one, a spill/STLF one,
#: a branchy one, a pointer chase and a streaming kernel -- small enough to
#: finish in seconds, diverse enough that a hot-path regression in any
#: pipeline stage moves at least one of them.
DEFAULT_BENCH_WORKLOADS: tuple[str, ...] = (
    "move_chain", "spill_reload", "branchy", "load_load", "stride_stream",
)

#: Tracker schemes the default suite times (the paper's headline scheme, the
#: unlimited reference, a walk-recovery scheme and the no-sharing baseline).
DEFAULT_BENCH_SCHEMES: tuple[str, ...] = ("baseline", "isrb", "refcount", "matrix")

#: Repository root, used to resolve the decode tier's sample binary so the
#: bench suite works from any working directory.
_REPO_ROOT = Path(__file__).resolve().parents[3]


@dataclass(frozen=True)
class BenchConfig:
    """What to benchmark and how hard.

    ``smoke`` presets (see :meth:`smoke`) shrink everything so the suite
    finishes in a few seconds on CI while still touching every tier.
    """

    workloads: tuple[str, ...] = DEFAULT_BENCH_WORKLOADS
    schemes: tuple[str, ...] = DEFAULT_BENCH_SCHEMES
    max_ops: int = 20_000
    seed: int = 1
    repeat: int = 2
    sweep: bool = True
    sweep_workloads: tuple[str, ...] = ("spill_reload", "move_chain")
    sweep_schemes: tuple[str, ...] = ("isrb", "refcount_checkpoint")
    # -- the two-speed (sampled) tiers ---------------------------------------------
    #: Fast-forward tier trace length.  Deliberately *not* reduced by the
    #: smoke preset: ff and sampled cases are cheap enough to run at full
    #: scale everywhere, which keeps same-named cases comparable between a
    #: smoke run and the committed full-suite BENCH_core.json.
    ff_max_ops: int = 20_000
    #: Master switch of the sampled-vs-full accuracy tier.
    sampled: bool = True
    #: Sampled-vs-full accuracy tier: every workload here is run once in
    #: full detail and once sampled at the same length; () = default suite.
    sampled_workloads: tuple[str, ...] = ()
    sampled_max_ops: int = 20_000
    sampling: SamplingConfig = field(default_factory=lambda: SamplingConfig(
        period=5_000, window=1_200, warmup=500, cooldown=300))
    #: Long-horizon tier: >=1M-op workloads, one full-detail reference run
    #: (timed once -- it is the expensive thing sampling replaces) plus the
    #: sampled run; () disables the tier (the smoke preset does).
    long_workloads: tuple[str, ...] = ("long_phase_mix", "long_stride_drift")
    long_max_ops: int = 1_000_000
    long_sampling: SamplingConfig = field(default_factory=SamplingConfig)
    # -- the RISC-V frontend (decode) tier ---------------------------------------------
    #: Times RV32I decode + lowering of the checked-in sample binary,
    #: replicated to ``decode_target_insns`` source instructions.  Cheap and
    #: fixed-scale, so the smoke preset keeps it and the case stays
    #: comparable between a smoke run and the committed BENCH_core.json.
    decode: bool = True
    decode_binary: str = "examples/rv32i/checksum.bin"
    decode_target_insns: int = 20_000
    # -- the checkpoint-farm sweep tier ----------------------------------------------
    #: A multi-scheme sampled sweep on one workload, run twice: with the
    #: shared-warmup checkpoint farm and with per-scheme independent
    #: warming.  The case detail records the wall-clock speedup (results
    #: are identical by construction).  Deliberately not reduced by the
    #: smoke preset, like the other sampled tiers, so the case stays
    #: comparable between a smoke run and the committed BENCH_core.json.
    farm_sweep: bool = True
    farm_workload: str = "long_phase_mix"
    farm_schemes: tuple[str, ...] = ("isrb", "refcount", "mit", "matrix")
    farm_max_ops: int = 1_000_000
    farm_sampling: SamplingConfig = field(default_factory=lambda: SamplingConfig(
        period=250_000, window=800, warmup=250, cooldown=150))
    # -- the adaptive (error-budget) sampling tier --------------------------------------
    #: One workload sampled twice: the fixed reference geometry below, then
    #: error-budget mode at the relative CI half-width the fixed run
    #: *achieved* (equal accuracy) with the fixed run's window count as the
    #: adaptive ceiling -- which makes "detailed ops saved >= 0"
    #: structural.  The case also replays the frozen adaptive plan under
    #: the baseline and ISRB machines to measure the paired
    #: (matched-offset) speedup-delta variance against the unpaired
    #: estimator.  Fixed-scale like the farm tier: not reduced by the
    #: smoke preset, so the case stays comparable between a smoke run and
    #: the committed BENCH_core.json.
    adaptive: bool = True
    adaptive_workload: str = "long_phase_mix"
    adaptive_max_ops: int = 200_000
    adaptive_sampling: SamplingConfig = field(default_factory=lambda: SamplingConfig(
        period=20_000, window=1_200, warmup=500, cooldown=300))
    # -- the paper-figure pipeline tier ------------------------------------------------
    #: Time ``run_paper(smoke=True)`` end to end (fresh store, scratch
    #: output).  Like the other fixed-scale tiers it is *not* reduced by
    #: the smoke preset: the smoke grid is already its CI-sized form, so
    #: the case stays comparable between a smoke run and the committed
    #: BENCH_core.json.
    paper: bool = True

    def __post_init__(self) -> None:
        if self.max_ops < 1 or self.ff_max_ops < 1 or self.sampled_max_ops < 1 \
                or self.long_max_ops < 1 or self.adaptive_max_ops < 1:
            raise ValueError("max_ops values must be >= 1")
        if self.decode_target_insns < 1:
            raise ValueError("decode_target_insns must be >= 1")
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")
        known = list_workloads()
        bad = [name for name in (*self.workloads, *self.sweep_workloads,
                                 *self.sampled_workloads, *self.long_workloads,
                                 self.farm_workload, self.adaptive_workload)
               if name not in known]
        if bad:
            raise ValueError(f"unknown workload(s) {bad}; known: {known}")
        bad = [name for name in (*self.schemes, *self.sweep_schemes,
                                 *self.farm_schemes)
               if name != "baseline" and name not in SCHEME_PRESETS]
        if bad:
            raise ValueError(
                f"unknown scheme(s) {bad}; known: baseline, {list(SCHEME_PRESETS)}")

    @classmethod
    def smoke(cls) -> "BenchConfig":
        """The reduced CI gate configuration (a few seconds end to end)."""
        return cls(
            workloads=("move_chain", "spill_reload"),
            schemes=("baseline", "isrb"),
            max_ops=4_000,
            repeat=1,
            sampled_workloads=("move_chain", "spill_reload"),
            long_workloads=(),
        )

    def resolved_sampled_workloads(self) -> tuple[str, ...]:
        """Workloads of the sampled accuracy tier (default: the full suite)."""
        return self.sampled_workloads or tuple(DEFAULT_SUITE)

    def config_for_scheme(self, scheme: str) -> CoreConfig:
        """The core configuration a scheme name benches under.

        ``"baseline"`` is the no-sharing Table-1 machine; every real scheme
        runs with its preset sizing plus move elimination and SMB enabled
        (the configuration whose hot path the optimisations target).
        """
        if scheme == "baseline":
            return CoreConfig()
        preset = SCHEME_PRESETS[scheme]
        return (CoreConfig()
                .with_tracker(scheme=preset["scheme"], entries=preset["entries"],
                              counter_bits=preset["counter_bits"])
                .with_move_elimination()
                .with_smb())


@dataclass
class _Timer:
    """Best-of-N stopwatch around a thunk."""

    clock: object = field(default=time.perf_counter)

    def best_of(self, repeat: int, thunk) -> tuple[float, object]:
        best = None
        value = None
        for _ in range(repeat):
            start = self.clock()
            value = thunk()
            elapsed = self.clock() - start
            if best is None or elapsed < best:
                best = elapsed
        return best, value


def run_benchmarks(config: BenchConfig | None = None, clock=None,
                   progress=None) -> BenchReport:
    """Run the benchmark suite and return its report.

    ``clock`` overrides the wall-clock source (tests inject a fake);
    ``progress(case_name)`` is called before each case starts.
    """
    config = config or BenchConfig()
    timer = _Timer(clock or time.perf_counter)
    report = BenchReport(meta=default_meta(
        max_ops=config.max_ops,
        seed=config.seed,
        repeat=config.repeat,
        workloads=list(config.workloads),
        schemes=list(config.schemes),
    ))

    # Tier 1: trace generation (the functional executor), and keep the
    # traces so the simulation tier measures only the timing model.
    traces = {}
    for workload in config.workloads:
        name = f"trace_gen/{workload}"
        if progress is not None:
            progress(name)
        wall, trace = timer.best_of(
            config.repeat,
            lambda workload=workload: generate_trace(
                workload, max_ops=config.max_ops, seed=config.seed))
        traces[workload] = trace
        report.results.append(BenchResult(
            name=name, kind="trace_gen", ops=len(trace), wall_seconds=wall))

    # Tier 2: cycle-level simulation per (scheme, workload).
    for scheme in config.schemes:
        core_config = config.config_for_scheme(scheme)
        for workload in config.workloads:
            name = f"sim/{scheme}/{workload}"
            if progress is not None:
                progress(name)
            trace = traces[workload]
            wall, result = timer.best_of(
                config.repeat, lambda trace=trace: simulate_trace(trace, core_config))
            report.results.append(BenchResult(
                name=name, kind="sim", ops=result.instructions, wall_seconds=wall,
                cycles=result.cycles,
                detail={"ipc": result.ipc, "variant": core_config.variant_name(),
                        "skipped_cycles": result.stat("skipped_cycles"),
                        "events_per_cycle": result.stat("events_per_cycle", 1.0)}))

    # Tier 3: the compiled functional fast-forward core (no trace, no ops).
    for workload in config.workloads:
        name = f"ff/{workload}"
        if progress is not None:
            progress(name)
        image = build_workload(workload, seed=config.seed)
        retired = 0

        def run_ff(image=image):
            nonlocal retired
            retired = FunctionalCore.from_image(image).fast_forward(config.ff_max_ops)
            return retired
        wall, _ = timer.best_of(config.repeat, run_ff)
        report.results.append(BenchResult(
            name=name, kind="ff", ops=retired, wall_seconds=wall))

    # Tier 3b: the RISC-V frontend -- RV32I decode + lowering into the
    # micro-op ISA, in source instructions per second.  The sample binary is
    # tiny, so decode+lower is repeated to a fixed instruction budget; ops
    # counts source instructions, not the (larger) lowered micro-op count.
    if config.decode:
        from repro.isa.riscv import decode_all, load_binary, lower

        binary_path = Path(config.decode_binary)
        if not binary_path.is_absolute():
            binary_path = _REPO_ROOT / binary_path
        name = f"decode/{binary_path.stem}"
        if progress is not None:
            progress(name)
        binary = load_binary(binary_path)
        insns = sum(1 for word in decode_all(binary.text) if word is not None)
        reps = max(1, -(-config.decode_target_insns // max(insns, 1)))

        def run_decode():
            program = None
            for _ in range(reps):
                decode_all(binary.text)
                program = lower(binary, name=binary_path.stem)
            return program
        wall, program = timer.best_of(config.repeat, run_decode)
        report.results.append(BenchResult(
            name=name, kind="decode", ops=reps * insns, wall_seconds=wall,
            detail={"insns": insns, "reps": reps,
                    "uops_per_insn": len(program) / insns if insns else 0.0}))

    # Tiers 4 and 5: sampled-vs-full accuracy and speedup (timed once per
    # case -- the full-detail reference run is exactly the cost sampling
    # removes), over the default suite and then the long-horizon workloads
    # that are only tractable under sampling.
    isrb_config = config.config_for_scheme("isrb")
    sampled_workloads = config.resolved_sampled_workloads() if config.sampled else ()
    sampled_tiers = (
        ("sampled", sampled_workloads, config.sampled_max_ops, config.sampling),
        ("sampled_long", config.long_workloads, config.long_max_ops,
         config.long_sampling),
    )
    for kind, tier_workloads, max_ops, sampling in sampled_tiers:
        for workload in tier_workloads:
            name = f"{kind}/{workload}"
            if progress is not None:
                progress(name)
            full_wall, full = timer.best_of(
                1, lambda workload=workload, max_ops=max_ops: simulate_trace(
                    generate_trace(workload, max_ops=max_ops, seed=config.seed),
                    isrb_config))
            simulator = SampledSimulator(isrb_config, sampling)
            wall, sampled = timer.best_of(
                1, lambda workload=workload, max_ops=max_ops:
                    simulator.run_workload(workload, max_ops=max_ops,
                                           seed=config.seed))
            report.results.append(BenchResult(
                name=name, kind=kind, ops=sampled.instructions, wall_seconds=wall,
                cycles=sampled.cycles,
                detail={
                    "ipc_full": full.ipc,
                    "ipc_sampled": sampled.ipc,
                    "ipc_ratio": sampled.ipc / full.ipc,
                    "speedup": full_wall / wall if wall > 0 else 0.0,
                    "full_wall_seconds": full_wall,
                    "windows": sampled.stat("sampling_windows"),
                }))

    # Tier 6: the checkpoint-farm sweep -- one multi-scheme sampled sweep
    # run both ways (shared warmup vs per-scheme independent warming), each
    # timed once; the independent run is exactly the redundant work the
    # farm removes, so its wall time is the honest denominator.
    if config.farm_sweep:
        name = f"sweep_farm/{config.farm_workload}"
        if progress is not None:
            progress(name)
        farm_spec = SweepSpec(
            schemes=config.farm_schemes,
            workloads=(config.farm_workload,),
            max_ops=config.farm_max_ops,
            seed=config.seed,
            sample_period=config.farm_sampling.period,
            sample_window=config.farm_sampling.window,
            sample_warmup=config.farm_sampling.warmup,
            sample_cooldown=config.farm_sampling.cooldown,
        )
        # The two sides are timed in interleaved pairs (farm, independent,
        # farm, independent, ...) so ambient load drift hits both equally
        # and the reported ratio stays stable; each side keeps its best
        # wall time, like every other repeated case.  Earlier tiers leave a
        # large live heap (cached traces, sampled runs) whose GC scans tax
        # the allocation-heavy planning pass disproportionately, so the
        # pre-existing heap is frozen out of collection for the duration.
        import gc

        gc.collect()
        gc.freeze()
        try:
            farm_wall = independent_wall = None
            farm_report = independent_report = None
            for _ in range(config.repeat):
                wall, farm_report = timer.best_of(
                    1, lambda: run_sweep(farm_spec, workers=1, cache_dir=None,
                                         farm=True))
                if farm_wall is None or wall < farm_wall:
                    farm_wall = wall
                wall, independent_report = timer.best_of(
                    1, lambda: run_sweep(farm_spec, workers=1, cache_dir=None,
                                         farm=False))
                if independent_wall is None or wall < independent_wall:
                    independent_wall = wall
        finally:
            gc.unfreeze()
        if farm_report.to_markdown() != independent_report.to_markdown():
            raise RuntimeError(
                "checkpoint-farm sweep disagrees with independent warming; "
                "the shared-warmup invariant is broken")
        report.results.append(BenchResult(
            name=name, kind="sweep_farm", ops=farm_spec.job_count(),
            wall_seconds=farm_wall,
            detail={
                "speedup": independent_wall / farm_wall if farm_wall > 0 else 0.0,
                "independent_wall_seconds": independent_wall,
                "schemes": list(config.farm_schemes),
                "failures": len(farm_report.failures),
            }))
        if farm_report.failures:
            raise RuntimeError(
                f"bench farm sweep had {len(farm_report.failures)} failed job(s): "
                + ", ".join(f["job_id"] for f in farm_report.failures))

    # Tier 6b: error-budget sampling vs the fixed reference geometry, at
    # equal accuracy.  The fixed run comes first; the error-budget run then
    # targets the relative CI half-width the fixed run achieved, with the
    # fixed run's window count as its ceiling, so "detailed micro-ops
    # saved >= 0" holds structurally and any positive saving is the
    # stopping rule quitting early at the same confidence.  The frozen
    # adaptive plan is finally replayed under the baseline and ISRB
    # machines to measure how much the matched window offsets shrink the
    # per-window speedup-delta variance vs an unpaired estimator.
    if config.adaptive:
        name = f"adaptive/{config.adaptive_workload}"
        if progress is not None:
            progress(name)
        from repro.common.statistics import weighted_mean_std
        from repro.pipeline.sampling import window_samples

        baseline_config = config.config_for_scheme("baseline")
        fixed_sim = SampledSimulator(isrb_config, config.adaptive_sampling)
        fixed_wall, fixed = timer.best_of(
            1, lambda: fixed_sim.run_workload(config.adaptive_workload,
                                              max_ops=config.adaptive_max_ops,
                                              seed=config.seed))
        achieved = fixed.stats.get("sampling_ipc_rel_ci95")
        tolerance = min(max(achieved if achieved is not None else 0.05,
                            0.001), 0.9)
        fixed_windows = int(fixed.stat("sampling_windows"))
        budget = SamplingConfig(
            period=config.adaptive_sampling.period,
            window=config.adaptive_sampling.window,
            warmup=config.adaptive_sampling.warmup,
            cooldown=config.adaptive_sampling.cooldown,
            warm_gaps=config.adaptive_sampling.warm_gaps,
            tolerance=tolerance,
            min_windows=2,
            max_windows=max(fixed_windows, 2),
        )
        adaptive_sim = SampledSimulator(isrb_config, budget)
        image = build_workload(config.adaptive_workload, seed=config.seed)

        def run_adaptive():
            plan = adaptive_sim.plan(image, config.adaptive_workload,
                                     config.adaptive_max_ops)
            return plan, adaptive_sim.execute_plan(plan)
        adaptive_wall, (plan, adaptive_result) = timer.best_of(1, run_adaptive)

        def detailed_ops(result):
            return int(result.stat("sampled_instructions")
                       + result.stat("warmup_instructions")
                       + result.stat("cooldown_instructions"))
        ops_fixed = detailed_ops(fixed)
        ops_adaptive = detailed_ops(adaptive_result)

        # Paired speedup deltas: one frozen plan replayed under both
        # machines means window i covers identical instructions on each
        # side, so the per-window ISRB/baseline IPC ratios difference out
        # the program-phase variance the two runs share.  The unpaired
        # term is the delta-method variance the same windows would give if
        # the two sides were sampled independently.
        base_windows = window_samples(plan, baseline_config)
        isrb_windows = window_samples(plan, isrb_config)
        weights = [float(ops) for ops, _ in base_windows]
        base_ipcs = [ops / cycles for ops, cycles in base_windows]
        isrb_ipcs = [ops / cycles for ops, cycles in isrb_windows]
        ratios = [i / b for i, b in zip(isrb_ipcs, base_ipcs)]
        ratio_mean, ratio_std = weighted_mean_std(ratios, weights)
        base_mean, base_std = weighted_mean_std(base_ipcs, weights)
        isrb_mean, isrb_std = weighted_mean_std(isrb_ipcs, weights)
        paired_var = (ratio_std or 0.0) ** 2
        unpaired_var = (ratio_mean ** 2) * (
            ((isrb_std or 0.0) / isrb_mean) ** 2
            + ((base_std or 0.0) / base_mean) ** 2)

        report.results.append(BenchResult(
            name=name, kind="adaptive", ops=adaptive_result.instructions,
            wall_seconds=adaptive_wall, cycles=adaptive_result.cycles,
            detail={
                "tolerance": tolerance,
                "stop_reason": plan.stop_reason,
                "windows_fixed": fixed_windows,
                "windows_adaptive": int(adaptive_result.stat("sampling_windows")),
                "detailed_ops_fixed": ops_fixed,
                "detailed_ops_adaptive": ops_adaptive,
                "detailed_ops_saved": ops_fixed - ops_adaptive,
                "ops_saved_ratio": (ops_fixed / ops_adaptive
                                    if ops_adaptive else 0.0),
                "probe_ops": plan.probe_detailed_ops,
                "ipc_fixed": fixed.stat("sampling_ipc_estimate"),
                "ipc_adaptive": adaptive_result.stat("sampling_ipc_estimate"),
                "rel_ci_fixed": achieved,
                "rel_ci_adaptive":
                    adaptive_result.stats.get("sampling_ipc_rel_ci95"),
                "paired_delta_var": paired_var,
                "unpaired_delta_var": unpaired_var,
                "fixed_wall_seconds": fixed_wall,
            }))

    # Tier 7: the paper-figure pipeline, smoke-sized, end to end (grids ->
    # results store -> charts/report).  A fresh scratch directory per
    # repeat so every run simulates every cell (no store resume).
    if config.paper:
        name = "paper/smoke"
        if progress is not None:
            progress(name)
        import shutil
        import tempfile

        from repro.paper import run_paper

        def run_paper_smoke():
            scratch = tempfile.mkdtemp(prefix="repro-bench-paper-")
            try:
                return run_paper(smoke=True, out_dir=scratch,
                                 seed=config.seed)
            finally:
                shutil.rmtree(scratch, ignore_errors=True)

        wall, paper_summary = timer.best_of(config.repeat, run_paper_smoke)
        report.results.append(BenchResult(
            name=name, kind="paper", ops=paper_summary.total_cells,
            wall_seconds=wall,
            detail={"figures": len(paper_summary.figure_data),
                    "cells": paper_summary.total_cells,
                    "failures": paper_summary.failures}))
        if paper_summary.failures:
            raise RuntimeError(
                f"bench paper pipeline had {paper_summary.failures} "
                "failed cell(s)")

    # Tier 8: a small end-to-end sweep (grid -> cache-less run -> report).
    if config.sweep:
        name = "sweep/small"
        if progress is not None:
            progress(name)
        spec = SweepSpec(
            schemes=config.sweep_schemes,
            workloads=config.sweep_workloads,
            max_ops=min(config.max_ops, 4_000),
            seed=config.seed,
        )
        wall, sweep_report = timer.best_of(
            1, lambda: run_sweep(spec, workers=1, cache_dir=None))
        report.results.append(BenchResult(
            name=name, kind="sweep", ops=spec.job_count(), wall_seconds=wall,
            detail={"failures": len(sweep_report.failures),
                    "variants": list(sweep_report.variants)}))
        if sweep_report.failures:
            raise RuntimeError(
                f"bench sweep had {len(sweep_report.failures)} failed job(s): "
                + ", ".join(f["job_id"] for f in sweep_report.failures))

    return report
