"""The benchmark subsystem: a repeatable performance baseline for the simulator.

The paper's evaluation needs thousands of (workload x scheme x sizing)
simulations, so the *throughput of the simulator itself* is a first-class
concern.  This package measures it at three grains:

* **trace generation** -- the functional executor, per workload;
* **simulation** -- the cycle-level core, per tracker scheme over a
  representative workload set;
* **end-to-end sweep** -- a small ``run_sweep`` including cache warming,
  job execution and report aggregation.

``python -m repro bench`` runs the suite and writes ``BENCH_core.json``
(machine-readable: ops/sec, cycles simulated/sec, wall seconds, geomeans)
so that every PR can be compared against the committed baseline;
``--smoke`` re-runs a reduced suite and fails when a benchmark errors or a
summary metric regresses beyond tolerance.
"""

from repro.bench.report import BenchReport, BenchResult, compare_reports
from repro.bench.suite import BenchConfig, run_benchmarks

__all__ = [
    "BenchConfig",
    "BenchReport",
    "BenchResult",
    "compare_reports",
    "run_benchmarks",
]
