"""SMARTS-style sampled simulation: functional fast-forward + detailed windows.

The cycle-level core is 40-80x slower than the functional core, which caps
how long a workload the harness can study.  :class:`SampledSimulator`
interleaves the two speeds: each sampling *period* starts with a detailed
stretch (``warmup`` instructions to refill the pipeline-adjacent state,
then a measured ``window``), after which the rest of the period is retired
by :class:`~repro.isa.functional.FunctionalCore` at millions of micro-ops
per second.  Micro-architectural state -- branch predictors, caches, the
rename state and the register-sharing tracker -- is carried across the
fast-forward gaps by the :class:`~repro.pipeline.snapshot.CoreSnapshot`
API, so every window starts warm.

Measurement methodology (see DESIGN.md for the error analysis):

* each detailed stretch (warmup + window) is replayed as *one*
  :meth:`Core.run`, resumed from the previous stretch's snapshot, so the
  detailed model never sees the fast-forward gap;
* the window's cycle count is measured from the commit of the last warmup
  micro-op (the run's ``commit_milestone``) to the end of the run -- the
  warmup therefore absorbs both the stale-state transient *and* the
  pipeline-fill ramp of restarting a drained pipeline, and the window
  measures mid-steady-state throughput (only the end-of-run drain remains
  inside the window, a small downward bias);
* the detailed stretch's offset *rotates* within the period from one
  sample to the next (a deterministic golden-ratio stride over the gap),
  so windows cannot systematically alias with program periodicity -- a
  workload whose slow phase recurs every N instructions would otherwise be
  sampled always-in or always-out of it;
* the steady-state IPC point estimate is the ratio estimator
  ``sum(window instructions) / sum(window cycles)``;
* the whole-run cycle estimate is *hybrid*: every detailed stretch
  contributes its actual simulated cycles (so one-off transients such as
  the cold-start ramp are charged once, at their true cost, instead of
  being extrapolated), and only the fast-forwarded instructions are
  extrapolated at the steady-state IPC;
* the per-window IPC sample additionally yields an instruction-weighted
  mean and standard deviation and a Student-t 95% confidence interval
  (weighting matters when the budget truncates the last window; the t
  distribution matters at the handful-of-windows sample sizes this module
  lives at), all recorded on the
  :class:`~repro.pipeline.result.SimulationResult`.

Error-budget (adaptive) mode: a :class:`SamplingConfig` with a
``tolerance`` drops the fixed period and instead *iterates* the planning
pass -- place ``min_windows`` windows evenly over the run, probe them on a
scheme-independent machine (:meth:`SampledSimulator.probe_config`), and
keep growing the window count until the relative 95% CI half-width of the
per-window IPC falls below the tolerance (or the ``max_windows`` ceiling
is hit).  The final geometry is frozen into the :class:`SamplePlan`, so
every tracker scheme of a sweep executes the *same matched window
offsets* -- per-cell speedup deltas then difference out the shared
program-phase variance (paired sampling).  Placement depends only on
``(workload, seed, max_ops, geometry)``, never on wall clock or host, so
resume and checkpoint-farm byte-identity are preserved.

A worked example -- a 28%-detailed geometry, run end to end::

    >>> from repro.pipeline.config import CoreConfig
    >>> from repro.pipeline.sampling import SamplingConfig, simulate_sampled
    >>> cfg = SamplingConfig(period=10_000, window=2_000, warmup=500,
    ...                      cooldown=300)
    >>> cfg.detailed_per_period
    2800
    >>> f"{cfg.detailed_fraction:.0%}"
    '28%'
    >>> result = simulate_sampled("move_chain", CoreConfig(), cfg,
    ...                           max_ops=20_000)
    >>> result.instructions          # every retired micro-op is accounted
    20000
    >>> int(result.stat("sampling_windows"))
    2
    >>> result.stat("fastforwarded_instructions") > 10_000
    True

Error-budget mode instead asks for an accuracy, not a geometry::

    >>> budget = SamplingConfig(window=300, warmup=200, cooldown=100,
    ...                         tolerance=0.5, min_windows=2, max_windows=4)
    >>> adaptive = simulate_sampled("move_chain", CoreConfig(), budget,
    ...                             max_ops=8_000)
    >>> int(adaptive.stat("sampling_windows")) >= 2
    True
    >>> adaptive.stat("sampling_tolerance")
    0.5
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.ras import ReturnAddressStack
from repro.common.history import PathHistory, ShiftHistory
from repro.common.statistics import t_critical_95, weighted_mean_std
from repro.isa.executor import Trace
from repro.isa.functional import FunctionalCore
from repro.isa.opcodes import Opcode
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core
from repro.pipeline.result import SimulationResult
from repro.pipeline.snapshot import CoreSnapshot
from repro.telemetry.metrics import (
    CONSTANT_SUFFIXES,
    MEAN_SUFFIXES,
    SAMPLING_STOP_REASONS,
    MetricsRegistry,
)


@dataclass(frozen=True)
class SamplingConfig:
    """Geometry of the two-speed schedule.

    Every ``period`` retired micro-ops, ``warmup + window + cooldown`` of
    them are simulated in detail (only the ``window`` portion is measured)
    and the rest are fast-forwarded functionally.  ``period == warmup +
    window + cooldown`` degenerates to full detailed simulation in
    windowed form (useful for validating the snapshot machinery).
    """

    period: int = 50_000
    window: int = 2_000
    warmup: int = 500
    #: Detailed micro-ops simulated *after* the window so its last commit is
    #: measured mid-stream instead of on a pipeline drain.  Should cover the
    #: ROB plus the front-end queue of the measured machine.
    cooldown: int = 300
    #: Functionally warm long-lived state (caches, prefetcher, DRAM rows,
    #: BTB, RAS, branch/path history) during the fast-forward gaps.
    #: Without warming, every window opens on state frozen at the previous
    #: window's end and memory-bound workloads are systematically
    #: under-estimated.
    warm_gaps: bool = True
    #: Error-budget mode: when set, the fixed ``period`` no longer dictates
    #: placement -- the planner spreads windows evenly and grows their count
    #: until the relative Student-t 95% CI half-width of the per-window IPC
    #: sample drops to ``tolerance`` (see the module docstring).  ``None``
    #: keeps the classic fixed geometry.
    tolerance: float | None = None
    #: Window-count floor and ceiling of the error-budget search.  The floor
    #: must leave a dispersion estimate (>= 2); the ceiling bounds the
    #: detailed-simulation cost on genuinely noisy workloads.
    min_windows: int = 5
    max_windows: int = 64

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("sampling window must be >= 1 instruction")
        if self.warmup < 0 or self.cooldown < 0:
            raise ValueError("sampling warmup and cooldown must be >= 0")
        if self.period < self.warmup + self.window + self.cooldown:
            raise ValueError(
                f"sampling period ({self.period}) must cover warmup + window "
                f"+ cooldown ({self.warmup} + {self.window} + {self.cooldown})")
        if self.tolerance is not None and not 0.0 < self.tolerance < 1.0:
            raise ValueError(
                "sampling tolerance is a relative CI half-width and must lie "
                f"in (0, 1), got {self.tolerance}")
        if self.min_windows < 2:
            raise ValueError(
                "min_windows must be >= 2: a single window carries no "
                "dispersion estimate, so the stopping rule could never fire")
        if self.max_windows < self.min_windows:
            raise ValueError(
                f"max_windows ({self.max_windows}) must be >= min_windows "
                f"({self.min_windows})")

    @property
    def detailed_per_period(self) -> int:
        """Micro-ops simulated in detail per period (warmup + window + cooldown)."""
        return self.warmup + self.window + self.cooldown

    @property
    def detailed_fraction(self) -> float:
        """Fraction of retired micro-ops that go through the cycle-level core."""
        return self.detailed_per_period / self.period

    def to_dict(self) -> dict:
        """JSON-serialisable knob summary (recorded in sweep artifacts).

        The error-budget knobs appear only when enabled.  Plan cache keys,
        sampling fingerprints and results-store keys are all derived from
        this dict (or from ``repr(self)``, which follows the same rule), so
        omitting the defaults keeps every artifact recorded before the
        ``tolerance`` field existed byte-for-byte resumable.
        """
        payload = {"period": self.period, "window": self.window,
                   "warmup": self.warmup, "cooldown": self.cooldown}
        if self.tolerance is not None:
            payload["tolerance"] = self.tolerance
            payload["min_windows"] = self.min_windows
            payload["max_windows"] = self.max_windows
        return payload

    def __repr__(self) -> str:
        # The results store keys cells by a hash of this repr; stay
        # byte-identical to the pre-tolerance dataclass repr whenever the
        # error-budget knobs sit at their defaults (same omit-default rule
        # as to_dict()).
        fields = (f"period={self.period!r}, window={self.window!r}, "
                  f"warmup={self.warmup!r}, cooldown={self.cooldown!r}, "
                  f"warm_gaps={self.warm_gaps!r}")
        if self.tolerance is not None:
            fields += (f", tolerance={self.tolerance!r}, "
                       f"min_windows={self.min_windows!r}, "
                       f"max_windows={self.max_windows!r}")
        return f"SamplingConfig({fields})"


#: Per-window statistics that must not be summed across windows when
#: aggregating: occupancy peaks take the maximum, storage figures are
#: configuration constants, and ratio/mean statistics are re-derived or
#: averaged.  Everything else is an additive event counter.  The suffix
#: conventions live in :mod:`repro.telemetry.metrics` (the registry is
#: what actually applies them); these aliases remain for readers of this
#: module.
_MEAN_SUFFIXES = MEAN_SUFFIXES
_CONSTANT_SUFFIXES = CONSTANT_SUFFIXES

#: Window-local measurements that are meaningless summed and therefore
#: excluded from aggregation (``events_per_cycle`` is re-derived from the
#: summed cycle counts afterwards).
_WINDOW_LOCAL_STATS = ("first_commit_cycle", "events_per_cycle")


def _aggregate_stats(window_results: list[SimulationResult]) -> dict[str, float]:
    """Combine per-window statistics dictionaries into whole-run statistics.

    A left-to-right fold of per-window :class:`MetricsRegistry` views under
    each metric's declared merge policy (counters add, peaks take the max,
    constants keep the last value, rates average) -- bit-identical to the
    hand-rolled accumulation this function used to perform, which is pinned
    by the sampled-simulation determinism tests.
    """
    registry = MetricsRegistry()
    for result in window_results:
        registry.merge(MetricsRegistry.from_stats(result.stats,
                                                  skip=_WINDOW_LOCAL_STATS))
    totals = registry.as_stats()
    # Ratios with both parts summed are re-derived exactly.
    if totals.get("mem_l1d_accesses"):
        totals["mem_l1d_miss_rate"] = totals["mem_l1d_misses"] / totals["mem_l1d_accesses"]
    if totals.get("committed_loads"):
        totals["bypassed_load_fraction"] = (
            totals.get("committed_bypassed_loads", 0) / totals["committed_loads"])
    detailed_cycles = sum(result.cycles for result in window_results)
    if detailed_cycles:
        totals["events_per_cycle"] = (
            (detailed_cycles - totals.get("skipped_cycles", 0)) / detailed_cycles)
    return totals


def _resume_with_warm_state(snap: CoreSnapshot | None,
                            warm: "WarmState | None") -> CoreSnapshot | None:
    """Merge a plan's boundary warm image into a scheme's chained snapshot.

    The first stretch resumes from nothing (a cold core); later stretches
    resume from the scheme's own snapshot with the functionally warmed
    structures substituted in.  With gap warming disabled the snapshot is
    used as-is (the structures stay frozen at the previous window's end).
    """
    if snap is None or warm is None:
        return snap
    # The L1I contents and the MSHR / DRAM bank-busy timing deltas are
    # scheme-local (products of the scheme's own detailed windows) and
    # chain through the scheme's snapshot; the warmed data side comes from
    # the plan.  The split lives with the snapshot layout it depends on.
    return dataclasses.replace(
        snap,
        memory=MemoryHierarchy.merge_warm_snapshot(warm.memory, snap.memory),
        btb=warm.btb,
        ras=warm.ras,
        history=warm.history,
        path=warm.path,
    )


@dataclass(frozen=True)
class WarmState:
    """Image of the functionally warmed structures at a stretch boundary.

    A pure value: captured once per detailed stretch during planning and
    merged (via :func:`_resume_with_warm_state`) into every scheme's resume
    snapshot, so it must never be mutated -- every ``restore_snapshot``
    implementation copies out of its snapshot rather than aliasing it.
    """

    memory: dict
    btb: list
    ras: list
    history: int
    path: int


@dataclass(frozen=True)
class PlannedStretch:
    """One detailed stretch of a :class:`SamplePlan`.

    ``measure_ops == 0`` marks a tail stretch that halted inside its warmup:
    it is still simulated in detail (its cycles join the hybrid estimate)
    but contributes no measured window.
    """

    trace: Trace
    warm: WarmState | None
    warm_ops: int
    measure_ops: int


@dataclass(frozen=True)
class SamplePlan:
    """Everything scheme-independent about a sampled run of one workload.

    Produced by :meth:`SampledSimulator.plan` in a single functional pass:
    the recorded window traces, the functional-warming images at each
    stretch boundary and the fast-forward bookkeeping.  Executing the plan
    under N tracker schemes (:meth:`SampledSimulator.execute_plan`) re-uses
    all of it, which is what turns a sweep's warmup cost from
    O(schemes x warmup) into O(warmup) -- the checkpoint farm.

    ``sampling`` and ``warm_signature`` fingerprint the geometry and the
    warm-relevant machine structure; ``execute_plan`` refuses a plan built
    for a different one.
    """

    name: str
    workload: str
    max_ops: int
    retired: int
    fastforwarded: int
    halted: bool
    sampling: dict
    warm_signature: str
    stretches: tuple[PlannedStretch, ...]
    #: How planning finished: ``"fixed"`` geometry, error budget met
    #: (``"tolerance"``), window ``"ceiling"`` reached, or the workload
    #: ``"halted"`` first.  Defaulted (with the probe counters) so plans
    #: pickled before error-budget mode existed keep loading: pickle
    #: restores the instance ``__dict__`` and missing attributes resolve
    #: to these class-level defaults.
    stop_reason: str = "fixed"
    probe_rounds: int = 0
    probe_detailed_ops: int = 0


class _GapWarmer:
    """SMARTS-style functional warming of long-lived state.

    Holds its own instances of the structures whose useful history is much
    longer than a window warmup can rebuild -- the cache hierarchy (tags,
    LRU, dirty bits), the stride prefetcher, DRAM open rows, the BTB, the
    RAS and the global branch/path history registers.  During planning it
    is trained continuously over the *whole* architectural instruction
    stream: by the :class:`~repro.isa.functional.FunctionalCore` hooks
    across the fast-forward gaps and by :meth:`train_trace` over each
    recorded detailed stretch.  Its state at a stretch boundary is
    therefore a pure function of the instruction stream -- identical for
    every tracker scheme -- which is what lets the checkpoint farm share
    one warmup across a whole sweep.

    The TAGE branch predictor and the SMB distance predictor are *not*
    warmed (their per-branch training is as expensive as detailed
    simulation in this model); their shorter-lived accuracy is rebuilt by
    each window's detailed warmup, which is the standard sampled-simulation
    compromise.
    """

    def __init__(self, config: CoreConfig) -> None:
        self.memory = MemoryHierarchy(config.memory)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)
        self.ras = ReturnAddressStack(config.ras_depth)
        self.history = ShiftHistory(max_bits=256)
        self.path = PathHistory(max_bits=32)

    # -- planning plumbing ----------------------------------------------------------

    def capture(self) -> WarmState:
        """Snapshot the warmed structures as an immutable boundary image."""
        return WarmState(
            memory=self.memory.to_snapshot(0),
            btb=self.btb.to_snapshot(),
            ras=self.ras.to_snapshot(),
            history=self.history.value,
            path=self.path.value,
        )

    def train_trace(self, trace: Trace) -> None:
        """Architecturally warm over a recorded detailed stretch.

        ``FunctionalCore.record`` runs the handler loop, which does not
        invoke the warming hooks, so the planner feeds the recorded
        micro-ops through the same hooks afterwards -- keeping the warmed
        structures trained over the *entire* instruction stream.
        """
        load = self.load
        store = self.store
        cond = self.cond
        for op in trace.ops:
            if op.is_load:
                load(op.pc, op.mem_addr)
            elif op.is_store:
                store(op.pc, op.mem_addr)
            elif op.is_branch:
                if op.is_conditional_branch:
                    cond(op.pc, op.taken, op.target_pc)
                elif op.opcode is Opcode.JMP:
                    self.jump(op.pc, op.target_pc)
                elif op.opcode is Opcode.CALL:
                    self.call(op.pc, op.target_pc)
                elif op.opcode is Opcode.RET:
                    self.ret(op.pc)

    # -- FunctionalCore warming hooks ---------------------------------------------

    def load(self, pc: int, address: int) -> None:
        self.memory.warm_data(address, False, pc)

    def store(self, pc: int, address: int) -> None:
        self.memory.warm_data(address, True, pc)

    def cond(self, pc: int, taken: bool, target_pc: int) -> None:
        self.history.push(taken)
        self.path.push(pc)
        if taken and self.btb.lookup(pc) != target_pc:
            self.btb.update(pc, target_pc)

    def jump(self, pc: int, target_pc: int) -> None:
        self.path.push(pc)
        if self.btb.lookup(pc) != target_pc:
            self.btb.update(pc, target_pc)

    def call(self, pc: int, target_pc: int) -> None:
        self.path.push(pc)
        self.ras.push(pc + 4)
        if self.btb.lookup(pc) != target_pc:
            self.btb.update(pc, target_pc)

    def ret(self, pc: int) -> None:
        self.path.push(pc)
        self.ras.pop()


class SampledSimulator:
    """Two-speed driver: fast-forward between warm detailed windows."""

    def __init__(self, config: CoreConfig | None = None,
                 sampling: SamplingConfig | None = None) -> None:
        self.config = config or CoreConfig()
        self.sampling = sampling or SamplingConfig()

    # -- entry points -------------------------------------------------------------

    def run_workload(self, workload: str, max_ops: int = 1_000_000,
                     seed: int = 1) -> SimulationResult:
        """Build ``workload`` and run it sampled for ``max_ops`` micro-ops.

        Unlike the full-detail path, sampled simulation never materialises
        the whole dynamic trace (that is the point), so the experiment
        harness's trace cache/provider machinery is bypassed.
        """
        from repro.workloads import build_workload

        image = build_workload(workload, seed=seed)
        return self.run_image(image, workload, max_ops)

    def run_image(self, image, name: str, max_ops: int,
                  workload: str | None = None) -> SimulationResult:
        """Run a :class:`~repro.workloads.base.WorkloadImage` under sampling.

        Thin composition of the two halves of the engine: one functional
        planning pass (:meth:`plan`) followed by one detailed execution
        pass (:meth:`execute_plan`).  The checkpoint farm calls the same
        two halves with one plan shared across many scheme configurations;
        by construction both paths produce identical results.
        """
        return self.execute_plan(self.plan(image, name, max_ops,
                                           workload=workload))

    # -- planning (scheme-independent, runs once per workload) ----------------------

    def plan(self, image, name: str, max_ops: int,
             workload: str | None = None) -> SamplePlan:
        """One functional pass: fast-forward, warm, and record every stretch.

        Everything this produces depends only on the architectural
        instruction stream and the warm-relevant machine structure
        (:meth:`CoreConfig.warm_signature`), never on the tracker scheme,
        move elimination or SMB -- those only exist in the detailed
        execution pass.  (In error-budget mode the planner additionally
        probes candidate geometries on the scheme-*stripped* machine, see
        :meth:`probe_config`, which preserves this independence.)
        """
        if max_ops < 1:
            raise ValueError("max_ops must be >= 1")
        if self.sampling.tolerance is not None:
            return self._plan_adaptive(image, name, max_ops, workload)
        stretches, retired, fastforwarded, halted = self._functional_pass(
            image, name, max_ops, self.sampling.period)
        return SamplePlan(
            name=name,
            workload=workload or name,
            max_ops=max_ops,
            retired=retired,
            fastforwarded=fastforwarded,
            halted=halted,
            sampling=self.sampling_fingerprint(),
            warm_signature=self.config.warm_signature(),
            stretches=tuple(stretches),
        )

    def _functional_pass(
            self, image, name: str, max_ops: int, period: int,
    ) -> tuple[list[PlannedStretch], int, int, bool]:
        """The single functional sweep behind every plan.

        Places a ``warmup + window + cooldown`` detailed stretch every
        ``period`` retired micro-ops (the caller chooses the period: the
        configured one in fixed mode, ``max_ops // target_windows`` in
        error-budget mode) and returns ``(stretches, retired,
        fastforwarded, halted)``.
        """
        sampling = self.sampling
        warmer = _GapWarmer(self.config) if sampling.warm_gaps else None
        fcore = FunctionalCore.from_image(image, warmer=warmer)
        stretches: list[PlannedStretch] = []
        measured_windows = 0
        fastforwarded = 0

        gap = period - sampling.detailed_per_period
        # Golden-ratio rotation of the detailed stretch inside the period
        # (see the module docstring): deterministic, near-uniform offsets.
        offset_stride = max(int(gap * 0.6180339887), 1) if gap > 0 else 0

        while fcore.retired < max_ops and not fcore.halted:
            remaining = max_ops - fcore.retired
            if gap > 0:
                pre_skip = (measured_windows * offset_stride) % (gap + 1)
                fastforwarded += fcore.fast_forward(min(pre_skip, remaining))
                if fcore.halted:
                    break
                remaining = max_ops - fcore.retired
            warm_ops = min(sampling.warmup, remaining)
            if remaining - warm_ops == 0:
                # Tail shorter than a warmup: nothing measurable, skip it.
                fastforwarded += fcore.fast_forward(remaining)
                break
            measure_ops = min(sampling.window, remaining - warm_ops)
            cool_ops = min(sampling.cooldown, remaining - warm_ops - measure_ops)
            trace = fcore.record(warm_ops + measure_ops + cool_ops,
                                 name=f"{name}#w{measured_windows}")
            # The warm image belongs to the stretch *start*: capture before
            # training the warmer over the stretch's own micro-ops.
            warm_state = warmer.capture() if warmer is not None else None
            if warmer is not None:
                warmer.train_trace(trace)
            if len(trace) <= warm_ops:  # halted inside the warmup
                if len(trace):
                    stretches.append(PlannedStretch(
                        trace=trace, warm=warm_state,
                        warm_ops=len(trace), measure_ops=0))
                break
            measure_ops = min(measure_ops, len(trace) - warm_ops)
            stretches.append(PlannedStretch(
                trace=trace, warm=warm_state,
                warm_ops=warm_ops, measure_ops=measure_ops))
            measured_windows += 1
            post_skip = gap - (pre_skip if gap > 0 else 0)
            fastforwarded += fcore.fast_forward(
                min(post_skip, max_ops - fcore.retired))

        if not measured_windows:
            if fcore.halted:
                raise ValueError(
                    f"workload {name!r} halted after {fcore.retired} micro-ops, "
                    "before the first detailed window completed")
            raise ValueError(
                f"max_ops={max_ops} leaves no room for a measured window "
                f"(sampling warmup is {sampling.warmup}); raise max_ops or "
                "shrink the warmup")
        if (not fcore.halted
                and all(stretch.measure_ops < sampling.window
                        for stretch in stretches)):
            # Only the budget boundary truncates windows (a halt is the
            # program's own doing, not a geometry fault), and only the last
            # window can hit it -- so "all truncated" means the only window
            # is a short one, and averaging it as if it were whole would
            # silently bias the IPC estimate.
            raise ValueError(
                f"max_ops={max_ops} fits no whole measured window (window is "
                f"{sampling.window}, warmup {sampling.warmup}): every window "
                "would be truncated by the budget; raise max_ops or shrink "
                "the window")
        return stretches, fcore.retired, fastforwarded, fcore.halted

    # -- error-budget planning ------------------------------------------------------

    def probe_config(self) -> CoreConfig:
        """The scheme-stripped machine error-budget planning probes on.

        The stopping decision must be identical for every tracker scheme of
        a sweep: the checkpoint farm plans once from the sweep's *base*
        configuration, and an independent per-scheme run must freeze the
        very same geometry or the farm==independent bit-identity (and the
        matched-offset pairing) would break.  Resetting the tracker, move
        elimination, SMB, lazy reclamation and tracing to their defaults
        makes every variant of a warm-homogeneous sweep probe the same
        machine; the warm-relevant structure (memory hierarchy, BTB, RAS)
        and the register-file sizing are deliberately preserved.
        """
        defaults = CoreConfig()
        return self.config.replace(
            tracker=defaults.tracker,
            move_elimination=defaults.move_elimination,
            smb=defaults.smb,
            lazy_reclaim=defaults.lazy_reclaim,
            trace=None,
        )

    def _plan_adaptive(self, image, name: str, max_ops: int,
                       workload: str | None) -> SamplePlan:
        """Sequential stopping rule: grow the window count until the CI fits.

        Each round spreads ``target`` windows evenly over the run
        (``period = max_ops // target``), re-runs the functional pass, and
        probes the recorded stretches on :meth:`probe_config`.  The search
        stops when the instruction-weighted relative Student-t 95% CI
        half-width of the per-window IPC sample is <= the tolerance, when
        the workload halts, or when more windows cannot be had (ceiling
        reached, or the run too short to place even the current target).
        Growth follows the variance projection ``n' = n * (h / tol)^2``,
        clamped to at most doubling and at least +1 per round.

        Every input is deterministic -- workload bytes, ``max_ops``, the
        geometry, the probe machine -- so re-runs, resume and any worker
        pool size freeze identical window placements.
        """
        sampling = self.sampling
        tolerance = sampling.tolerance
        probe_config = self.probe_config()
        ceiling = min(sampling.max_windows,
                      max(max_ops // sampling.detailed_per_period, 1))
        target = min(sampling.min_windows, ceiling)
        probe_rounds = 0
        probe_detailed_ops = 0
        while True:
            period = max(max_ops // target, sampling.detailed_per_period)
            stretches, retired, fastforwarded, halted = self._functional_pass(
                image, name, max_ops, period)
            probe_rounds += 1
            probe_detailed_ops += sum(
                len(stretch.trace) for stretch in stretches)
            windows, _, _, _ = _run_stretches(probe_config, stretches)
            count = len(windows)
            halfwidth = _relative_halfwidth(windows)
            if halfwidth is not None and halfwidth <= tolerance:
                stop_reason = "tolerance"
                break
            if halted:
                stop_reason = "halted"
                break
            if target >= ceiling or count < target:
                # Asking for more windows cannot help: the ceiling is
                # reached, or the run is too short to place even the
                # current target.
                stop_reason = "ceiling"
                break
            if halfwidth is None or halfwidth <= 0.0:
                projected = target * 2
            else:
                projected = math.ceil(count * (halfwidth / tolerance) ** 2)
            target = min(max(min(projected, target * 2), target + 1), ceiling)
        return SamplePlan(
            name=name,
            workload=workload or name,
            max_ops=max_ops,
            retired=retired,
            fastforwarded=fastforwarded,
            halted=halted,
            sampling=self.sampling_fingerprint(),
            warm_signature=self.config.warm_signature(),
            stretches=tuple(stretches),
            stop_reason=stop_reason,
            probe_rounds=probe_rounds,
            probe_detailed_ops=probe_detailed_ops,
        )

    # -- execution (scheme-specific, runs once per configuration) -------------------

    def execute_plan(self, plan: SamplePlan) -> SimulationResult:
        """Replay a plan's detailed stretches under this simulator's config.

        Scheme-local state -- the sharing tracker, rename maps and free
        lists, the TAGE predictor, Store Sets, SMB tables -- chains through
        the scheme's own :class:`CoreSnapshot` from stretch to stretch,
        exactly as an unshared run would; only the functionally warmed
        structures are adopted from the plan's boundary images.
        """
        if plan.sampling != self.sampling_fingerprint():
            raise ValueError(
                f"plan for workload {plan.workload!r} was built with sampling "
                f"geometry {plan.sampling}, not {self.sampling_fingerprint()}")
        if plan.warm_signature != self.config.warm_signature():
            raise ValueError(
                f"plan for workload {plan.workload!r} was built for a machine "
                "with a different warm structure (memory/BTB/RAS geometry)")
        windows, warmup_ops, cooldown_ops, detailed_cycles_extra = \
            _run_stretches(self.config, plan.stretches)
        if not windows:
            raise ValueError(
                f"plan for workload {plan.workload!r} contains no measured window")
        return self._aggregate(plan, windows, warmup_ops, cooldown_ops,
                               detailed_cycles_extra)

    def sampling_fingerprint(self) -> dict:
        """Geometry fingerprint a plan must match to be executable here."""
        fingerprint = self.sampling.to_dict()
        fingerprint["warm_gaps"] = self.sampling.warm_gaps
        return fingerprint

    # -- aggregation --------------------------------------------------------------

    def _aggregate(self, plan: SamplePlan,
                   windows: list[tuple[int, int, SimulationResult]],
                   warmup_ops: int, cooldown_ops: int,
                   detailed_cycles_extra: int) -> SimulationResult:
        sampling = self.sampling
        fastforwarded = plan.fastforwarded
        measured_ops = sum(instructions for instructions, _, _ in windows)
        detailed_cycles = (sum(result.cycles for _, _, result in windows)
                           + detailed_cycles_extra)
        window_cycles_total = sum(cycles for _, cycles, _ in windows)
        ipc_estimate = measured_ops / window_cycles_total
        window_ipcs = [instructions / cycles for instructions, cycles, _ in windows]
        weights = [float(instructions) for instructions, _, _ in windows]
        count = len(window_ipcs)
        # A truncated tail window carries fewer instructions than the rest;
        # instruction weighting keeps it from dragging the mean at full
        # strength (and matches the ratio estimator's implicit weighting).
        mean, std = weighted_mean_std(window_ipcs, weights)

        stats = _aggregate_stats([result for _, _, result in windows])
        stats.update({
            "sampling_windows": count,
            "sampling_period": sampling.period,
            "sampling_window": sampling.window,
            "sampling_warmup": sampling.warmup,
            "sampled_instructions": measured_ops,
            "sampled_window_cycles": window_cycles_total,
            "sampled_detailed_cycles": detailed_cycles,
            "warmup_instructions": warmup_ops,
            "cooldown_instructions": cooldown_ops,
            "fastforwarded_instructions": fastforwarded,
            "sampling_ipc_estimate": ipc_estimate,
            "sampling_ipc_mean": mean,
            "sampling_stop_reason_code": SAMPLING_STOP_REASONS[plan.stop_reason],
        })
        if std is not None:
            # Student-t, not the normal 1.96: at the handful-of-windows
            # sample sizes this module lives at, the normal interval is
            # badly anti-conservative.  With a single window there is no
            # dispersion estimate at all, so the std/CI keys are omitted
            # entirely rather than reported as a zero-width interval.
            ci95 = t_critical_95(count - 1) * std / math.sqrt(count)
            stats["sampling_ipc_std"] = std
            stats["sampling_ipc_ci95_low"] = mean - ci95
            stats["sampling_ipc_ci95_high"] = mean + ci95
            if mean > 0.0:
                stats["sampling_ipc_rel_ci95"] = ci95 / mean
        if sampling.tolerance is not None:
            stats["sampling_tolerance"] = sampling.tolerance
            stats["sampling_probe_rounds"] = plan.probe_rounds
            stats["sampling_probe_instructions"] = plan.probe_detailed_ops
        # Hybrid extrapolation: detailed stretches at their actual cost,
        # fast-forwarded instructions at the measured steady-state IPC.
        estimated_cycles = max(
            detailed_cycles + round(fastforwarded / ipc_estimate), 1)
        return SimulationResult(
            workload=plan.name,
            config_label=self.config.label(),
            cycles=estimated_cycles,
            instructions=plan.retired,
            stats=stats,
        )


def _run_stretches(
        config: CoreConfig, stretches: tuple[PlannedStretch, ...],
) -> tuple[list[tuple[int, int, SimulationResult]], int, int, int]:
    """Replay planned stretches on one machine and measure every window.

    Returns ``(windows, warmup_ops, cooldown_ops, detailed_cycles_extra)``
    where ``windows`` holds one ``(window instructions, window cycles,
    detailed-run result)`` triple per completed window and the extra cycles
    belong to warmup-only tail stretches.  Shared by
    :meth:`SampledSimulator.execute_plan` and the error-budget planner's
    probe pass, so stopping decisions are made with exactly the measurement
    the final execution will use.
    """
    core = Core(config)
    snap: CoreSnapshot | None = None
    windows: list[tuple[int, int, SimulationResult]] = []
    warmup_ops = 0
    cooldown_ops = 0
    detailed_cycles_extra = 0

    for stretch in stretches:
        trace = stretch.trace
        resume = _resume_with_warm_state(snap, stretch.warm)
        if not stretch.measure_ops:  # halted inside the warmup
            warmup_ops += len(trace)
            tail_result = core.run(trace, resume=resume)
            detailed_cycles_extra += tail_result.cycles
            snap = core.snapshot()
            continue
        warm_ops = stretch.warm_ops
        window_end = warm_ops + stretch.measure_ops
        milestones = [commit for commit in (warm_ops, window_end) if commit]
        result = core.run(trace, resume=resume, commit_milestones=milestones)
        snap = core.snapshot()
        # With no warmup the window includes the pipeline-fill ramp; when
        # the trace ends at the window (no cooldown ops recorded) it
        # includes the end-of-run drain.
        start = core.milestone_cycles.get(warm_ops, 0) if warm_ops else 0
        end = core.milestone_cycles.get(window_end, result.cycles)
        window_cycles = max(end - start, 1)
        windows.append((stretch.measure_ops, window_cycles, result))
        warmup_ops += warm_ops
        cooldown_ops += len(trace) - warm_ops - stretch.measure_ops

    return windows, warmup_ops, cooldown_ops, detailed_cycles_extra


def _relative_halfwidth(
        windows: list[tuple[int, int, SimulationResult]]) -> float | None:
    """Instruction-weighted relative Student-t 95% CI half-width of the IPC.

    ``None`` when fewer than two windows exist or the mean is degenerate --
    the error-budget planner treats that as "budget not yet met".
    """
    if len(windows) < 2:
        return None
    ipcs = [instructions / cycles for instructions, cycles, _ in windows]
    weights = [float(instructions) for instructions, _, _ in windows]
    mean, std = weighted_mean_std(ipcs, weights)
    if std is None or mean <= 0.0:
        return None
    count = len(windows)
    return (t_critical_95(count - 1) * std / math.sqrt(count)) / mean


def window_samples(plan: SamplePlan,
                   config: CoreConfig) -> list[tuple[int, int]]:
    """Per-window ``(instructions, cycles)`` of ``plan`` replayed on ``config``.

    The measurement vehicle behind paired speedup analysis: replaying one
    frozen plan under two configurations yields window pairs at *matched
    offsets*, so per-window speedup ratios difference out the program-phase
    variance both machines share (the bench suite's ``adaptive`` tier
    quantifies the reduction).
    """
    if plan.warm_signature != config.warm_signature():
        raise ValueError(
            f"plan for workload {plan.workload!r} was built for a machine "
            "with a different warm structure (memory/BTB/RAS geometry)")
    windows, _, _, _ = _run_stretches(config, plan.stretches)
    return [(instructions, cycles) for instructions, cycles, _ in windows]


def simulate_sampled(workload: str, config: CoreConfig | None = None,
                     sampling: SamplingConfig | None = None,
                     max_ops: int = 1_000_000, seed: int = 1) -> SimulationResult:
    """One-call sampled simulation of a registered workload."""
    return SampledSimulator(config, sampling).run_workload(
        workload, max_ops=max_ops, seed=seed)
