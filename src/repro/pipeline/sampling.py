"""SMARTS-style sampled simulation: functional fast-forward + detailed windows.

The cycle-level core is 40-80x slower than the functional core, which caps
how long a workload the harness can study.  :class:`SampledSimulator`
interleaves the two speeds: each sampling *period* starts with a detailed
stretch (``warmup`` instructions to refill the pipeline-adjacent state,
then a measured ``window``), after which the rest of the period is retired
by :class:`~repro.isa.functional.FunctionalCore` at millions of micro-ops
per second.  Micro-architectural state -- branch predictors, caches, the
rename state and the register-sharing tracker -- is carried across the
fast-forward gaps by the :class:`~repro.pipeline.snapshot.CoreSnapshot`
API, so every window starts warm.

Measurement methodology (see DESIGN.md for the error analysis):

* each detailed stretch (warmup + window) is replayed as *one*
  :meth:`Core.run`, resumed from the previous stretch's snapshot, so the
  detailed model never sees the fast-forward gap;
* the window's cycle count is measured from the commit of the last warmup
  micro-op (the run's ``commit_milestone``) to the end of the run -- the
  warmup therefore absorbs both the stale-state transient *and* the
  pipeline-fill ramp of restarting a drained pipeline, and the window
  measures mid-steady-state throughput (only the end-of-run drain remains
  inside the window, a small downward bias);
* the detailed stretch's offset *rotates* within the period from one
  sample to the next (a deterministic golden-ratio stride over the gap),
  so windows cannot systematically alias with program periodicity -- a
  workload whose slow phase recurs every N instructions would otherwise be
  sampled always-in or always-out of it;
* the steady-state IPC point estimate is the ratio estimator
  ``sum(window instructions) / sum(window cycles)``;
* the whole-run cycle estimate is *hybrid*: every detailed stretch
  contributes its actual simulated cycles (so one-off transients such as
  the cold-start ramp are charged once, at their true cost, instead of
  being extrapolated), and only the fast-forwarded instructions are
  extrapolated at the steady-state IPC;
* the per-window IPC sample additionally yields a mean, standard deviation
  and a normal-approximation 95% confidence interval, all recorded on the
  :class:`~repro.pipeline.result.SimulationResult`.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.ras import ReturnAddressStack
from repro.common.history import HistoryCheckpoint, PathHistory, ShiftHistory
from repro.isa.functional import FunctionalCore
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core
from repro.pipeline.result import SimulationResult
from repro.pipeline.snapshot import CoreSnapshot


@dataclass(frozen=True)
class SamplingConfig:
    """Geometry of the two-speed schedule.

    Every ``period`` retired micro-ops, ``warmup + window + cooldown`` of
    them are simulated in detail (only the ``window`` portion is measured)
    and the rest are fast-forwarded functionally.  ``period == warmup +
    window + cooldown`` degenerates to full detailed simulation in
    windowed form (useful for validating the snapshot machinery).
    """

    period: int = 50_000
    window: int = 2_000
    warmup: int = 500
    #: Detailed micro-ops simulated *after* the window so its last commit is
    #: measured mid-stream instead of on a pipeline drain.  Should cover the
    #: ROB plus the front-end queue of the measured machine.
    cooldown: int = 300
    #: Functionally warm long-lived state (caches, prefetcher, DRAM rows,
    #: BTB, RAS, branch/path history) during the fast-forward gaps.
    #: Without warming, every window opens on state frozen at the previous
    #: window's end and memory-bound workloads are systematically
    #: under-estimated.
    warm_gaps: bool = True

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("sampling window must be >= 1 instruction")
        if self.warmup < 0 or self.cooldown < 0:
            raise ValueError("sampling warmup and cooldown must be >= 0")
        if self.period < self.warmup + self.window + self.cooldown:
            raise ValueError(
                f"sampling period ({self.period}) must cover warmup + window "
                f"+ cooldown ({self.warmup} + {self.window} + {self.cooldown})")

    @property
    def detailed_per_period(self) -> int:
        """Micro-ops simulated in detail per period (warmup + window + cooldown)."""
        return self.warmup + self.window + self.cooldown

    @property
    def detailed_fraction(self) -> float:
        """Fraction of retired micro-ops that go through the cycle-level core."""
        return self.detailed_per_period / self.period

    def to_dict(self) -> dict:
        """JSON-serialisable knob summary (recorded in sweep artifacts)."""
        return {"period": self.period, "window": self.window,
                "warmup": self.warmup, "cooldown": self.cooldown}


#: Per-window statistics that must not be summed across windows when
#: aggregating: occupancy peaks take the maximum, storage figures are
#: configuration constants, and ratio/mean statistics are re-derived or
#: averaged.  Everything else is an additive event counter.
_MEAN_SUFFIXES = ("_rate", "_fraction", "_mean_distance")
_CONSTANT_SUFFIXES = ("storage_bits", "checkpoint_bits")


def _aggregate_stats(window_results: list[SimulationResult]) -> dict[str, float]:
    """Combine per-window statistics dictionaries into whole-run statistics."""
    totals: dict[str, float] = {}
    means: dict[str, list[float]] = {}
    for result in window_results:
        for key, value in result.stats.items():
            if key == "first_commit_cycle":
                continue  # window-local ramp measurement, meaningless summed
            if "peak_occupancy" in key:
                totals[key] = max(totals.get(key, 0), value)
            elif key.endswith(_CONSTANT_SUFFIXES):
                totals[key] = value
            elif key.endswith(_MEAN_SUFFIXES):
                means.setdefault(key, []).append(value)
            else:
                totals[key] = totals.get(key, 0) + value
    for key, values in means.items():
        totals[key] = sum(values) / len(values)
    # Ratios with both parts summed are re-derived exactly.
    if totals.get("mem_l1d_accesses"):
        totals["mem_l1d_miss_rate"] = totals["mem_l1d_misses"] / totals["mem_l1d_accesses"]
    if totals.get("committed_loads"):
        totals["bypassed_load_fraction"] = (
            totals.get("committed_bypassed_loads", 0) / totals["committed_loads"])
    return totals


class _GapWarmer:
    """SMARTS-style functional warming of long-lived state across fast-forward gaps.

    Holds its own instances of the structures whose useful history is much
    longer than a window warmup can rebuild -- the cache hierarchy (tags,
    LRU, dirty bits), the stride prefetcher, DRAM open rows, the BTB, the
    RAS and the global branch/path history registers.  Between two detailed
    windows it is (1) loaded from the previous window's snapshot,
    (2) trained by the :class:`~repro.isa.functional.FunctionalCore`
    fast-forward hooks, and (3) patched back into the snapshot the next
    window resumes from.

    The TAGE branch predictor and the SMB distance predictor are *not*
    warmed (their per-branch training is as expensive as detailed
    simulation in this model); their shorter-lived accuracy is rebuilt by
    each window's detailed warmup, which is the standard sampled-simulation
    compromise.
    """

    def __init__(self, config: CoreConfig) -> None:
        self.memory = MemoryHierarchy(config.memory)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)
        self.ras = ReturnAddressStack(config.ras_depth)
        self.history = ShiftHistory(max_bits=256)
        self.path = PathHistory(max_bits=32)

    # -- snapshot plumbing --------------------------------------------------------

    def load_from(self, snap: CoreSnapshot) -> None:
        """Adopt the warm state of a window-boundary snapshot."""
        self.memory.restore_snapshot(snap.memory, now=0)
        self.btb.restore_snapshot(snap.btb)
        self.ras.restore_snapshot(snap.ras)
        self.history.restore(HistoryCheckpoint(snap.history, self.history.max_bits))
        self.path.restore(HistoryCheckpoint(snap.path, self.path.max_bits))

    def patch(self, snap: CoreSnapshot) -> CoreSnapshot:
        """Return ``snap`` with the warmed structures substituted in."""
        return dataclasses.replace(
            snap,
            memory=self.memory.to_snapshot(0),
            btb=self.btb.to_snapshot(),
            ras=self.ras.to_snapshot(),
            history=self.history.value,
            path=self.path.value,
        )

    # -- FunctionalCore warming hooks ---------------------------------------------

    def load(self, pc: int, address: int) -> None:
        self.memory.warm_data(address, False, pc)

    def store(self, pc: int, address: int) -> None:
        self.memory.warm_data(address, True, pc)

    def cond(self, pc: int, taken: bool, target_pc: int) -> None:
        self.history.push(taken)
        self.path.push(pc)
        if taken and self.btb.lookup(pc) != target_pc:
            self.btb.update(pc, target_pc)

    def jump(self, pc: int, target_pc: int) -> None:
        self.path.push(pc)
        if self.btb.lookup(pc) != target_pc:
            self.btb.update(pc, target_pc)

    def call(self, pc: int, target_pc: int) -> None:
        self.path.push(pc)
        self.ras.push(pc + 4)
        if self.btb.lookup(pc) != target_pc:
            self.btb.update(pc, target_pc)

    def ret(self, pc: int) -> None:
        self.path.push(pc)
        self.ras.pop()


class SampledSimulator:
    """Two-speed driver: fast-forward between warm detailed windows."""

    def __init__(self, config: CoreConfig | None = None,
                 sampling: SamplingConfig | None = None) -> None:
        self.config = config or CoreConfig()
        self.sampling = sampling or SamplingConfig()

    # -- entry points -------------------------------------------------------------

    def run_workload(self, workload: str, max_ops: int = 1_000_000,
                     seed: int = 1) -> SimulationResult:
        """Build ``workload`` and run it sampled for ``max_ops`` micro-ops.

        Unlike the full-detail path, sampled simulation never materialises
        the whole dynamic trace (that is the point), so the experiment
        harness's trace cache/provider machinery is bypassed.
        """
        from repro.workloads import build_workload

        image = build_workload(workload, seed=seed)
        return self.run_image(image, workload, max_ops)

    def run_image(self, image, name: str, max_ops: int) -> SimulationResult:
        """Run a :class:`~repro.workloads.base.WorkloadImage` under sampling."""
        if max_ops < 1:
            raise ValueError("max_ops must be >= 1")
        sampling = self.sampling
        warmer = _GapWarmer(self.config) if sampling.warm_gaps else None
        fcore = FunctionalCore.from_image(image, warmer=warmer)
        core = Core(self.config)
        snap = None
        # One (window instructions, window cycles, detailed-run result)
        # triple per completed window.
        windows: list[tuple[int, int, SimulationResult]] = []
        warmup_ops = 0
        cooldown_ops = 0
        fastforwarded = 0
        detailed_cycles_extra = 0  # cycles of warmup-only tail runs

        gap = sampling.period - sampling.detailed_per_period
        # Golden-ratio rotation of the detailed stretch inside the period
        # (see the module docstring): deterministic, near-uniform offsets.
        offset_stride = max(int(gap * 0.6180339887), 1) if gap > 0 else 0

        def fast_forward_warmed(count: int) -> int:
            nonlocal snap
            if count <= 0:
                return 0
            if warmer is not None and snap is not None:
                warmer.load_from(snap)
            skipped = fcore.fast_forward(count)
            if warmer is not None and snap is not None:
                snap = warmer.patch(snap)
            return skipped

        while fcore.retired < max_ops and not fcore.halted:
            remaining = max_ops - fcore.retired
            if gap > 0:
                pre_skip = (len(windows) * offset_stride) % (gap + 1)
                fastforwarded += fast_forward_warmed(min(pre_skip, remaining))
                if fcore.halted:
                    break
                remaining = max_ops - fcore.retired
            warm_ops = min(sampling.warmup, remaining)
            if remaining - warm_ops == 0:
                # Tail shorter than a warmup: nothing measurable, skip it.
                fastforwarded += fast_forward_warmed(remaining)
                break
            measure_ops = min(sampling.window, remaining - warm_ops)
            cool_ops = min(sampling.cooldown, remaining - warm_ops - measure_ops)
            trace = fcore.record(warm_ops + measure_ops + cool_ops,
                                 name=f"{name}#w{len(windows)}")
            if len(trace) <= warm_ops:  # halted inside the warmup
                warmup_ops += len(trace)
                if len(trace):
                    tail_result = core.run(trace, resume=snap)
                    detailed_cycles_extra += tail_result.cycles
                    snap = core.snapshot()
                break
            measure_ops = min(measure_ops, len(trace) - warm_ops)
            window_end = warm_ops + measure_ops
            milestones = [commit for commit in (warm_ops, window_end) if commit]
            result = core.run(trace, resume=snap, commit_milestones=milestones)
            snap = core.snapshot()
            # With no warmup the window includes the pipeline-fill ramp;
            # when the trace ends at the window (no cooldown ops recorded)
            # it includes the end-of-run drain.
            start = core.milestone_cycles.get(warm_ops, 0) if warm_ops else 0
            end = core.milestone_cycles.get(window_end, result.cycles)
            window_cycles = max(end - start, 1)
            windows.append((measure_ops, window_cycles, result))
            warmup_ops += warm_ops
            cooldown_ops += len(trace) - warm_ops - measure_ops
            post_skip = gap - (pre_skip if gap > 0 else 0)
            fastforwarded += fast_forward_warmed(
                min(post_skip, max_ops - fcore.retired))

        if not windows:
            if fcore.halted:
                raise ValueError(
                    f"workload {name!r} halted after {fcore.retired} micro-ops, "
                    "before the first detailed window completed")
            raise ValueError(
                f"max_ops={max_ops} leaves no room for a measured window "
                f"(sampling warmup is {sampling.warmup}); raise max_ops or "
                "shrink the warmup")
        return self._aggregate(name, fcore.retired, windows, warmup_ops,
                               cooldown_ops, fastforwarded, detailed_cycles_extra)

    # -- aggregation --------------------------------------------------------------

    def _aggregate(self, name: str, retired: int,
                   windows: list[tuple[int, int, SimulationResult]],
                   warmup_ops: int, cooldown_ops: int, fastforwarded: int,
                   detailed_cycles_extra: int) -> SimulationResult:
        sampling = self.sampling
        measured_ops = sum(instructions for instructions, _, _ in windows)
        detailed_cycles = (sum(result.cycles for _, _, result in windows)
                           + detailed_cycles_extra)
        window_cycles_total = sum(cycles for _, cycles, _ in windows)
        ipc_estimate = measured_ops / window_cycles_total
        window_ipcs = [instructions / cycles for instructions, cycles, _ in windows]
        count = len(window_ipcs)
        mean = sum(window_ipcs) / count
        if count > 1:
            variance = sum((ipc - mean) ** 2 for ipc in window_ipcs) / (count - 1)
            std = math.sqrt(variance)
        else:
            std = 0.0
        ci95 = 1.96 * std / math.sqrt(count)

        stats = _aggregate_stats([result for _, _, result in windows])
        stats.update({
            "sampling_windows": count,
            "sampling_period": sampling.period,
            "sampling_window": sampling.window,
            "sampling_warmup": sampling.warmup,
            "sampled_instructions": measured_ops,
            "sampled_window_cycles": window_cycles_total,
            "sampled_detailed_cycles": detailed_cycles,
            "warmup_instructions": warmup_ops,
            "cooldown_instructions": cooldown_ops,
            "fastforwarded_instructions": fastforwarded,
            "sampling_ipc_estimate": ipc_estimate,
            "sampling_ipc_mean": mean,
            "sampling_ipc_std": std,
            "sampling_ipc_ci95_low": mean - ci95,
            "sampling_ipc_ci95_high": mean + ci95,
        })
        # Hybrid extrapolation: detailed stretches at their actual cost,
        # fast-forwarded instructions at the measured steady-state IPC.
        estimated_cycles = max(
            detailed_cycles + round(fastforwarded / ipc_estimate), 1)
        return SimulationResult(
            workload=name,
            config_label=self.config.label(),
            cycles=estimated_cycles,
            instructions=retired,
            stats=stats,
        )


def simulate_sampled(workload: str, config: CoreConfig | None = None,
                     sampling: SamplingConfig | None = None,
                     max_ops: int = 1_000_000, seed: int = 1) -> SimulationResult:
    """One-call sampled simulation of a registered workload."""
    return SampledSimulator(config, sampling).run_workload(
        workload, max_ops=max_ops, seed=seed)
