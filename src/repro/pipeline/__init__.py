"""The cycle-level out-of-order core model.

:class:`~repro.pipeline.config.CoreConfig` describes the machine (Table 1
of the paper by default) plus the three optimisation knobs the paper
studies: move elimination, speculative memory bypassing and the register
sharing tracker.  :class:`~repro.pipeline.core.Core` replays a dynamic
micro-op trace through the pipeline and returns a
:class:`~repro.pipeline.result.SimulationResult` with the cycle count and
every statistic the benchmark harness needs.

The convenience function :func:`~repro.pipeline.core.simulate` builds a
workload trace and runs it in one call.
"""

from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core, simulate, simulate_trace
from repro.pipeline.result import SimulationResult
from repro.pipeline.sampling import (
    SamplePlan,
    SampledSimulator,
    SamplingConfig,
    simulate_sampled,
)
from repro.pipeline.snapshot import CoreSnapshot

__all__ = [
    "CoreConfig",
    "Core",
    "CoreSnapshot",
    "SimulationResult",
    "SamplePlan",
    "SampledSimulator",
    "SamplingConfig",
    "simulate",
    "simulate_sampled",
    "simulate_trace",
]
