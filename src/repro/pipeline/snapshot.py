"""Micro-architectural snapshots of the cycle-level core.

A :class:`CoreSnapshot` captures every piece of core state that must
survive a functional fast-forward gap between two detailed simulation
windows (the two-speed engine of :mod:`repro.pipeline.sampling`):

* front end: TAGE branch predictor, BTB, RAS, global branch history and
  path history;
* rename: speculative/commit rename maps (equal with the pipeline drained,
  so a single image is stored) and both free lists, including the exact
  speculative allocation order;
* the register-sharing tracker, whose deferred reclaims must not leak
  physical registers across the gap;
* memory: Store Sets SSIT, L1I/L1D/L2 tags + LRU + dirty bits, DRAM open
  rows and bank-busy deltas, prefetcher training state;
* SMB: the Instruction Distance predictor, the Data Dependency Table and
  the commit-side CSN table, plus the running commit sequence number so
  CSNs stay monotonic across windows.

Snapshot invariants (enforced by :meth:`repro.pipeline.core.Core.snapshot`
and documented in DESIGN.md):

* the pipeline is **drained** -- no in-flight instruction, so transient
  structures (ROB, IQ, LSQ, front-end queue, writeback wheel, functional
  unit reservations, Store Sets LFST, SMB blacklist) are empty or
  meaningless and are not captured;
* deferred lazy reclaims are **completed first** -- any committed entry
  still retained in the ROB has its overwritten mapping reclaimed before
  the state is read, so register liveness never rides on a structure the
  snapshot does not carry;
* all cycle-stamped state is stored **relative to the snapshot cycle** and
  rebased to zero on restore;
* statistics are per-window and never part of a snapshot.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class CoreSnapshot:
    """Serialised warm state of a drained :class:`~repro.pipeline.core.Core`."""

    # Compatibility fingerprint: a snapshot may only be restored into a
    # core with the same machine structure.
    variant: str
    num_int_pregs: int
    num_fp_pregs: int
    #: Committed micro-ops so far across all detailed windows; the next
    #: window's commit sequence numbers continue from here.
    next_csn: int
    branch_predictor: dict
    btb: list
    ras: list
    history: int
    path: int
    rename_map: list
    int_free: dict
    fp_free: dict
    tracker: dict
    store_sets: dict
    memory: dict
    smb: dict

    def digest(self) -> str:
        """Deterministic SHA-256 digest of the full snapshot contents.

        Used by the property tests: resuming from a restored snapshot must
        leave a core in a state whose digest is identical to the core the
        snapshot was taken from continuing directly.
        """
        payload = json.dumps(asdict(self), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()

    def compatible_with(self, config) -> bool:
        """``True`` when this snapshot can be restored into ``config``'s machine."""
        return (self.variant == config.variant_name()
                and self.num_int_pregs == config.num_int_pregs
                and self.num_fp_pregs == config.num_fp_pregs)
