"""The cycle-level out-of-order core model.

:class:`Core` replays a dynamic micro-op trace (produced by the functional
executor) through an out-of-order pipeline with the Table-1 organisation:

``fetch -> (front-end latency) -> rename/dispatch -> issue -> execute ->
writeback -> commit``

The model is trace driven: wrong-path instructions are never fetched, so
branch mispredictions appear as fetch stalls whose length is the real
resolution delay of the branch plus the redirect and the scheme-dependent
repair latency of the register sharing tracker.  Memory-order violations
and SMB validation failures, in contrast, squash *correct-path* in-flight
instructions and therefore exercise the full recovery machinery: the rename
map is restored from the commit rename map, the free lists fall back to
their committed image, and the sharing tracker is asked to
``flush_to_committed`` (Section 4.1's "squash at Commit" path).

Move elimination and speculative memory bypassing are performed at rename
time by :class:`repro.rename.renamer.Renamer`; this module supplies the ROB
producer lookup SMB needs, validates bypassed loads at writeback against
the architecturally correct value carried by the trace, and trains the
Instruction Distance predictor at commit through the
:class:`repro.core.smb.SmbEngine`.
"""

from __future__ import annotations

from collections import deque

from repro.backend.inflight import InflightOp
from repro.backend.lsq import ForwardingState, LoadStoreQueue
from repro.backend.rob import ReorderBuffer
from repro.backend.scheduler import FunctionalUnits, IssueQueue
from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.ras import ReturnAddressStack
from repro.bpred.tage import TageBranchPredictor
from repro.common.history import HistoryCheckpoint, PathHistory, ShiftHistory
from repro.core.smb import SmbEngine
from repro.core.tracker import ReclaimDecision, make_tracker
from repro.isa.executor import DynamicOp, Trace
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS, RegClass
from repro.memdep.store_sets import StoreSetsPredictor
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CoreConfig
from repro.pipeline.result import SimulationResult
from repro.pipeline.snapshot import CoreSnapshot
from repro.rename.maps import CommitRenameMap, FreeList, RenameMap
from repro.rename.renamer import ProducerInfo, Renamer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import PipelineTracer

_NEVER = 1 << 60
_MASK64 = (1 << 64) - 1


def _by_seq(entry: InflightOp) -> int:
    """Sort key for same-cycle writeback ordering."""
    return entry.seq


class Core:
    """A configurable out-of-order core simulator."""

    def __init__(self, config: CoreConfig | None = None) -> None:
        self.config = config or CoreConfig()

    # ------------------------------------------------------------------ setup --

    def _reset(self, trace: Trace) -> None:
        config = self.config
        self.trace = trace
        self.cycle = 0
        self.committed = 0
        self.fetch_index = 0
        self.fetch_blocked_until = 0
        self.pending_redirect: InflightOp | None = None
        self.frontend_queue: deque[InflightOp] = deque()
        self._last_fetch_line = -1

        # Front end.
        self.branch_predictor = TageBranchPredictor(config.branch_predictor)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)
        self.ras = ReturnAddressStack(config.ras_depth)
        self.history = ShiftHistory(max_bits=256)
        self.path = PathHistory(max_bits=32)

        # Renaming.
        self.rename_map = RenameMap()
        self.commit_map = CommitRenameMap()
        self.int_free = FreeList(RegClass.INT, 0, config.num_int_pregs, NUM_INT_REGS)
        self.fp_free = FreeList(RegClass.FP, config.num_int_pregs, config.num_fp_pregs,
                                NUM_FP_REGS)
        for index in range(NUM_INT_REGS):
            self.rename_map.raw()[index] = index
            self.commit_map.raw()[index] = index
        for index in range(NUM_FP_REGS):
            self.rename_map.raw()[NUM_INT_REGS + index] = config.num_int_pregs + index
            self.commit_map.raw()[NUM_INT_REGS + index] = config.num_int_pregs + index

        self.tracker = make_tracker(config.tracker)
        self.smb_engine = SmbEngine(config.smb, num_arch_regs=NUM_INT_REGS + NUM_FP_REGS)
        self._smb_train_commit = (self.smb_engine.train_commit
                                  if config.smb.enabled else None)
        self.renamer = Renamer(self.rename_map, self.int_free, self.fp_free, self.tracker,
                               config.move_elimination, self.smb_engine)

        # Back end.
        self.rob = ReorderBuffer(config.rob_entries, lazy_reclaim=config.lazy_reclaim)
        self.iq = IssueQueue(config.iq_entries)
        self.lsq = LoadStoreQueue(config.lq_entries, config.sq_entries)
        self.fus = FunctionalUnits()
        self.store_sets = StoreSetsPredictor(config.store_sets)
        self.memory = MemoryHierarchy(config.memory)

        # Physical register ready times, indexed by global preg number.  A
        # flat list beats a dict here: the issue stage probes it for every
        # source of every candidate instruction.
        self.preg_ready: list[int] = [0] * config.num_phys_regs
        # Event-driven wakeup state: instructions whose operands are all
        # ready (oldest first; ``_ready_dirty`` marks an out-of-order
        # wakeup append that needs a re-sort), and per-preg lists of
        # instructions waiting for that register's writeback.  Together
        # they replace the every-cycle full-queue readiness scan: an
        # instruction is examined again only when one of its producers
        # completes.
        self._ready: list[InflightOp] = []
        self._ready_dirty = False
        self._consumers: dict[int, list[InflightOp]] = {}
        # Writeback event wheel: completion cycle -> ops finishing that
        # cycle.  The run loop advances one cycle at a time, so the
        # writeback stage pops exactly one bucket per cycle (O(1)) instead
        # of paying heapq's O(log n) per scheduled op.
        self.execution_wheel: dict[int, list[InflightOp]] = {}
        # Functional unit pool per op class (dict lookup beats the if-chain
        # in FunctionalUnits.pool_for on the dispatch hot path).
        self._pool_of_class = {
            op_class: self.fus.pool_for(op_class) for op_class in OpClass
        }
        # Fixed execution latency per op class (FDIV is special-cased).
        self._latency_of_class = {
            OpClass.INT_ALU: config.int_alu_latency,
            OpClass.INT_MOVE: config.int_alu_latency,
            OpClass.INT_MUL: config.int_mul_latency,
            OpClass.INT_DIV: config.int_div_latency,
            OpClass.FP_ALU: config.fp_alu_latency,
            OpClass.FP_MOVE: config.fp_alu_latency,
            OpClass.FP_MULDIV: config.fp_mul_latency,
            OpClass.BRANCH: config.branch_latency,
            OpClass.NOP: config.int_alu_latency,
            OpClass.LOAD: config.int_alu_latency,
            OpClass.STORE: config.store_latency,
        }

        # Statistics.
        self.counters: dict[str, float] = {
            "conditional_branches": 0, "branch_mispredictions": 0, "btb_misses": 0,
            "ras_mispredictions": 0, "memory_order_violations": 0,
            "traps_avoided_by_smb": 0, "false_dependencies": 0,
            "bypass_validation_flushes": 0, "committed_loads": 0,
            "committed_bypassed_loads": 0, "committed_eliminated_moves": 0,
            "fetch_stall_cycles": 0, "rename_stall_cycles": 0,
            "recovery_extra_cycles": 0, "release_walks": 0,
        }
        # Event-driven cycle skipping bookkeeping.  ``_progress`` is set by
        # any stage that changed machine state this cycle; a cycle that ends
        # with it still False cannot be distinguished from the cycles that
        # follow it until the next scheduled event, so the run loop jumps
        # straight there.  ``_rename_stalled`` remembers whether the rename
        # stage charged a stall this cycle (the skipped span then charges
        # the same stall per cycle).
        self._progress = False
        self._rename_stalled = False
        self._skipped_cycles = 0
        # Commit sequence numbers continue across detailed windows of a
        # sampled simulation (restored from a snapshot); the SMB commit
        # training relies on their monotonicity.
        self._csn_base = 0
        self._first_commit_cycle = -1
        # Optional commit-count milestones (sampled simulation): the cycle
        # at which the N-th micro-op of this run commits, used to bound the
        # measured window inside a warmup/window/cooldown detailed stretch
        # without draining the pipeline at the measurement boundaries.
        self._milestone_commits: frozenset[int] | None = None
        self.milestone_cycles: dict[int, int] = {}
        self._last_share_attempt_seq: int | None = None
        self._share_attempt_gaps = 0.0
        self._share_attempt_count = 0
        self._last_reclaim_check_seq: int | None = None
        self._reclaim_check_gaps = 0.0
        self._reclaim_check_count = 0
        # Everything the dispatch path derives from the *static* instruction
        # -- move-elimination candidacy, functional unit pool, execution
        # latency, NOP-ness -- cached by static index so each dynamic op
        # costs one dict probe instead of re-deriving all four.
        self._static_dispatch_cache: dict[int, tuple] = {}
        # Opt-in pipeline event tracing.  ``None`` (the default) keeps every
        # stage on its fast path: each hook site hoists this to a local and
        # pays one ``is not None`` test per micro-op at most.  The tracer
        # only reads pipeline state, so results are bit-identical either
        # way (pinned by tests/test_telemetry.py).
        self.tracer = (PipelineTracer(config.trace, workload=trace.name,
                                      scheme=config.tracker.scheme,
                                      config_label=config.label())
                       if config.trace is not None else None)

    # -------------------------------------------------------------------- run --

    def run(self, trace: Trace, max_cycles: int | None = None,
            resume: CoreSnapshot | None = None,
            commit_milestones=()) -> SimulationResult:
        """Replay ``trace`` through the pipeline and return the simulation result.

        ``resume`` warm-starts the run from a :class:`CoreSnapshot` taken
        by :meth:`snapshot` after an earlier run: predictors, caches,
        rename state and the sharing tracker begin where the previous
        detailed window left them, which is what lets the sampled
        simulation driver interleave fast-forward gaps between windows.

        ``commit_milestones`` records (in :attr:`milestone_cycles`) the
        cycle at which each given commit count is reached -- the sampled
        driver uses two milestones to bound the measured window inside a
        longer detailed run, keeping pipeline-fill and drain transients
        outside the measurement.
        """
        if len(trace) == 0:
            raise ValueError("cannot simulate an empty trace")
        self._reset(trace)
        if resume is not None:
            self._restore_snapshot(resume)
        if commit_milestones:
            self._milestone_commits = frozenset(commit_milestones)
        limit = max_cycles or self.config.max_cycles_per_instruction * len(trace)
        total = len(trace.ops)
        do_commit = self._do_commit
        do_complete = self._do_complete
        do_issue = self._do_issue
        do_rename = self._do_rename
        do_fetch = self._do_fetch
        skipping = self.config.cycle_skipping
        counters = self.counters
        while self.committed < total:
            self._progress = False
            self._rename_stalled = False
            do_commit()
            do_complete()
            do_issue()
            do_rename()
            do_fetch()
            self.cycle += 1
            if self.cycle > limit:
                raise RuntimeError(
                    f"simulation exceeded {limit} cycles after committing "
                    f"{self.committed}/{len(trace.ops)} micro-ops of {trace.name!r}; "
                    "this indicates a pipeline deadlock")
            if self._progress or not skipping:
                continue
            # Nothing fetched, renamed, issued, completed or committed: the
            # machine state is frozen until the next scheduled event, so the
            # intervening cycles are pure stall bookkeeping.  Jump there,
            # charging the skipped span to the same counters the per-cycle
            # walk would have incremented (the differential tests pin this
            # to be bit-identical).
            target = self._next_event_cycle()
            if target > limit + 1:
                target = limit + 1
            span = target - self.cycle
            if span <= 0:
                continue
            if self.pending_redirect is not None \
                    or self.fetch_blocked_until >= self.cycle:
                # With no redirect pending, ``target`` never exceeds
                # ``fetch_blocked_until`` (it is a next-event candidate), so
                # either every skipped cycle is fetch-stalled or none is.
                counters["fetch_stall_cycles"] += span
            if self._rename_stalled:
                # The rename head was mature and resources were unavailable
                # this cycle; neither can change during the frozen span.
                counters["rename_stall_cycles"] += span
            self._skipped_cycles += span
            self.cycle = target
            if self.cycle > limit:
                raise RuntimeError(
                    f"simulation exceeded {limit} cycles after committing "
                    f"{self.committed}/{len(trace.ops)} micro-ops of {trace.name!r}; "
                    "this indicates a pipeline deadlock")
        return self._build_result()

    def _next_event_cycle(self) -> int:
        """The earliest future cycle at which any stage could make progress.

        Only called on cycles where nothing progressed, with ``self.cycle``
        already advanced to the first unsimulated cycle.  The invariant every
        contributor must uphold is *never under-report*: returning a cycle
        that is too early merely costs one more idle evaluation, returning
        one that is too late would skip over real work and change timing.

        Candidate events:

        * the writeback wheel's earliest bucket -- completions drive
          wake-ups (``preg_ready`` never holds a future cycle), commit
          eligibility, redirect resolution and memory-dependence releases;
        * ``fetch_blocked_until`` (I-cache miss, BTB miss redirect, trap or
          recovery penalty) when no redirect is pending;
        * the front-end queue head maturing past ``frontend_depth``;
        * a ready instruction waiting on a busy non-pipelined functional
          unit (the only issue blocker not already covered by the wheel);
        * the memory hierarchy's passive timed state (MSHR completions,
          DRAM bank-busy expiry) -- advisory, always safe to include.
        """
        cycle = self.cycle
        nxt = _NEVER
        wheel = self.execution_wheel
        if wheel:
            nxt = min(wheel)
        if self.pending_redirect is None:
            blocked_until = self.fetch_blocked_until
            if cycle <= blocked_until < nxt:
                nxt = blocked_until
        queue = self.frontend_queue
        if queue:
            mature_at = queue[0].fetch_cycle + self.config.frontend_depth
            if cycle <= mature_at < nxt:
                nxt = mature_at
        for entry in self._ready:
            # Ready instructions are blocked on a busy non-pipelined unit,
            # on a memory-dependence wait that resolves at a writeback
            # event already accounted for above, or (rarely) stale after a
            # source re-allocation, in which case their wake-up is a
            # writeback event too.  Only the non-pipelined pool adds a
            # candidate of its own.
            pool = entry.fu_pool
            if not pool.pipelined:
                free_at = pool.next_free_cycle(cycle)
                if free_at < nxt:
                    nxt = free_at
        memory_event = self.memory.next_event_cycle(cycle - 1)
        if memory_event is not None and memory_event < nxt:
            nxt = memory_event
        return nxt

    # ------------------------------------------------------------------ fetch --

    def _do_fetch(self) -> None:
        config = self.config
        if self.pending_redirect is not None or self.cycle < self.fetch_blocked_until:
            self.counters["fetch_stall_cycles"] += 1
            return
        fetched = 0
        taken_branches = 0
        ops = self.trace.ops
        total_ops = len(ops)
        queue = self.frontend_queue
        fetch_width = config.fetch_width
        queue_limit = config.frontend_queue_entries
        line_bytes = self.memory.config.l1i.line_bytes
        hit_latency = self.memory.config.l1i.hit_latency
        history = self.history
        path = self.path
        tracer = self.tracer
        fetch_index = self.fetch_index
        while (fetched < fetch_width
               and fetch_index < total_ops
               and len(queue) < queue_limit):
            op = ops[fetch_index]
            # Instruction cache: one access per new line.
            line = op.pc // line_bytes
            if line != self._last_fetch_line:
                latency = self.memory.access_instruction(op.pc, self.cycle)
                self._last_fetch_line = line
                if latency > hit_latency:
                    self.fetch_blocked_until = self.cycle + latency
                    self._progress = True
                    break
            # Inlined ``history.bits(64)`` / ``path.bits(32)``: the path
            # register is 32 bits wide so its value needs no masking, and
            # the branch history only needs the low-64 mask.
            entry = InflightOp(op, self.cycle, history._value & _MASK64, path._value)
            stop_fetching = False
            if op.is_branch:
                stop_fetching, taken_branches = self._fetch_branch(entry, taken_branches)
            queue.append(entry)
            if tracer is not None:
                tracer.on_fetch(entry, self.cycle)
            fetch_index += 1
            fetched += 1
            if entry.branch_mispredicted:
                self.pending_redirect = entry
                break
            if stop_fetching:
                break
        if fetched:
            self.fetch_index = fetch_index
            self._progress = True

    def _fetch_branch(self, entry: InflightOp, taken_branches: int) -> tuple[bool, int]:
        """Predict a branch at fetch time; returns (stop fetching, taken branches so far)."""
        config = self.config
        op = entry.op
        stop = False
        if op.is_conditional_branch:
            self.counters["conditional_branches"] += 1
            prediction = self.branch_predictor.predict(op.pc, self.history, self.path)
            entry.predicted_taken = prediction.taken
            mispredicted = prediction.taken != op.taken
            self.branch_predictor.update(op.pc, op.taken, prediction)
            self.history.push(op.taken)
            self.path.push(op.pc)
            if mispredicted:
                entry.branch_mispredicted = True
                self.counters["branch_mispredictions"] += 1
            elif prediction.taken:
                stop = self._taken_branch_btb(op, taken_branches)
        elif op.opcode is Opcode.RET:
            predicted = self.ras.pop()
            self.path.push(op.pc)
            if predicted is None or predicted != op.target_pc:
                entry.branch_mispredicted = True
                self.counters["ras_mispredictions"] += 1
                self.counters["branch_mispredictions"] += 1
            else:
                stop = True
        else:
            # Direct jumps and calls are always (correctly) predicted taken.
            self.path.push(op.pc)
            if op.opcode is Opcode.CALL:
                self.ras.push(op.pc + 4)
            stop = self._taken_branch_btb(op, taken_branches)
        if op.taken:
            taken_branches += 1
            if taken_branches >= config.max_taken_branches_per_fetch + 1:
                stop = True
        return stop, taken_branches

    def _taken_branch_btb(self, op: DynamicOp, taken_branches: int) -> bool:
        """BTB lookup for a taken branch; a miss costs a short front-end redirect."""
        target = self.btb.lookup(op.pc)
        actual_target = op.target_pc if op.target_pc is not None else op.next_pc
        if target is None or target != actual_target:
            self.counters["btb_misses"] += 1
            self.btb.update(op.pc, actual_target)
            self.fetch_blocked_until = self.cycle + self.config.btb_miss_penalty
            return True
        return False

    # ----------------------------------------------------------------- rename --

    def _do_rename(self) -> None:
        queue = self.frontend_queue
        if not queue:
            return
        config = self.config
        cycle = self.cycle
        if queue[0].fetch_cycle + config.frontend_depth > cycle:
            return
        renamed = 0
        rename_width = config.rename_width
        frontend_depth = config.frontend_depth
        smb_active = config.smb.enabled and self.tracker.supports_memory_bypass
        smb_predict = self.smb_engine.predict
        rename_into = self.renamer.rename_into
        resolve_producer = self._resolve_producer
        dispatch_cache = self._static_dispatch_cache
        me_is_candidate = config.move_elimination.is_candidate
        rob = self.rob
        iq = self.iq
        lsq = self.lsq
        preg_ready = self.preg_ready
        ready = self._ready
        consumers = self._consumers
        tracer = self.tracer
        # Fast path: when every structure has at least ``rename_width`` free
        # slots (and reclaiming is eager, so no release walk can be owed),
        # this cycle's group cannot stall and the per-op resource checks --
        # all pure reads -- are skipped wholesale.
        ample_resources = not config.lazy_reclaim and (
            rob.free_slots() >= rename_width
            and iq.free_slots() >= rename_width
            and lsq.lq_capacity - lsq.lq_occupancy() >= rename_width
            and lsq.sq_capacity - lsq.sq_occupancy() >= rename_width
            and self.int_free.available() >= rename_width
            and self.fp_free.available() >= rename_width)
        while renamed < rename_width and queue:
            entry = queue[0]
            if entry.fetch_cycle + frontend_depth > cycle:
                break
            op = entry.op
            if not ample_resources and not self._rename_resources_available(entry):
                self.counters["rename_stall_cycles"] += 1
                self._rename_stalled = True
                break
            queue.popleft()

            smb_prediction = None
            if smb_active and op.is_load:
                smb_prediction = smb_predict(op, entry.history, entry.path)
            # One cache probe recovers every static-instruction property the
            # dispatch needs (see ``_static_dispatch_cache`` in ``_reset``).
            info = dispatch_cache.get(op.static_index)
            if info is None:
                latency = (config.fp_div_latency if op.opcode is Opcode.FDIV
                           else self._latency_of_class[op.op_class])
                info = (me_is_candidate(op), self._pool_of_class[op.op_class],
                        latency, op.op_class is OpClass.NOP)
                dispatch_cache[op.static_index] = info
            me_candidate, fu_pool, exec_latency, is_nop = info
            # Share-attempt distance tracking (Section 6.3).
            if me_candidate or smb_prediction is not None:
                if self._last_share_attempt_seq is not None:
                    self._share_attempt_gaps += entry.seq - self._last_share_attempt_seq
                    self._share_attempt_count += 1
                self._last_share_attempt_seq = entry.seq

            rename_into(entry, op, resolve_producer=resolve_producer,
                        smb_prediction=smb_prediction, me_candidate=me_candidate)
            entry.rename_cycle = cycle
            entry.smb_prediction = smb_prediction

            if entry.allocated:
                preg_ready[entry.dest_preg] = _NEVER

            entry.needs_execution = needs_execution = not (entry.eliminated or is_nop)
            if needs_execution:
                # Scheduling constants, precomputed so the issue stage never
                # re-derives them on its wakeup scan.
                entry.fu_pool = fu_pool
                entry.exec_latency = exec_latency

            # Memory dependence prediction (Store Sets).
            if op.is_load:
                wait_seq = self.store_sets.lookup_load(op.pc)
                if wait_seq is not None and wait_seq < op.seq:
                    waiting_for = rob.lookup(wait_seq)
                    if waiting_for is not None and waiting_for.is_store \
                            and not waiting_for.committed:
                        entry.store_set_wait_seq = wait_seq
            elif op.is_store:
                self.store_sets.store_renamed(op.pc, op.seq)

            # Dispatch.
            rob.append(entry)
            if op.is_load or op.is_store:
                lsq.add(entry)
            if needs_execution:
                iq.add(entry)
                # Event-driven wakeup: register on every not-yet-ready
                # source; an operand-complete instruction goes straight to
                # the ready list (dispatch order is age order, so the
                # append preserves the oldest-first invariant).
                waits = 0
                for preg in entry.src_pregs:
                    if preg_ready[preg] > cycle:
                        waiters = consumers.get(preg)
                        if waiters is None:
                            consumers[preg] = [entry]
                        else:
                            waiters.append(entry)
                        waits += 1
                entry.wait_count = waits
                if not waits:
                    ready.append(entry)
            else:
                entry.issued = True
                entry.completed = True
                entry.complete_cycle = cycle
            if tracer is not None:
                tracer.on_rename(entry, cycle)
            renamed += 1
        if renamed:
            self._progress = True

    def _rename_resources_available(self, entry: InflightOp) -> bool:
        """Check ROB/IQ/LSQ/free-list availability, triggering lazy release if needed."""
        op = entry.op
        if self.rob.is_full():
            if self.config.lazy_reclaim:
                self._release_retained(force=True)
            if self.rob.is_full():
                return False
        if self.iq.is_full():
            return False
        if op.is_load and self.lsq.lq_full():
            return False
        if op.is_store and self.lsq.sq_full():
            return False
        if not self.renamer.can_rename(op):
            if self.config.lazy_reclaim:
                self._release_retained(force=True)
            if not self.renamer.can_rename(op):
                return False
        if self.config.lazy_reclaim:
            self._release_retained(force=False)
        return True

    def _resolve_producer(self, seq: int) -> ProducerInfo | None:
        """Locate a bypass producer by sequence number (ROB or retained entries)."""
        entry = self.rob.lookup(seq)
        if entry is None:
            return None
        if entry.committed and not self.config.smb.bypass_from_committed:
            return None
        if entry.dest_preg is None or not entry.op.writes_register:
            return None
        return ProducerInfo(
            seq=seq,
            preg=entry.dest_preg,
            value=entry.op.result,
            is_load=entry.is_load,
            is_committed=entry.committed,
        )

    # ------------------------------------------------------------------ issue --

    def _do_issue(self) -> None:
        """Oldest-first select over the event-driven ready list.

        This is the simulator's hottest loop.  Instead of scanning the
        whole issue queue every cycle, only instructions whose operands
        have all written back (the ``_ready`` list, fed by the wakeup lists
        in :meth:`_do_complete`) are examined.  Readiness is monotonic: a
        source register of an in-flight queue entry can never be reclaimed
        and re-allocated before the entry issues, because the instruction
        overwriting that architectural register is younger and in-order
        commit forces the consumer to commit (hence issue) first -- so a
        woken entry needs no operand re-verification, only its functional
        unit and memory-dependence checks.  (The callback-based
        :meth:`IssueQueue.issue` remains for unit tests and alternative
        cores.)
        """
        ready = self._ready
        if not ready:
            return
        if self._ready_dirty:
            ready.sort(key=_by_seq)
            self._ready_dirty = False
        cycle = self.cycle
        issue_width = self.config.issue_width
        store_latency = self.config.store_latency
        wheel = self.execution_wheel
        load_issue_latency = self._load_issue_latency
        tracer = self.tracer
        issued = 0
        # ``remaining`` is materialised lazily: on cycles where every ready
        # instruction stays put, the pass allocates nothing.
        remaining: list[InflightOp] | None = None
        for position, entry in enumerate(ready):
            if issued < issue_width:
                pool = entry.fu_pool
                # Inlined FunctionalUnitPool.can_accept/accept for the
                # pipelined pools (the overwhelmingly common case): roll
                # the per-cycle issue counter, check it, bump it.
                pipelined = pool.pipelined
                if pipelined:
                    if pool._current_cycle != cycle:
                        pool._current_cycle = cycle
                        pool._issued_this_cycle = 0
                    accepts = pool._issued_this_cycle < pool.count
                else:
                    accepts = pool.can_accept(cycle)
                if accepts:
                    if entry.is_load:
                        latency = load_issue_latency(entry)
                    elif entry.is_store:
                        latency = store_latency
                    else:
                        latency = entry.exec_latency
                    if latency is not None:
                        if pipelined:
                            pool._issued_this_cycle += 1
                            pool.operations += 1
                        else:
                            pool.accept(cycle, latency)
                        entry.issued = True
                        entry.issue_cycle = cycle
                        complete_cycle = cycle + latency
                        entry.complete_cycle = complete_cycle
                        # Writeback for this cycle already ran, so a
                        # zero-latency op lands in the next cycle's
                        # bucket -- exactly when the former heap (popped
                        # with `<= cycle`) would have delivered it.
                        bucket_key = (complete_cycle if complete_cycle > cycle
                                      else cycle + 1)
                        bucket = wheel.get(bucket_key)
                        if bucket is None:
                            wheel[bucket_key] = [entry]
                        else:
                            bucket.append(entry)
                        if tracer is not None:
                            tracer.on_issue(entry, cycle)
                        issued += 1
                        if remaining is None:
                            remaining = ready[:position]
                        continue
            if remaining is not None:
                remaining.append(entry)
        if remaining is not None:
            self._ready = remaining
        if issued:
            self.iq.note_issued(issued)
            self._progress = True

    def _load_issue_latency(self, entry: InflightOp) -> int | None:
        """Memory-dependence checks and latency for a load; ``None`` means wait."""
        config = self.config
        op = entry.op

        # Store Sets dependence: the load waits until the predicted store executed.
        if entry.store_set_wait_seq is not None and not entry.bypassed:
            store = self.rob.lookup(entry.store_set_wait_seq)
            if store is not None and store.is_store and not store.committed \
                    and not store.completed:
                return None
            if not entry.false_dependency:
                store_op = self.trace.ops[entry.store_set_wait_seq]
                overlap = (store_op.mem_addr is not None and op.mem_addr is not None
                           and store_op.mem_addr < op.mem_addr + op.mem_size
                           and op.mem_addr < store_op.mem_addr + store_op.mem_size)
                if not overlap:
                    entry.false_dependency = True
                    self.counters["false_dependencies"] += 1

        decision = self.lsq.forwarding_for(entry)
        if decision.state is ForwardingState.PARTIAL_OVERLAP:
            store = decision.store
            if not (store.issued and store.completed):
                return None
            return config.stlf_latency + config.partial_forward_penalty
        if decision.state is ForwardingState.FORWARD:
            entry.stlf_forwarded = True
            return config.stlf_latency
        # No conflict, or the covering store has not executed yet (the load
        # proceeds with possibly stale data -- violation detected later).
        return self.memory.access_data(op.mem_addr, False, op.pc, self.cycle)

    # -------------------------------------------------------------- writeback --

    def _do_complete(self) -> None:
        cycle = self.cycle
        bucket = self.execution_wheel.pop(cycle, None)
        if bucket is None:
            return
        self._progress = True
        # Same-cycle completions are processed oldest first (the order the
        # former writeback heap produced); ops issued in different cycles
        # can land in one bucket out of sequence order.
        bucket.sort(key=_by_seq)
        ready = self._ready
        consumers = self._consumers
        tracer = self.tracer
        for entry in bucket:
            if entry.completed:
                continue
            entry.completed = True
            if tracer is not None:
                tracer.on_writeback(entry, cycle)
            if entry.allocated and entry.dest_preg is not None:
                self.preg_ready[entry.dest_preg] = entry.complete_cycle
                # Wake every instruction waiting on this register; those
                # whose last operand this was become issue candidates this
                # very cycle (writeback runs before issue), as the full
                # readiness scan used to observe.
                waiters = consumers.pop(entry.dest_preg, None)
                if waiters:
                    for waiter in waiters:
                        waiter.wait_count -= 1
                        if not waiter.wait_count:
                            ready.append(waiter)
                            self._ready_dirty = True
            if entry.is_store:
                self._detect_violations(entry)
            if entry.is_load and entry.bypassed:
                self.smb_engine.note_validation(
                    entry.op, entry.bypass_value_matches,
                    entry.history, entry.path, entry.smb_prediction)
            if entry is self.pending_redirect:
                self._resolve_misprediction(entry)

    def _detect_violations(self, store: InflightOp) -> None:
        """A store executed: flag younger already-executed overlapping loads."""
        for load in self.lsq.violating_loads(store):
            if load.bypassed and load.bypass_value_matches:
                # The dependence was satisfied through the register file:
                # the trap is avoided (Section 3.1's third benefit of SMB).
                self.counters["traps_avoided_by_smb"] += 1
                continue
            if not load.violation:
                load.violation = True
                self.store_sets.train_violation(load.op.pc, store.op.pc)

    def _resolve_misprediction(self, branch: InflightOp) -> None:
        """A mispredicted branch resolved: restart fetch, charging the recovery cost."""
        wrong_path_estimate = min(
            self.rob.free_slots(),
            max(self.cycle - branch.rename_cycle, 1) * self.config.rename_width,
        ) if branch.rename_cycle >= 0 else self.config.rename_width
        extra = self.tracker.recovery_cycles(wrong_path_estimate, self.config.commit_width)
        extra = max(extra - 1, 0)  # a single-cycle repair is part of the base redirect
        self.counters["recovery_extra_cycles"] += extra
        self.fetch_blocked_until = max(self.fetch_blocked_until, self.cycle + 1 + extra)
        self.pending_redirect = None

    # ----------------------------------------------------------------- commit --

    def _do_commit(self) -> None:
        rob = self.rob
        entry = rob.head()
        if entry is None or not entry.completed:
            return
        # The per-entry commit work is inlined into this loop (rather than
        # split into a helper) with the shared structures bound once: at
        # IPC > 1 this runs for nearly every micro-op of the trace.
        config = self.config
        counters = self.counters
        lsq = self.lsq
        tracker = self.tracker
        commit_raw = self.commit_map.raw()
        smb_train = self._smb_train_commit
        lazy_reclaim = config.lazy_reclaim
        tracer = self.tracer
        cycle = self.cycle
        milestones = self._milestone_commits
        committed_now = 0
        commit_width = config.commit_width
        while committed_now < commit_width:
            if entry.violation or (entry.bypassed and not entry.bypass_value_matches):
                self._flush_at(entry)
                break
            op = entry.op
            csn = self._csn_base + self.committed
            if self._first_commit_cycle < 0:
                self._first_commit_cycle = cycle
            entry.committed = True
            entry.commit_cycle = cycle
            rob.pop_head()
            if tracer is not None:
                tracer.on_commit(entry, cycle)

            if op.is_load or op.is_store:
                lsq.remove_committed(entry)
                if op.is_store:
                    # Drain the store to the cache (latency absorbed by the
                    # store buffer).
                    self.memory.access_data(op.mem_addr, True, op.pc, cycle)
                    self.store_sets.store_completed(op.pc, op.seq)
                else:
                    counters["committed_loads"] += 1
                    if entry.bypassed:
                        counters["committed_bypassed_loads"] += 1
            if entry.eliminated:
                counters["committed_eliminated_moves"] += 1

            dest_preg = entry.dest_preg
            if entry.share_recorded and dest_preg is not None:
                tracker.on_share_commit(dest_preg)

            if op.dest is not None and dest_preg is not None:
                arch_flat = op.dest_flat
                previous = commit_raw[arch_flat]
                commit_raw[arch_flat] = dest_preg
                if entry.allocated:
                    self._free_list_for_preg(dest_preg).on_commit_allocate(dest_preg)
                if previous >= 0 and previous != dest_preg:
                    if lazy_reclaim:
                        # Deferred: the ROB retains this entry until the
                        # release walk.
                        pass
                    else:
                        self._reclaim_register(previous, arch_flat, entry.seq)

            # Commit-side SMB training (CSN table, DDT, distance predictor);
            # ``smb_train`` is None when SMB is disabled.
            if smb_train is not None:
                smb_train(op, csn, entry.history, entry.path, entry.smb_prediction)
            self.committed += 1
            if milestones is not None and self.committed in milestones:
                self.milestone_cycles[self.committed] = cycle

            committed_now += 1
            entry = rob.head()
            if entry is None or not entry.completed:
                break
        if committed_now:
            self._progress = True

    def _reclaim_register(self, preg: int, arch_flat: int, seq: int) -> None:
        """Ask the sharing tracker whether ``preg`` can return to the free list."""
        if self.tracker.is_tracked(preg):
            if self._last_reclaim_check_seq is not None:
                self._reclaim_check_gaps += seq - self._last_reclaim_check_seq
                self._reclaim_check_count += 1
            self._last_reclaim_check_seq = seq
        decision = self.tracker.reclaim(preg, arch_flat)
        if decision is ReclaimDecision.FREE:
            self._free_list_for_preg(preg).release(preg)

    def _release_retained(self, force: bool) -> None:
        """Lazy-reclaim release walk (Section 3.3).

        Triggered when the free list runs low or the ROB fills up
        (``force``), the walk releases retained committed entries and
        performs the register reclaims their commits deferred.
        """
        config = self.config
        def needs_release() -> bool:
            if force and (self.rob.is_full()
                          or self.int_free.is_empty() or self.fp_free.is_empty()):
                return True
            return (self.int_free.available() < config.free_list_low_watermark
                    or self.fp_free.available() < config.free_list_low_watermark
                    or self.rob.free_slots() < config.rename_width)

        released_any = False
        while needs_release() and self.rob.retained_count() > 0:
            entry = self.rob.pop_retained()
            if entry is None:
                break
            released_any = True
            if entry.op.dest is not None and entry.old_preg is not None \
                    and entry.old_preg >= 0 and entry.old_preg != entry.dest_preg:
                self._reclaim_register(entry.old_preg, entry.op.dest_flat, entry.seq)
        if released_any:
            self.counters["release_walks"] += 1

    # ------------------------------------------------------------------ flush --

    def _flush_at(self, entry: InflightOp) -> None:
        """Squash everything in flight and re-fetch starting at ``entry`` (trap at commit)."""
        self._progress = True
        if entry.violation:
            self.counters["memory_order_violations"] += 1
        else:
            self.counters["bypass_validation_flushes"] += 1

        squashed = self.rob.squash_all_inflight()
        tracer = self.tracer
        if tracer is not None:
            reason = ("memory_order_violation" if entry.violation
                      else "bypass_validation")
            # Both the in-flight window and the not-yet-renamed frontend
            # queue are thrown away (recorded before the clears below).
            tracer.on_squash(squashed, self.cycle, reason)
            tracer.on_squash(self.frontend_queue, self.cycle, reason)
        self.iq.clear()
        self._ready.clear()
        self._ready_dirty = False
        self._consumers.clear()
        self.lsq.squash_all()
        self.frontend_queue.clear()
        self.execution_wheel.clear()
        self.pending_redirect = None

        # Restore the renamer to the committed state (Section 4.1).
        self.rename_map.copy_from(self.commit_map)
        self.int_free.restore_to_committed()
        self.fp_free.restore_to_committed()
        for preg in self.tracker.flush_to_committed():
            self._free_list_for_preg(preg).release(preg)

        # Re-fetch from the trapping instruction itself.
        self.fetch_index = entry.seq
        self._last_fetch_line = -1
        extra = self.tracker.recovery_cycles(len(squashed), self.config.commit_width)
        extra = max(extra - 1, 0)
        self.counters["recovery_extra_cycles"] += extra
        self.fetch_blocked_until = self.cycle + self.config.trap_penalty + extra

    # --------------------------------------------------------- snapshot/restore --

    def snapshot(self) -> CoreSnapshot:
        """Capture the warm micro-architectural state after a completed run.

        Only valid with the pipeline drained (i.e. right after :meth:`run`
        returned).  Deferred lazy reclaims are completed first so that no
        register liveness depends on retained ROB entries, which are not
        part of the snapshot; see :mod:`repro.pipeline.snapshot` for the
        full list of invariants.
        """
        if self.rob.head() is not None or self.frontend_queue or len(self.iq) \
                or self.execution_wheel or self.pending_redirect is not None:
            raise RuntimeError("snapshot requires a drained pipeline")
        # Complete every deferred reclaim (lazy-reclaim release walk).
        while self.rob.retained_count() > 0:
            entry = self.rob.pop_retained()
            if entry is None:
                break
            if entry.op.dest is not None and entry.old_preg is not None \
                    and entry.old_preg >= 0 and entry.old_preg != entry.dest_preg:
                self._reclaim_register(entry.old_preg, entry.op.dest_flat, entry.seq)
        config = self.config
        return CoreSnapshot(
            variant=config.variant_name(),
            num_int_pregs=config.num_int_pregs,
            num_fp_pregs=config.num_fp_pregs,
            next_csn=self._csn_base + self.committed,
            branch_predictor=self.branch_predictor.to_snapshot(),
            btb=self.btb.to_snapshot(),
            ras=self.ras.to_snapshot(),
            history=self.history.value,
            path=self.path.value,
            rename_map=self.commit_map.to_snapshot(),
            int_free=self.int_free.to_snapshot(),
            fp_free=self.fp_free.to_snapshot(),
            tracker=self.tracker.to_snapshot(),
            store_sets=self.store_sets.to_snapshot(),
            memory=self.memory.to_snapshot(self.cycle),
            smb=self.smb_engine.to_snapshot(),
        )

    def _restore_snapshot(self, snap: CoreSnapshot) -> None:
        """Overwrite the freshly-reset core state with a snapshot (cycle rebased to 0)."""
        if not snap.compatible_with(self.config):
            raise ValueError(
                f"snapshot of machine {snap.variant!r} cannot be restored into "
                f"{self.config.variant_name()!r}")
        self.branch_predictor.restore_snapshot(snap.branch_predictor)
        self.btb.restore_snapshot(snap.btb)
        self.ras.restore_snapshot(snap.ras)
        self.history.restore(HistoryCheckpoint(snap.history, self.history.max_bits))
        self.path.restore(HistoryCheckpoint(snap.path, self.path.max_bits))
        # With the pipeline drained the speculative and commit maps agree,
        # so one image restores both.
        self.rename_map.restore_snapshot(snap.rename_map)
        self.commit_map.restore_snapshot(snap.rename_map)
        self.int_free.restore_snapshot(snap.int_free)
        self.fp_free.restore_snapshot(snap.fp_free)
        self.tracker.restore_snapshot(snap.tracker)
        self.store_sets.restore_snapshot(snap.store_sets)
        self.memory.restore_snapshot(snap.memory, now=0)
        self.smb_engine.restore_snapshot(snap.smb)
        self._csn_base = snap.next_csn

    # ------------------------------------------------------------------ utils --

    def _free_list_for_preg(self, preg: int) -> FreeList:
        return self.int_free if preg < self.config.num_int_pregs else self.fp_free

    def metrics(self) -> MetricsRegistry:
        """This run's statistics as a unified, merge-aware registry.

        Same keys and values as ``SimulationResult.stats`` (which is the
        flattened view of this registry), but with every metric's kind and
        merge policy declared by :func:`repro.telemetry.metrics.classify_stat`
        -- the sampling aggregator folds per-window copies of this with
        :meth:`MetricsRegistry.merge`.
        """
        registry = MetricsRegistry()
        put = registry.put
        for key, value in self.counters.items():
            put(key, value)
        for key, value in self.renamer.move_stats.as_dict().items():
            put(key, value)
        for key, value in self.smb_engine.stats_dict().items():
            put(key, value)
        for key, value in self.tracker.stats.as_dict().items():
            put(f"tracker_{key}", value)
        put("tracker_storage_bits", self.tracker.storage_bits())
        put("tracker_checkpoint_bits", self.tracker.checkpoint_bits())
        for key, value in self.memory.stats().items():
            put(f"mem_{key}", value)
        put("first_commit_cycle", max(self._first_commit_cycle, 0))
        # Event-driven loop effectiveness: how many cycles were jumped over
        # and what fraction of simulated time actually held events.  These
        # describe the *simulator's execution strategy*, not the simulated
        # machine, so the skip-on/off differential tests exclude them.
        put("skipped_cycles", self._skipped_cycles)
        if self.cycle > 0:
            put("events_per_cycle",
                (self.cycle - self._skipped_cycles) / self.cycle)
        put("rob_peak_occupancy", self.rob.peak_occupancy)
        put("iq_peak_occupancy", self.iq.peak_occupancy)
        put("lq_peak_occupancy", self.lsq.peak_lq)
        put("sq_peak_occupancy", self.lsq.peak_sq)
        put("renamed_instructions", self.renamer.move_stats.renamed_instructions)
        if self._share_attempt_count:
            put("isrb_alloc_mean_distance",
                self._share_attempt_gaps / self._share_attempt_count)
        if self._reclaim_check_count:
            put("isrb_reclaim_mean_distance",
                self._reclaim_check_gaps / self._reclaim_check_count)
        if self.counters["committed_loads"]:
            put("bypassed_load_fraction",
                self.counters["committed_bypassed_loads"] / self.counters["committed_loads"])
        return registry

    def _build_result(self) -> SimulationResult:
        stats = self.metrics().as_stats()
        return SimulationResult(
            workload=self.trace.name,
            config_label=self.config.label(),
            cycles=self.cycle,
            instructions=self.committed,
            stats=stats,
        )


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def simulate_trace(trace: Trace, config: CoreConfig | None = None,
                   max_cycles: int | None = None) -> SimulationResult:
    """Run ``trace`` on a core with the given configuration."""
    return Core(config).run(trace, max_cycles=max_cycles)


def simulate(workload: str, config: CoreConfig | None = None, max_ops: int = 20_000,
             seed: int = 1, max_cycles: int | None = None) -> SimulationResult:
    """Generate workload ``workload`` and simulate it in one call."""
    from repro.workloads import generate_trace

    trace = generate_trace(workload, max_ops=max_ops, seed=seed)
    return simulate_trace(trace, config, max_cycles=max_cycles)
