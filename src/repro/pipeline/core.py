"""The cycle-level out-of-order core model.

:class:`Core` replays a dynamic micro-op trace (produced by the functional
executor) through an out-of-order pipeline with the Table-1 organisation:

``fetch -> (front-end latency) -> rename/dispatch -> issue -> execute ->
writeback -> commit``

The model is trace driven: wrong-path instructions are never fetched, so
branch mispredictions appear as fetch stalls whose length is the real
resolution delay of the branch plus the redirect and the scheme-dependent
repair latency of the register sharing tracker.  Memory-order violations
and SMB validation failures, in contrast, squash *correct-path* in-flight
instructions and therefore exercise the full recovery machinery: the rename
map is restored from the commit rename map, the free lists fall back to
their committed image, and the sharing tracker is asked to
``flush_to_committed`` (Section 4.1's "squash at Commit" path).

Move elimination and speculative memory bypassing are performed at rename
time by :class:`repro.rename.renamer.Renamer`; this module supplies the ROB
producer lookup SMB needs, validates bypassed loads at writeback against
the architecturally correct value carried by the trace, and trains the
Instruction Distance predictor at commit through the
:class:`repro.core.smb.SmbEngine`.
"""

from __future__ import annotations

import heapq

from repro.backend.inflight import InflightOp
from repro.backend.lsq import ForwardingState, LoadStoreQueue
from repro.backend.rob import ReorderBuffer
from repro.backend.scheduler import FunctionalUnits, IssueQueue
from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.ras import ReturnAddressStack
from repro.bpred.tage import TageBranchPredictor
from repro.common.history import PathHistory, ShiftHistory
from repro.core.smb import SmbEngine
from repro.core.tracker import ReclaimDecision, make_tracker
from repro.isa.executor import DynamicOp, Trace
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS, RegClass
from repro.memdep.store_sets import StoreSetsPredictor
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CoreConfig
from repro.pipeline.result import SimulationResult
from repro.rename.maps import CommitRenameMap, FreeList, RenameMap
from repro.rename.renamer import ProducerInfo, Renamer

_NEVER = 1 << 60


class Core:
    """A configurable out-of-order core simulator."""

    def __init__(self, config: CoreConfig | None = None) -> None:
        self.config = config or CoreConfig()

    # ------------------------------------------------------------------ setup --

    def _reset(self, trace: Trace) -> None:
        config = self.config
        self.trace = trace
        self.cycle = 0
        self.committed = 0
        self.fetch_index = 0
        self.fetch_blocked_until = 0
        self.pending_redirect: InflightOp | None = None
        self.frontend_queue: list[InflightOp] = []
        self.epoch = 0
        self._last_fetch_line = -1

        # Front end.
        self.branch_predictor = TageBranchPredictor(config.branch_predictor)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)
        self.ras = ReturnAddressStack(config.ras_depth)
        self.history = ShiftHistory(max_bits=256)
        self.path = PathHistory(max_bits=32)

        # Renaming.
        self.rename_map = RenameMap()
        self.commit_map = CommitRenameMap()
        self.int_free = FreeList(RegClass.INT, 0, config.num_int_pregs, NUM_INT_REGS)
        self.fp_free = FreeList(RegClass.FP, config.num_int_pregs, config.num_fp_pregs,
                                NUM_FP_REGS)
        for index in range(NUM_INT_REGS):
            self.rename_map.raw()[index] = index
            self.commit_map.raw()[index] = index
        for index in range(NUM_FP_REGS):
            self.rename_map.raw()[NUM_INT_REGS + index] = config.num_int_pregs + index
            self.commit_map.raw()[NUM_INT_REGS + index] = config.num_int_pregs + index

        self.tracker = make_tracker(config.tracker)
        self.smb_engine = SmbEngine(config.smb, num_arch_regs=NUM_INT_REGS + NUM_FP_REGS)
        self.renamer = Renamer(self.rename_map, self.int_free, self.fp_free, self.tracker,
                               config.move_elimination, self.smb_engine)

        # Back end.
        self.rob = ReorderBuffer(config.rob_entries, lazy_reclaim=config.lazy_reclaim)
        self.iq = IssueQueue(config.iq_entries)
        self.lsq = LoadStoreQueue(config.lq_entries, config.sq_entries)
        self.fus = FunctionalUnits()
        self.store_sets = StoreSetsPredictor(config.store_sets)
        self.memory = MemoryHierarchy(config.memory)

        self.preg_ready: dict[int, int] = {}
        self.execution_heap: list[tuple[int, int, int, InflightOp]] = []

        # Statistics.
        self.counters: dict[str, float] = {
            "conditional_branches": 0, "branch_mispredictions": 0, "btb_misses": 0,
            "ras_mispredictions": 0, "memory_order_violations": 0,
            "traps_avoided_by_smb": 0, "false_dependencies": 0,
            "bypass_validation_flushes": 0, "committed_loads": 0,
            "committed_bypassed_loads": 0, "committed_eliminated_moves": 0,
            "fetch_stall_cycles": 0, "rename_stall_cycles": 0,
            "recovery_extra_cycles": 0, "release_walks": 0,
        }
        self._last_share_attempt_seq: int | None = None
        self._share_attempt_gaps = 0.0
        self._share_attempt_count = 0
        self._last_reclaim_check_seq: int | None = None
        self._reclaim_check_gaps = 0.0
        self._reclaim_check_count = 0

    # -------------------------------------------------------------------- run --

    def run(self, trace: Trace, max_cycles: int | None = None) -> SimulationResult:
        """Replay ``trace`` through the pipeline and return the simulation result."""
        if len(trace) == 0:
            raise ValueError("cannot simulate an empty trace")
        self._reset(trace)
        limit = max_cycles or self.config.max_cycles_per_instruction * len(trace)
        while self.committed < len(trace.ops):
            self._do_commit()
            self._do_complete()
            self._do_issue()
            self._do_rename()
            self._do_fetch()
            self.cycle += 1
            if self.cycle > limit:
                raise RuntimeError(
                    f"simulation exceeded {limit} cycles after committing "
                    f"{self.committed}/{len(trace.ops)} micro-ops of {trace.name!r}; "
                    "this indicates a pipeline deadlock")
        return self._build_result()

    # ------------------------------------------------------------------ fetch --

    def _do_fetch(self) -> None:
        config = self.config
        if self.pending_redirect is not None or self.cycle < self.fetch_blocked_until:
            self.counters["fetch_stall_cycles"] += 1
            return
        fetched = 0
        taken_branches = 0
        while (fetched < config.fetch_width
               and self.fetch_index < len(self.trace.ops)
               and len(self.frontend_queue) < config.frontend_queue_entries):
            op = self.trace.ops[self.fetch_index]
            # Instruction cache: one access per new line.
            line = op.pc // self.memory.config.l1i.line_bytes
            if line != self._last_fetch_line:
                latency = self.memory.access_instruction(op.pc, self.cycle)
                self._last_fetch_line = line
                if latency > self.memory.config.l1i.hit_latency:
                    self.fetch_blocked_until = self.cycle + latency
                    break
            entry = InflightOp(op, self.cycle, self.history.bits(64), self.path.bits(32))
            stop_fetching = False
            if op.is_branch:
                stop_fetching, taken_branches = self._fetch_branch(entry, taken_branches)
            self.frontend_queue.append(entry)
            self.fetch_index += 1
            fetched += 1
            if entry.branch_mispredicted:
                self.pending_redirect = entry
                break
            if stop_fetching:
                break

    def _fetch_branch(self, entry: InflightOp, taken_branches: int) -> tuple[bool, int]:
        """Predict a branch at fetch time; returns (stop fetching, taken branches so far)."""
        config = self.config
        op = entry.op
        stop = False
        if op.is_conditional_branch:
            self.counters["conditional_branches"] += 1
            prediction = self.branch_predictor.predict(op.pc, self.history, self.path)
            entry.predicted_taken = prediction.taken
            mispredicted = prediction.taken != op.taken
            self.branch_predictor.update(op.pc, op.taken, prediction)
            self.history.push(op.taken)
            self.path.push(op.pc)
            if mispredicted:
                entry.branch_mispredicted = True
                self.counters["branch_mispredictions"] += 1
            elif prediction.taken:
                stop = self._taken_branch_btb(op, taken_branches)
        elif op.opcode is Opcode.RET:
            predicted = self.ras.pop()
            self.path.push(op.pc)
            if predicted is None or predicted != op.target_pc:
                entry.branch_mispredicted = True
                self.counters["ras_mispredictions"] += 1
                self.counters["branch_mispredictions"] += 1
            else:
                stop = True
        else:
            # Direct jumps and calls are always (correctly) predicted taken.
            self.path.push(op.pc)
            if op.opcode is Opcode.CALL:
                self.ras.push(op.pc + 4)
            stop = self._taken_branch_btb(op, taken_branches)
        if op.taken:
            taken_branches += 1
            if taken_branches >= config.max_taken_branches_per_fetch + 1:
                stop = True
        return stop, taken_branches

    def _taken_branch_btb(self, op: DynamicOp, taken_branches: int) -> bool:
        """BTB lookup for a taken branch; a miss costs a short front-end redirect."""
        target = self.btb.lookup(op.pc)
        actual_target = op.target_pc if op.target_pc is not None else op.next_pc
        if target is None or target != actual_target:
            self.counters["btb_misses"] += 1
            self.btb.update(op.pc, actual_target)
            self.fetch_blocked_until = self.cycle + self.config.btb_miss_penalty
            return True
        return False

    # ----------------------------------------------------------------- rename --

    def _do_rename(self) -> None:
        config = self.config
        renamed = 0
        while renamed < config.rename_width and self.frontend_queue:
            entry = self.frontend_queue[0]
            if entry.fetch_cycle + config.frontend_depth > self.cycle:
                break
            op = entry.op
            if not self._rename_resources_available(entry):
                self.counters["rename_stall_cycles"] += 1
                break
            self.frontend_queue.pop(0)

            smb_prediction = None
            if (config.smb.enabled and op.is_load
                    and self.tracker.supports_memory_bypass):
                smb_prediction = self.smb_engine.predict(op, entry.history, entry.path)
            self._note_share_attempt(entry, smb_prediction)
            outcome = self.renamer.rename_op(
                op, entry.history, entry.path,
                resolve_producer=self._resolve_producer,
                smb_prediction=smb_prediction,
            )
            entry.rename_cycle = self.cycle
            entry.smb_prediction = smb_prediction
            entry.src_pregs = outcome.src_pregs
            entry.dest_preg = outcome.dest_preg
            entry.old_preg = outcome.old_preg
            entry.allocated = outcome.allocated
            entry.eliminated = outcome.eliminated
            entry.bypassed = outcome.bypassed
            entry.share_recorded = outcome.share_recorded
            entry.bypass_producer = outcome.bypass_producer
            entry.bypass_value_matches = outcome.bypass_value_matches

            if outcome.allocated and outcome.dest_preg is not None:
                self.preg_ready[outcome.dest_preg] = _NEVER

            entry.needs_execution = not (
                outcome.eliminated or op.op_class is OpClass.NOP)

            # Memory dependence prediction (Store Sets).
            if op.is_load:
                wait_seq = self.store_sets.lookup_load(op.pc)
                if wait_seq is not None and wait_seq < op.seq:
                    waiting_for = self.rob.lookup(wait_seq)
                    if waiting_for is not None and waiting_for.is_store \
                            and not waiting_for.committed:
                        entry.store_set_wait_seq = wait_seq
            elif op.is_store:
                self.store_sets.store_renamed(op.pc, op.seq)

            # Dispatch.
            self.rob.append(entry)
            if op.is_load or op.is_store:
                self.lsq.add(entry)
            if entry.needs_execution:
                self.iq.add(entry)
            else:
                entry.issued = True
                entry.completed = True
                entry.complete_cycle = self.cycle
            renamed += 1

    def _rename_resources_available(self, entry: InflightOp) -> bool:
        """Check ROB/IQ/LSQ/free-list availability, triggering lazy release if needed."""
        op = entry.op
        if self.rob.is_full():
            if self.config.lazy_reclaim:
                self._release_retained(force=True)
            if self.rob.is_full():
                return False
        if self.iq.is_full():
            return False
        if op.is_load and self.lsq.lq_full():
            return False
        if op.is_store and self.lsq.sq_full():
            return False
        if not self.renamer.can_rename(op):
            if self.config.lazy_reclaim:
                self._release_retained(force=True)
            if not self.renamer.can_rename(op):
                return False
        if self.config.lazy_reclaim:
            self._release_retained(force=False)
        return True

    def _resolve_producer(self, seq: int) -> ProducerInfo | None:
        """Locate a bypass producer by sequence number (ROB or retained entries)."""
        entry = self.rob.lookup(seq)
        if entry is None:
            return None
        if entry.committed and not self.config.smb.bypass_from_committed:
            return None
        if entry.dest_preg is None or not entry.op.writes_register:
            return None
        return ProducerInfo(
            seq=seq,
            preg=entry.dest_preg,
            value=entry.op.result,
            is_load=entry.is_load,
            is_committed=entry.committed,
        )

    def _note_share_attempt(self, entry: InflightOp, smb_prediction) -> None:
        """Track the inter-arrival distance of ISRB allocation attempts (Section 6.3)."""
        is_me_candidate = self.config.move_elimination.is_candidate(entry.op)
        is_smb_candidate = smb_prediction is not None
        if not (is_me_candidate or is_smb_candidate):
            return
        if self._last_share_attempt_seq is not None:
            self._share_attempt_gaps += entry.seq - self._last_share_attempt_seq
            self._share_attempt_count += 1
        self._last_share_attempt_seq = entry.seq

    # ------------------------------------------------------------------ issue --

    def _do_issue(self) -> None:
        config = self.config
        cycle = self.cycle

        def try_issue(entry: InflightOp) -> bool:
            for preg in entry.src_pregs:
                if self.preg_ready.get(preg, 0) > cycle:
                    return False
            pool = self.fus.pool_for(entry.op.op_class)
            if not pool.can_accept(cycle):
                return False
            if entry.is_load:
                latency = self._load_issue_latency(entry)
                if latency is None:
                    return False
            elif entry.is_store:
                latency = config.store_latency
            else:
                latency = self._execution_latency(entry.op)
            pool.accept(cycle, latency)
            entry.issued = True
            entry.issue_cycle = cycle
            entry.complete_cycle = cycle + latency
            heapq.heappush(self.execution_heap,
                           (entry.complete_cycle, entry.seq, self.epoch, entry))
            return True

        self.iq.issue(cycle, config.issue_width, try_issue)

    def _execution_latency(self, op: DynamicOp) -> int:
        """Fixed execution latency of a non-memory micro-op."""
        config = self.config
        op_class = op.op_class
        if op_class in (OpClass.INT_ALU, OpClass.INT_MOVE):
            return config.int_alu_latency
        if op_class is OpClass.INT_MUL:
            return config.int_mul_latency
        if op_class is OpClass.INT_DIV:
            return config.int_div_latency
        if op_class in (OpClass.FP_ALU, OpClass.FP_MOVE):
            return config.fp_alu_latency
        if op_class is OpClass.FP_MULDIV:
            return config.fp_div_latency if op.opcode is Opcode.FDIV else config.fp_mul_latency
        if op_class is OpClass.BRANCH:
            return config.branch_latency
        return config.int_alu_latency

    def _load_issue_latency(self, entry: InflightOp) -> int | None:
        """Memory-dependence checks and latency for a load; ``None`` means wait."""
        config = self.config
        op = entry.op

        # Store Sets dependence: the load waits until the predicted store executed.
        if entry.store_set_wait_seq is not None and not entry.bypassed:
            store = self.rob.lookup(entry.store_set_wait_seq)
            if store is not None and store.is_store and not store.committed \
                    and not store.completed:
                return None
            if not entry.false_dependency:
                store_op = self.trace.ops[entry.store_set_wait_seq]
                overlap = (store_op.mem_addr is not None and op.mem_addr is not None
                           and store_op.mem_addr < op.mem_addr + op.mem_size
                           and op.mem_addr < store_op.mem_addr + store_op.mem_size)
                if not overlap:
                    entry.false_dependency = True
                    self.counters["false_dependencies"] += 1

        decision = self.lsq.forwarding_for(entry)
        if decision.state is ForwardingState.PARTIAL_OVERLAP:
            store = decision.store
            if not (store.issued and store.completed):
                return None
            return config.stlf_latency + config.partial_forward_penalty
        if decision.state is ForwardingState.FORWARD:
            entry.stlf_forwarded = True
            return config.stlf_latency
        # No conflict, or the covering store has not executed yet (the load
        # proceeds with possibly stale data -- violation detected later).
        return self.memory.access_data(op.mem_addr, False, op.pc, self.cycle)

    # -------------------------------------------------------------- writeback --

    def _do_complete(self) -> None:
        cycle = self.cycle
        heap = self.execution_heap
        while heap and heap[0][0] <= cycle:
            _, _, epoch, entry = heapq.heappop(heap)
            if epoch != self.epoch or entry.completed:
                continue
            entry.completed = True
            if entry.allocated and entry.dest_preg is not None:
                self.preg_ready[entry.dest_preg] = entry.complete_cycle
            if entry.is_store:
                self._detect_violations(entry)
            if entry.is_load and entry.bypassed:
                self.smb_engine.note_validation(
                    entry.op, entry.bypass_value_matches,
                    entry.history, entry.path, entry.smb_prediction)
            if entry is self.pending_redirect:
                self._resolve_misprediction(entry)

    def _detect_violations(self, store: InflightOp) -> None:
        """A store executed: flag younger already-executed overlapping loads."""
        for load in self.lsq.violating_loads(store):
            if load.bypassed and load.bypass_value_matches:
                # The dependence was satisfied through the register file:
                # the trap is avoided (Section 3.1's third benefit of SMB).
                self.counters["traps_avoided_by_smb"] += 1
                continue
            if not load.violation:
                load.violation = True
                self.store_sets.train_violation(load.op.pc, store.op.pc)

    def _resolve_misprediction(self, branch: InflightOp) -> None:
        """A mispredicted branch resolved: restart fetch, charging the recovery cost."""
        wrong_path_estimate = min(
            self.rob.free_slots(),
            max(self.cycle - branch.rename_cycle, 1) * self.config.rename_width,
        ) if branch.rename_cycle >= 0 else self.config.rename_width
        extra = self.tracker.recovery_cycles(wrong_path_estimate, self.config.commit_width)
        extra = max(extra - 1, 0)  # a single-cycle repair is part of the base redirect
        self.counters["recovery_extra_cycles"] += extra
        self.fetch_blocked_until = max(self.fetch_blocked_until, self.cycle + 1 + extra)
        self.pending_redirect = None

    # ----------------------------------------------------------------- commit --

    def _do_commit(self) -> None:
        config = self.config
        committed_now = 0
        while committed_now < config.commit_width:
            entry = self.rob.head()
            if entry is None or not entry.completed:
                break
            if entry.violation or (entry.bypassed and not entry.bypass_value_matches):
                self._flush_at(entry)
                break
            self._commit_entry(entry)
            committed_now += 1

    def _commit_entry(self, entry: InflightOp) -> None:
        config = self.config
        op = entry.op
        csn = self.committed
        entry.committed = True
        entry.commit_cycle = self.cycle
        self.rob.pop_head()

        if op.is_load or op.is_store:
            self.lsq.remove_committed(entry)
            if op.is_store:
                # Drain the store to the cache (latency absorbed by the store buffer).
                self.memory.access_data(op.mem_addr, True, op.pc, self.cycle)
                self.store_sets.store_completed(op.pc, op.seq)
            else:
                self.counters["committed_loads"] += 1
                if entry.bypassed:
                    self.counters["committed_bypassed_loads"] += 1
        if entry.eliminated:
            self.counters["committed_eliminated_moves"] += 1

        if entry.share_recorded and entry.dest_preg is not None:
            self.tracker.on_share_commit(entry.dest_preg)

        if op.dest is not None and entry.dest_preg is not None:
            arch_flat = op.dest.flat_index
            previous = self.commit_map.lookup_flat(arch_flat)
            self.commit_map.raw()[arch_flat] = entry.dest_preg
            if entry.allocated:
                self._free_list_for_preg(entry.dest_preg).on_commit_allocate(entry.dest_preg)
            if previous >= 0 and previous != entry.dest_preg:
                if config.lazy_reclaim:
                    # Deferred: the ROB retains this entry until the release walk.
                    pass
                else:
                    self._reclaim_register(previous, arch_flat, entry.seq)

        # Commit-side SMB training (CSN table, DDT, distance predictor).
        self.smb_engine.train_commit(op, csn, entry.history, entry.path, entry.smb_prediction)
        self.committed += 1

    def _reclaim_register(self, preg: int, arch_flat: int, seq: int) -> None:
        """Ask the sharing tracker whether ``preg`` can return to the free list."""
        if self.tracker.is_tracked(preg):
            if self._last_reclaim_check_seq is not None:
                self._reclaim_check_gaps += seq - self._last_reclaim_check_seq
                self._reclaim_check_count += 1
            self._last_reclaim_check_seq = seq
        decision = self.tracker.reclaim(preg, arch_flat)
        if decision is ReclaimDecision.FREE:
            self._free_list_for_preg(preg).release(preg)

    def _release_retained(self, force: bool) -> None:
        """Lazy-reclaim release walk (Section 3.3).

        Triggered when the free list runs low or the ROB fills up
        (``force``), the walk releases retained committed entries and
        performs the register reclaims their commits deferred.
        """
        config = self.config
        def needs_release() -> bool:
            if force and (self.rob.is_full()
                          or self.int_free.is_empty() or self.fp_free.is_empty()):
                return True
            return (self.int_free.available() < config.free_list_low_watermark
                    or self.fp_free.available() < config.free_list_low_watermark
                    or self.rob.free_slots() < config.rename_width)

        released_any = False
        while needs_release() and self.rob.retained_count() > 0:
            entry = self.rob.pop_retained()
            if entry is None:
                break
            released_any = True
            if entry.op.dest is not None and entry.old_preg is not None \
                    and entry.old_preg >= 0 and entry.old_preg != entry.dest_preg:
                self._reclaim_register(entry.old_preg, entry.op.dest.flat_index, entry.seq)
        if released_any:
            self.counters["release_walks"] += 1

    # ------------------------------------------------------------------ flush --

    def _flush_at(self, entry: InflightOp) -> None:
        """Squash everything in flight and re-fetch starting at ``entry`` (trap at commit)."""
        if entry.violation:
            self.counters["memory_order_violations"] += 1
        else:
            self.counters["bypass_validation_flushes"] += 1

        squashed = self.rob.squash_all_inflight()
        self.iq.clear()
        self.lsq.squash_all()
        self.frontend_queue.clear()
        self.execution_heap.clear()
        self.epoch += 1
        self.pending_redirect = None

        # Restore the renamer to the committed state (Section 4.1).
        self.rename_map.copy_from(self.commit_map)
        self.int_free.restore_to_committed()
        self.fp_free.restore_to_committed()
        for preg in self.tracker.flush_to_committed():
            self._free_list_for_preg(preg).release(preg)

        # Re-fetch from the trapping instruction itself.
        self.fetch_index = entry.seq
        self._last_fetch_line = -1
        extra = self.tracker.recovery_cycles(len(squashed), self.config.commit_width)
        extra = max(extra - 1, 0)
        self.counters["recovery_extra_cycles"] += extra
        self.fetch_blocked_until = self.cycle + self.config.trap_penalty + extra

    # ------------------------------------------------------------------ utils --

    def _free_list_for_preg(self, preg: int) -> FreeList:
        return self.int_free if preg < self.config.num_int_pregs else self.fp_free

    def _build_result(self) -> SimulationResult:
        stats: dict[str, float] = dict(self.counters)
        stats.update(self.renamer.move_stats.as_dict())
        stats.update(self.smb_engine.stats_dict())
        for key, value in self.tracker.stats.as_dict().items():
            stats[f"tracker_{key}"] = value
        stats["tracker_storage_bits"] = self.tracker.storage_bits()
        stats["tracker_checkpoint_bits"] = self.tracker.checkpoint_bits()
        for key, value in self.memory.stats().items():
            stats[f"mem_{key}"] = value
        stats["rob_peak_occupancy"] = self.rob.peak_occupancy
        stats["iq_peak_occupancy"] = self.iq.peak_occupancy
        stats["lq_peak_occupancy"] = self.lsq.peak_lq
        stats["sq_peak_occupancy"] = self.lsq.peak_sq
        stats["renamed_instructions"] = self.renamer.move_stats.renamed_instructions
        if self._share_attempt_count:
            stats["isrb_alloc_mean_distance"] = (
                self._share_attempt_gaps / self._share_attempt_count)
        if self._reclaim_check_count:
            stats["isrb_reclaim_mean_distance"] = (
                self._reclaim_check_gaps / self._reclaim_check_count)
        if self.counters["committed_loads"]:
            stats["bypassed_load_fraction"] = (
                self.counters["committed_bypassed_loads"] / self.counters["committed_loads"])
        return SimulationResult(
            workload=self.trace.name,
            config_label=self.config.label(),
            cycles=self.cycle,
            instructions=self.committed,
            stats=stats,
        )


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def simulate_trace(trace: Trace, config: CoreConfig | None = None,
                   max_cycles: int | None = None) -> SimulationResult:
    """Run ``trace`` on a core with the given configuration."""
    return Core(config).run(trace, max_cycles=max_cycles)


def simulate(workload: str, config: CoreConfig | None = None, max_ops: int = 20_000,
             seed: int = 1, max_cycles: int | None = None) -> SimulationResult:
    """Generate workload ``workload`` and simulate it in one call."""
    from repro.workloads import generate_trace

    trace = generate_trace(workload, max_ops=max_ops, seed=seed)
    return simulate_trace(trace, config, max_cycles=max_cycles)
