"""The cycle-level out-of-order core model.

:class:`Core` replays a dynamic micro-op trace (produced by the functional
executor) through an out-of-order pipeline with the Table-1 organisation:

``fetch -> (front-end latency) -> rename/dispatch -> issue -> execute ->
writeback -> commit``

The model is trace driven: wrong-path instructions are never fetched, so
branch mispredictions appear as fetch stalls whose length is the real
resolution delay of the branch plus the redirect and the scheme-dependent
repair latency of the register sharing tracker.  Memory-order violations
and SMB validation failures, in contrast, squash *correct-path* in-flight
instructions and therefore exercise the full recovery machinery: the rename
map is restored from the commit rename map, the free lists fall back to
their committed image, and the sharing tracker is asked to
``flush_to_committed`` (Section 4.1's "squash at Commit" path).

Move elimination and speculative memory bypassing are performed at rename
time by :class:`repro.rename.renamer.Renamer`; this module supplies the ROB
producer lookup SMB needs, validates bypassed loads at writeback against
the architecturally correct value carried by the trace, and trains the
Instruction Distance predictor at commit through the
:class:`repro.core.smb.SmbEngine`.
"""

from __future__ import annotations

from collections import deque

from repro.backend.inflight import InflightOp
from repro.backend.lsq import ForwardingState, LoadStoreQueue
from repro.backend.rob import ReorderBuffer
from repro.backend.scheduler import FunctionalUnits, IssueQueue
from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.ras import ReturnAddressStack
from repro.bpred.tage import TageBranchPredictor
from repro.common.history import HistoryCheckpoint, PathHistory, ShiftHistory
from repro.core.smb import SmbEngine
from repro.core.tracker import ReclaimDecision, make_tracker
from repro.isa.executor import DynamicOp, Trace
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS, RegClass
from repro.memdep.store_sets import StoreSetsPredictor
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CoreConfig
from repro.pipeline.result import SimulationResult
from repro.pipeline.snapshot import CoreSnapshot
from repro.rename.maps import CommitRenameMap, FreeList, RenameMap
from repro.rename.renamer import ProducerInfo, Renamer

_NEVER = 1 << 60


def _by_seq(entry: InflightOp) -> int:
    """Sort key for same-cycle writeback ordering."""
    return entry.seq


class Core:
    """A configurable out-of-order core simulator."""

    def __init__(self, config: CoreConfig | None = None) -> None:
        self.config = config or CoreConfig()

    # ------------------------------------------------------------------ setup --

    def _reset(self, trace: Trace) -> None:
        config = self.config
        self.trace = trace
        self.cycle = 0
        self.committed = 0
        self.fetch_index = 0
        self.fetch_blocked_until = 0
        self.pending_redirect: InflightOp | None = None
        self.frontend_queue: deque[InflightOp] = deque()
        self._last_fetch_line = -1

        # Front end.
        self.branch_predictor = TageBranchPredictor(config.branch_predictor)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)
        self.ras = ReturnAddressStack(config.ras_depth)
        self.history = ShiftHistory(max_bits=256)
        self.path = PathHistory(max_bits=32)

        # Renaming.
        self.rename_map = RenameMap()
        self.commit_map = CommitRenameMap()
        self.int_free = FreeList(RegClass.INT, 0, config.num_int_pregs, NUM_INT_REGS)
        self.fp_free = FreeList(RegClass.FP, config.num_int_pregs, config.num_fp_pregs,
                                NUM_FP_REGS)
        for index in range(NUM_INT_REGS):
            self.rename_map.raw()[index] = index
            self.commit_map.raw()[index] = index
        for index in range(NUM_FP_REGS):
            self.rename_map.raw()[NUM_INT_REGS + index] = config.num_int_pregs + index
            self.commit_map.raw()[NUM_INT_REGS + index] = config.num_int_pregs + index

        self.tracker = make_tracker(config.tracker)
        self.smb_engine = SmbEngine(config.smb, num_arch_regs=NUM_INT_REGS + NUM_FP_REGS)
        self.renamer = Renamer(self.rename_map, self.int_free, self.fp_free, self.tracker,
                               config.move_elimination, self.smb_engine)

        # Back end.
        self.rob = ReorderBuffer(config.rob_entries, lazy_reclaim=config.lazy_reclaim)
        self.iq = IssueQueue(config.iq_entries)
        self.lsq = LoadStoreQueue(config.lq_entries, config.sq_entries)
        self.fus = FunctionalUnits()
        self.store_sets = StoreSetsPredictor(config.store_sets)
        self.memory = MemoryHierarchy(config.memory)

        # Physical register ready times, indexed by global preg number.  A
        # flat list beats a dict here: the issue stage probes it for every
        # source of every queued instruction every cycle.
        self.preg_ready: list[int] = [0] * config.num_phys_regs
        # Writeback event wheel: completion cycle -> ops finishing that
        # cycle.  The run loop advances one cycle at a time, so the
        # writeback stage pops exactly one bucket per cycle (O(1)) instead
        # of paying heapq's O(log n) per scheduled op.
        self.execution_wheel: dict[int, list[InflightOp]] = {}
        # Fixed execution latency per op class (FDIV is special-cased).
        self._latency_of_class = {
            OpClass.INT_ALU: config.int_alu_latency,
            OpClass.INT_MOVE: config.int_alu_latency,
            OpClass.INT_MUL: config.int_mul_latency,
            OpClass.INT_DIV: config.int_div_latency,
            OpClass.FP_ALU: config.fp_alu_latency,
            OpClass.FP_MOVE: config.fp_alu_latency,
            OpClass.FP_MULDIV: config.fp_mul_latency,
            OpClass.BRANCH: config.branch_latency,
            OpClass.NOP: config.int_alu_latency,
            OpClass.LOAD: config.int_alu_latency,
            OpClass.STORE: config.store_latency,
        }

        # Statistics.
        self.counters: dict[str, float] = {
            "conditional_branches": 0, "branch_mispredictions": 0, "btb_misses": 0,
            "ras_mispredictions": 0, "memory_order_violations": 0,
            "traps_avoided_by_smb": 0, "false_dependencies": 0,
            "bypass_validation_flushes": 0, "committed_loads": 0,
            "committed_bypassed_loads": 0, "committed_eliminated_moves": 0,
            "fetch_stall_cycles": 0, "rename_stall_cycles": 0,
            "recovery_extra_cycles": 0, "release_walks": 0,
        }
        # Commit sequence numbers continue across detailed windows of a
        # sampled simulation (restored from a snapshot); the SMB commit
        # training relies on their monotonicity.
        self._csn_base = 0
        self._first_commit_cycle = -1
        # Optional commit-count milestones (sampled simulation): the cycle
        # at which the N-th micro-op of this run commits, used to bound the
        # measured window inside a warmup/window/cooldown detailed stretch
        # without draining the pipeline at the measurement boundaries.
        self._milestone_commits: frozenset[int] | None = None
        self.milestone_cycles: dict[int, int] = {}
        self._last_share_attempt_seq: int | None = None
        self._share_attempt_gaps = 0.0
        self._share_attempt_count = 0
        self._last_reclaim_check_seq: int | None = None
        self._reclaim_check_gaps = 0.0
        self._reclaim_check_count = 0
        # Move-elimination candidacy depends only on the static instruction,
        # so the per-op share-attempt statistics can look it up by static
        # index instead of re-evaluating the policy every rename.
        self._me_candidate_cache: dict[int, bool] = {}

    # -------------------------------------------------------------------- run --

    def run(self, trace: Trace, max_cycles: int | None = None,
            resume: CoreSnapshot | None = None,
            commit_milestones=()) -> SimulationResult:
        """Replay ``trace`` through the pipeline and return the simulation result.

        ``resume`` warm-starts the run from a :class:`CoreSnapshot` taken
        by :meth:`snapshot` after an earlier run: predictors, caches,
        rename state and the sharing tracker begin where the previous
        detailed window left them, which is what lets the sampled
        simulation driver interleave fast-forward gaps between windows.

        ``commit_milestones`` records (in :attr:`milestone_cycles`) the
        cycle at which each given commit count is reached -- the sampled
        driver uses two milestones to bound the measured window inside a
        longer detailed run, keeping pipeline-fill and drain transients
        outside the measurement.
        """
        if len(trace) == 0:
            raise ValueError("cannot simulate an empty trace")
        self._reset(trace)
        if resume is not None:
            self._restore_snapshot(resume)
        if commit_milestones:
            self._milestone_commits = frozenset(commit_milestones)
        limit = max_cycles or self.config.max_cycles_per_instruction * len(trace)
        total = len(trace.ops)
        do_commit = self._do_commit
        do_complete = self._do_complete
        do_issue = self._do_issue
        do_rename = self._do_rename
        do_fetch = self._do_fetch
        while self.committed < total:
            do_commit()
            do_complete()
            do_issue()
            do_rename()
            do_fetch()
            self.cycle += 1
            if self.cycle > limit:
                raise RuntimeError(
                    f"simulation exceeded {limit} cycles after committing "
                    f"{self.committed}/{len(trace.ops)} micro-ops of {trace.name!r}; "
                    "this indicates a pipeline deadlock")
        return self._build_result()

    # ------------------------------------------------------------------ fetch --

    def _do_fetch(self) -> None:
        config = self.config
        if self.pending_redirect is not None or self.cycle < self.fetch_blocked_until:
            self.counters["fetch_stall_cycles"] += 1
            return
        fetched = 0
        taken_branches = 0
        ops = self.trace.ops
        total_ops = len(ops)
        queue = self.frontend_queue
        fetch_width = config.fetch_width
        queue_limit = config.frontend_queue_entries
        line_bytes = self.memory.config.l1i.line_bytes
        hit_latency = self.memory.config.l1i.hit_latency
        history = self.history
        path = self.path
        while (fetched < fetch_width
               and self.fetch_index < total_ops
               and len(queue) < queue_limit):
            op = ops[self.fetch_index]
            # Instruction cache: one access per new line.
            line = op.pc // line_bytes
            if line != self._last_fetch_line:
                latency = self.memory.access_instruction(op.pc, self.cycle)
                self._last_fetch_line = line
                if latency > hit_latency:
                    self.fetch_blocked_until = self.cycle + latency
                    break
            entry = InflightOp(op, self.cycle, history.bits(64), path.bits(32))
            stop_fetching = False
            if op.is_branch:
                stop_fetching, taken_branches = self._fetch_branch(entry, taken_branches)
            queue.append(entry)
            self.fetch_index += 1
            fetched += 1
            if entry.branch_mispredicted:
                self.pending_redirect = entry
                break
            if stop_fetching:
                break

    def _fetch_branch(self, entry: InflightOp, taken_branches: int) -> tuple[bool, int]:
        """Predict a branch at fetch time; returns (stop fetching, taken branches so far)."""
        config = self.config
        op = entry.op
        stop = False
        if op.is_conditional_branch:
            self.counters["conditional_branches"] += 1
            prediction = self.branch_predictor.predict(op.pc, self.history, self.path)
            entry.predicted_taken = prediction.taken
            mispredicted = prediction.taken != op.taken
            self.branch_predictor.update(op.pc, op.taken, prediction)
            self.history.push(op.taken)
            self.path.push(op.pc)
            if mispredicted:
                entry.branch_mispredicted = True
                self.counters["branch_mispredictions"] += 1
            elif prediction.taken:
                stop = self._taken_branch_btb(op, taken_branches)
        elif op.opcode is Opcode.RET:
            predicted = self.ras.pop()
            self.path.push(op.pc)
            if predicted is None or predicted != op.target_pc:
                entry.branch_mispredicted = True
                self.counters["ras_mispredictions"] += 1
                self.counters["branch_mispredictions"] += 1
            else:
                stop = True
        else:
            # Direct jumps and calls are always (correctly) predicted taken.
            self.path.push(op.pc)
            if op.opcode is Opcode.CALL:
                self.ras.push(op.pc + 4)
            stop = self._taken_branch_btb(op, taken_branches)
        if op.taken:
            taken_branches += 1
            if taken_branches >= config.max_taken_branches_per_fetch + 1:
                stop = True
        return stop, taken_branches

    def _taken_branch_btb(self, op: DynamicOp, taken_branches: int) -> bool:
        """BTB lookup for a taken branch; a miss costs a short front-end redirect."""
        target = self.btb.lookup(op.pc)
        actual_target = op.target_pc if op.target_pc is not None else op.next_pc
        if target is None or target != actual_target:
            self.counters["btb_misses"] += 1
            self.btb.update(op.pc, actual_target)
            self.fetch_blocked_until = self.cycle + self.config.btb_miss_penalty
            return True
        return False

    # ----------------------------------------------------------------- rename --

    def _do_rename(self) -> None:
        config = self.config
        renamed = 0
        queue = self.frontend_queue
        rename_width = config.rename_width
        frontend_depth = config.frontend_depth
        cycle = self.cycle
        smb_active = config.smb.enabled and self.tracker.supports_memory_bypass
        smb_predict = self.smb_engine.predict
        rename_op = self.renamer.rename_op
        resolve_producer = self._resolve_producer
        rob = self.rob
        iq = self.iq
        lsq = self.lsq
        preg_ready = self.preg_ready
        while renamed < rename_width and queue:
            entry = queue[0]
            if entry.fetch_cycle + frontend_depth > cycle:
                break
            op = entry.op
            if not self._rename_resources_available(entry):
                self.counters["rename_stall_cycles"] += 1
                break
            queue.popleft()

            smb_prediction = None
            if smb_active and op.is_load:
                smb_prediction = smb_predict(op, entry.history, entry.path)
            self._note_share_attempt(entry, smb_prediction)
            outcome = rename_op(
                op, entry.history, entry.path,
                resolve_producer=resolve_producer,
                smb_prediction=smb_prediction,
            )
            entry.rename_cycle = cycle
            entry.smb_prediction = smb_prediction
            entry.src_pregs = outcome.src_pregs
            entry.dest_preg = outcome.dest_preg
            entry.old_preg = outcome.old_preg
            entry.allocated = outcome.allocated
            entry.eliminated = outcome.eliminated
            entry.bypassed = outcome.bypassed
            entry.share_recorded = outcome.share_recorded
            entry.bypass_producer = outcome.bypass_producer
            entry.bypass_value_matches = outcome.bypass_value_matches

            if outcome.allocated and outcome.dest_preg is not None:
                preg_ready[outcome.dest_preg] = _NEVER

            entry.needs_execution = not (
                outcome.eliminated or op.op_class is OpClass.NOP)
            if entry.needs_execution:
                # Precompute scheduling constants so the issue stage never
                # re-derives them on its every-cycle wakeup scan.
                entry.fu_pool = self.fus.pool_for(op.op_class)
                if op.opcode is Opcode.FDIV:
                    entry.exec_latency = config.fp_div_latency
                else:
                    entry.exec_latency = self._latency_of_class[op.op_class]

            # Memory dependence prediction (Store Sets).
            if op.is_load:
                wait_seq = self.store_sets.lookup_load(op.pc)
                if wait_seq is not None and wait_seq < op.seq:
                    waiting_for = rob.lookup(wait_seq)
                    if waiting_for is not None and waiting_for.is_store \
                            and not waiting_for.committed:
                        entry.store_set_wait_seq = wait_seq
            elif op.is_store:
                self.store_sets.store_renamed(op.pc, op.seq)

            # Dispatch.
            rob.append(entry)
            if op.is_load or op.is_store:
                lsq.add(entry)
            if entry.needs_execution:
                iq.add(entry)
            else:
                entry.issued = True
                entry.completed = True
                entry.complete_cycle = cycle
            renamed += 1

    def _rename_resources_available(self, entry: InflightOp) -> bool:
        """Check ROB/IQ/LSQ/free-list availability, triggering lazy release if needed."""
        op = entry.op
        if self.rob.is_full():
            if self.config.lazy_reclaim:
                self._release_retained(force=True)
            if self.rob.is_full():
                return False
        if self.iq.is_full():
            return False
        if op.is_load and self.lsq.lq_full():
            return False
        if op.is_store and self.lsq.sq_full():
            return False
        if not self.renamer.can_rename(op):
            if self.config.lazy_reclaim:
                self._release_retained(force=True)
            if not self.renamer.can_rename(op):
                return False
        if self.config.lazy_reclaim:
            self._release_retained(force=False)
        return True

    def _resolve_producer(self, seq: int) -> ProducerInfo | None:
        """Locate a bypass producer by sequence number (ROB or retained entries)."""
        entry = self.rob.lookup(seq)
        if entry is None:
            return None
        if entry.committed and not self.config.smb.bypass_from_committed:
            return None
        if entry.dest_preg is None or not entry.op.writes_register:
            return None
        return ProducerInfo(
            seq=seq,
            preg=entry.dest_preg,
            value=entry.op.result,
            is_load=entry.is_load,
            is_committed=entry.committed,
        )

    def _note_share_attempt(self, entry: InflightOp, smb_prediction) -> None:
        """Track the inter-arrival distance of ISRB allocation attempts (Section 6.3)."""
        cache = self._me_candidate_cache
        static_index = entry.op.static_index
        is_me_candidate = cache.get(static_index)
        if is_me_candidate is None:
            is_me_candidate = self.config.move_elimination.is_candidate(entry.op)
            cache[static_index] = is_me_candidate
        is_smb_candidate = smb_prediction is not None
        if not (is_me_candidate or is_smb_candidate):
            return
        if self._last_share_attempt_seq is not None:
            self._share_attempt_gaps += entry.seq - self._last_share_attempt_seq
            self._share_attempt_count += 1
        self._last_share_attempt_seq = entry.seq

    # ------------------------------------------------------------------ issue --

    def _do_issue(self) -> None:
        """Oldest-first wakeup/select over the issue queue.

        This is the simulator's hottest loop -- every queued instruction is
        examined every cycle -- so it scans the queue storage directly with
        locally cached state instead of going through a per-entry callback
        (the callback-based :meth:`IssueQueue.issue` remains for unit tests
        and alternative cores).
        """
        entries = self.iq.entries()
        if not entries:
            return
        cycle = self.cycle
        issue_width = self.config.issue_width
        store_latency = self.config.store_latency
        preg_ready = self.preg_ready
        wheel = self.execution_wheel
        load_issue_latency = self._load_issue_latency
        issued = 0
        # ``remaining`` is materialised lazily: on the (common) cycles where
        # nothing issues, the scan allocates nothing and the queue keeps its
        # existing storage.
        remaining: list[InflightOp] | None = None
        for position, entry in enumerate(entries):
            if issued < issue_width:
                for preg in entry.src_pregs:
                    if preg_ready[preg] > cycle:
                        break
                else:
                    pool = entry.fu_pool
                    if pool.can_accept(cycle):
                        if entry.is_load:
                            latency = load_issue_latency(entry)
                        elif entry.is_store:
                            latency = store_latency
                        else:
                            latency = entry.exec_latency
                        if latency is not None:
                            pool.accept(cycle, latency)
                            entry.issued = True
                            entry.issue_cycle = cycle
                            complete_cycle = cycle + latency
                            entry.complete_cycle = complete_cycle
                            # Writeback for this cycle already ran, so a
                            # zero-latency op lands in the next cycle's
                            # bucket -- exactly when the former heap (popped
                            # with `<= cycle`) would have delivered it.
                            bucket_key = (complete_cycle if complete_cycle > cycle
                                          else cycle + 1)
                            bucket = wheel.get(bucket_key)
                            if bucket is None:
                                wheel[bucket_key] = [entry]
                            else:
                                bucket.append(entry)
                            issued += 1
                            if remaining is None:
                                remaining = entries[:position]
                            continue
            if remaining is not None:
                remaining.append(entry)
        if issued:
            self.iq.replace_entries(remaining, issued)

    def _load_issue_latency(self, entry: InflightOp) -> int | None:
        """Memory-dependence checks and latency for a load; ``None`` means wait."""
        config = self.config
        op = entry.op

        # Store Sets dependence: the load waits until the predicted store executed.
        if entry.store_set_wait_seq is not None and not entry.bypassed:
            store = self.rob.lookup(entry.store_set_wait_seq)
            if store is not None and store.is_store and not store.committed \
                    and not store.completed:
                return None
            if not entry.false_dependency:
                store_op = self.trace.ops[entry.store_set_wait_seq]
                overlap = (store_op.mem_addr is not None and op.mem_addr is not None
                           and store_op.mem_addr < op.mem_addr + op.mem_size
                           and op.mem_addr < store_op.mem_addr + store_op.mem_size)
                if not overlap:
                    entry.false_dependency = True
                    self.counters["false_dependencies"] += 1

        decision = self.lsq.forwarding_for(entry)
        if decision.state is ForwardingState.PARTIAL_OVERLAP:
            store = decision.store
            if not (store.issued and store.completed):
                return None
            return config.stlf_latency + config.partial_forward_penalty
        if decision.state is ForwardingState.FORWARD:
            entry.stlf_forwarded = True
            return config.stlf_latency
        # No conflict, or the covering store has not executed yet (the load
        # proceeds with possibly stale data -- violation detected later).
        return self.memory.access_data(op.mem_addr, False, op.pc, self.cycle)

    # -------------------------------------------------------------- writeback --

    def _do_complete(self) -> None:
        cycle = self.cycle
        bucket = self.execution_wheel.pop(cycle, None)
        if bucket is None:
            return
        # Same-cycle completions are processed oldest first (the order the
        # former writeback heap produced); ops issued in different cycles
        # can land in one bucket out of sequence order.
        bucket.sort(key=_by_seq)
        for entry in bucket:
            if entry.completed:
                continue
            entry.completed = True
            if entry.allocated and entry.dest_preg is not None:
                self.preg_ready[entry.dest_preg] = entry.complete_cycle
            if entry.is_store:
                self._detect_violations(entry)
            if entry.is_load and entry.bypassed:
                self.smb_engine.note_validation(
                    entry.op, entry.bypass_value_matches,
                    entry.history, entry.path, entry.smb_prediction)
            if entry is self.pending_redirect:
                self._resolve_misprediction(entry)

    def _detect_violations(self, store: InflightOp) -> None:
        """A store executed: flag younger already-executed overlapping loads."""
        for load in self.lsq.violating_loads(store):
            if load.bypassed and load.bypass_value_matches:
                # The dependence was satisfied through the register file:
                # the trap is avoided (Section 3.1's third benefit of SMB).
                self.counters["traps_avoided_by_smb"] += 1
                continue
            if not load.violation:
                load.violation = True
                self.store_sets.train_violation(load.op.pc, store.op.pc)

    def _resolve_misprediction(self, branch: InflightOp) -> None:
        """A mispredicted branch resolved: restart fetch, charging the recovery cost."""
        wrong_path_estimate = min(
            self.rob.free_slots(),
            max(self.cycle - branch.rename_cycle, 1) * self.config.rename_width,
        ) if branch.rename_cycle >= 0 else self.config.rename_width
        extra = self.tracker.recovery_cycles(wrong_path_estimate, self.config.commit_width)
        extra = max(extra - 1, 0)  # a single-cycle repair is part of the base redirect
        self.counters["recovery_extra_cycles"] += extra
        self.fetch_blocked_until = max(self.fetch_blocked_until, self.cycle + 1 + extra)
        self.pending_redirect = None

    # ----------------------------------------------------------------- commit --

    def _do_commit(self) -> None:
        config = self.config
        committed_now = 0
        while committed_now < config.commit_width:
            entry = self.rob.head()
            if entry is None or not entry.completed:
                break
            if entry.violation or (entry.bypassed and not entry.bypass_value_matches):
                self._flush_at(entry)
                break
            self._commit_entry(entry)
            committed_now += 1

    def _commit_entry(self, entry: InflightOp) -> None:
        config = self.config
        op = entry.op
        csn = self._csn_base + self.committed
        if self._first_commit_cycle < 0:
            self._first_commit_cycle = self.cycle
        entry.committed = True
        entry.commit_cycle = self.cycle
        self.rob.pop_head()

        if op.is_load or op.is_store:
            self.lsq.remove_committed(entry)
            if op.is_store:
                # Drain the store to the cache (latency absorbed by the store buffer).
                self.memory.access_data(op.mem_addr, True, op.pc, self.cycle)
                self.store_sets.store_completed(op.pc, op.seq)
            else:
                self.counters["committed_loads"] += 1
                if entry.bypassed:
                    self.counters["committed_bypassed_loads"] += 1
        if entry.eliminated:
            self.counters["committed_eliminated_moves"] += 1

        if entry.share_recorded and entry.dest_preg is not None:
            self.tracker.on_share_commit(entry.dest_preg)

        if op.dest is not None and entry.dest_preg is not None:
            arch_flat = op.dest_flat
            previous = self.commit_map.lookup_flat(arch_flat)
            self.commit_map.raw()[arch_flat] = entry.dest_preg
            if entry.allocated:
                self._free_list_for_preg(entry.dest_preg).on_commit_allocate(entry.dest_preg)
            if previous >= 0 and previous != entry.dest_preg:
                if config.lazy_reclaim:
                    # Deferred: the ROB retains this entry until the release walk.
                    pass
                else:
                    self._reclaim_register(previous, arch_flat, entry.seq)

        # Commit-side SMB training (CSN table, DDT, distance predictor).
        self.smb_engine.train_commit(op, csn, entry.history, entry.path, entry.smb_prediction)
        self.committed += 1
        if self._milestone_commits is not None \
                and self.committed in self._milestone_commits:
            self.milestone_cycles[self.committed] = self.cycle

    def _reclaim_register(self, preg: int, arch_flat: int, seq: int) -> None:
        """Ask the sharing tracker whether ``preg`` can return to the free list."""
        if self.tracker.is_tracked(preg):
            if self._last_reclaim_check_seq is not None:
                self._reclaim_check_gaps += seq - self._last_reclaim_check_seq
                self._reclaim_check_count += 1
            self._last_reclaim_check_seq = seq
        decision = self.tracker.reclaim(preg, arch_flat)
        if decision is ReclaimDecision.FREE:
            self._free_list_for_preg(preg).release(preg)

    def _release_retained(self, force: bool) -> None:
        """Lazy-reclaim release walk (Section 3.3).

        Triggered when the free list runs low or the ROB fills up
        (``force``), the walk releases retained committed entries and
        performs the register reclaims their commits deferred.
        """
        config = self.config
        def needs_release() -> bool:
            if force and (self.rob.is_full()
                          or self.int_free.is_empty() or self.fp_free.is_empty()):
                return True
            return (self.int_free.available() < config.free_list_low_watermark
                    or self.fp_free.available() < config.free_list_low_watermark
                    or self.rob.free_slots() < config.rename_width)

        released_any = False
        while needs_release() and self.rob.retained_count() > 0:
            entry = self.rob.pop_retained()
            if entry is None:
                break
            released_any = True
            if entry.op.dest is not None and entry.old_preg is not None \
                    and entry.old_preg >= 0 and entry.old_preg != entry.dest_preg:
                self._reclaim_register(entry.old_preg, entry.op.dest_flat, entry.seq)
        if released_any:
            self.counters["release_walks"] += 1

    # ------------------------------------------------------------------ flush --

    def _flush_at(self, entry: InflightOp) -> None:
        """Squash everything in flight and re-fetch starting at ``entry`` (trap at commit)."""
        if entry.violation:
            self.counters["memory_order_violations"] += 1
        else:
            self.counters["bypass_validation_flushes"] += 1

        squashed = self.rob.squash_all_inflight()
        self.iq.clear()
        self.lsq.squash_all()
        self.frontend_queue.clear()
        self.execution_wheel.clear()
        self.pending_redirect = None

        # Restore the renamer to the committed state (Section 4.1).
        self.rename_map.copy_from(self.commit_map)
        self.int_free.restore_to_committed()
        self.fp_free.restore_to_committed()
        for preg in self.tracker.flush_to_committed():
            self._free_list_for_preg(preg).release(preg)

        # Re-fetch from the trapping instruction itself.
        self.fetch_index = entry.seq
        self._last_fetch_line = -1
        extra = self.tracker.recovery_cycles(len(squashed), self.config.commit_width)
        extra = max(extra - 1, 0)
        self.counters["recovery_extra_cycles"] += extra
        self.fetch_blocked_until = self.cycle + self.config.trap_penalty + extra

    # --------------------------------------------------------- snapshot/restore --

    def snapshot(self) -> CoreSnapshot:
        """Capture the warm micro-architectural state after a completed run.

        Only valid with the pipeline drained (i.e. right after :meth:`run`
        returned).  Deferred lazy reclaims are completed first so that no
        register liveness depends on retained ROB entries, which are not
        part of the snapshot; see :mod:`repro.pipeline.snapshot` for the
        full list of invariants.
        """
        if self.rob.head() is not None or self.frontend_queue or len(self.iq) \
                or self.execution_wheel or self.pending_redirect is not None:
            raise RuntimeError("snapshot requires a drained pipeline")
        # Complete every deferred reclaim (lazy-reclaim release walk).
        while self.rob.retained_count() > 0:
            entry = self.rob.pop_retained()
            if entry is None:
                break
            if entry.op.dest is not None and entry.old_preg is not None \
                    and entry.old_preg >= 0 and entry.old_preg != entry.dest_preg:
                self._reclaim_register(entry.old_preg, entry.op.dest_flat, entry.seq)
        config = self.config
        return CoreSnapshot(
            variant=config.variant_name(),
            num_int_pregs=config.num_int_pregs,
            num_fp_pregs=config.num_fp_pregs,
            next_csn=self._csn_base + self.committed,
            branch_predictor=self.branch_predictor.to_snapshot(),
            btb=self.btb.to_snapshot(),
            ras=self.ras.to_snapshot(),
            history=self.history.value,
            path=self.path.value,
            rename_map=self.commit_map.to_snapshot(),
            int_free=self.int_free.to_snapshot(),
            fp_free=self.fp_free.to_snapshot(),
            tracker=self.tracker.to_snapshot(),
            store_sets=self.store_sets.to_snapshot(),
            memory=self.memory.to_snapshot(self.cycle),
            smb=self.smb_engine.to_snapshot(),
        )

    def _restore_snapshot(self, snap: CoreSnapshot) -> None:
        """Overwrite the freshly-reset core state with a snapshot (cycle rebased to 0)."""
        if not snap.compatible_with(self.config):
            raise ValueError(
                f"snapshot of machine {snap.variant!r} cannot be restored into "
                f"{self.config.variant_name()!r}")
        self.branch_predictor.restore_snapshot(snap.branch_predictor)
        self.btb.restore_snapshot(snap.btb)
        self.ras.restore_snapshot(snap.ras)
        self.history.restore(HistoryCheckpoint(snap.history, self.history.max_bits))
        self.path.restore(HistoryCheckpoint(snap.path, self.path.max_bits))
        # With the pipeline drained the speculative and commit maps agree,
        # so one image restores both.
        self.rename_map.restore_snapshot(snap.rename_map)
        self.commit_map.restore_snapshot(snap.rename_map)
        self.int_free.restore_snapshot(snap.int_free)
        self.fp_free.restore_snapshot(snap.fp_free)
        self.tracker.restore_snapshot(snap.tracker)
        self.store_sets.restore_snapshot(snap.store_sets)
        self.memory.restore_snapshot(snap.memory, now=0)
        self.smb_engine.restore_snapshot(snap.smb)
        self._csn_base = snap.next_csn

    # ------------------------------------------------------------------ utils --

    def _free_list_for_preg(self, preg: int) -> FreeList:
        return self.int_free if preg < self.config.num_int_pregs else self.fp_free

    def _build_result(self) -> SimulationResult:
        stats: dict[str, float] = dict(self.counters)
        stats.update(self.renamer.move_stats.as_dict())
        stats.update(self.smb_engine.stats_dict())
        for key, value in self.tracker.stats.as_dict().items():
            stats[f"tracker_{key}"] = value
        stats["tracker_storage_bits"] = self.tracker.storage_bits()
        stats["tracker_checkpoint_bits"] = self.tracker.checkpoint_bits()
        for key, value in self.memory.stats().items():
            stats[f"mem_{key}"] = value
        stats["first_commit_cycle"] = max(self._first_commit_cycle, 0)
        stats["rob_peak_occupancy"] = self.rob.peak_occupancy
        stats["iq_peak_occupancy"] = self.iq.peak_occupancy
        stats["lq_peak_occupancy"] = self.lsq.peak_lq
        stats["sq_peak_occupancy"] = self.lsq.peak_sq
        stats["renamed_instructions"] = self.renamer.move_stats.renamed_instructions
        if self._share_attempt_count:
            stats["isrb_alloc_mean_distance"] = (
                self._share_attempt_gaps / self._share_attempt_count)
        if self._reclaim_check_count:
            stats["isrb_reclaim_mean_distance"] = (
                self._reclaim_check_gaps / self._reclaim_check_count)
        if self.counters["committed_loads"]:
            stats["bypassed_load_fraction"] = (
                self.counters["committed_bypassed_loads"] / self.counters["committed_loads"])
        return SimulationResult(
            workload=self.trace.name,
            config_label=self.config.label(),
            cycles=self.cycle,
            instructions=self.committed,
            stats=stats,
        )


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def simulate_trace(trace: Trace, config: CoreConfig | None = None,
                   max_cycles: int | None = None) -> SimulationResult:
    """Run ``trace`` on a core with the given configuration."""
    return Core(config).run(trace, max_cycles=max_cycles)


def simulate(workload: str, config: CoreConfig | None = None, max_ops: int = 20_000,
             seed: int = 1, max_cycles: int | None = None) -> SimulationResult:
    """Generate workload ``workload`` and simulate it in one call."""
    from repro.workloads import generate_trace

    trace = generate_trace(workload, max_ops=max_ops, seed=seed)
    return simulate_trace(trace, config, max_cycles=max_cycles)
