"""Simulation results and comparison helpers."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimulationResult:
    """Outcome of one trace replay through the core model.

    Attributes
    ----------
    workload:
        Name of the workload that was simulated.
    config_label:
        Short description of the configuration (from
        :meth:`repro.pipeline.config.CoreConfig.label`).
    cycles:
        Number of simulated cycles.
    instructions:
        Number of committed micro-ops.
    stats:
        Flat dictionary of every event counter collected during the run
        (branch mispredictions, memory-order traps, eliminated moves,
        bypassed loads, tracker statistics, cache statistics, ...).
    """

    workload: str
    config_label: str
    cycles: int
    instructions: int
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed micro-ops per cycle."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Speedup of this run relative to ``baseline`` (same workload expected)."""
        if baseline.workload != self.workload:
            raise ValueError(
                f"comparing different workloads: {baseline.workload!r} vs {self.workload!r}")
        if baseline.instructions != self.instructions:
            raise ValueError(
                "comparing runs that committed different instruction counts "
                f"({baseline.instructions} vs {self.instructions})")
        if self.cycles <= 0 or baseline.cycles <= 0:
            raise ValueError("cycle counts must be positive to compute a speedup")
        return baseline.cycles / self.cycles

    def stat(self, key: str, default: float = 0.0) -> float:
        """Return one statistic (0 when absent)."""
        return self.stats.get(key, default)

    # -- serialization (used by the experiment harness artifacts) -------------------

    def to_dict(self) -> dict:
        """Return a JSON-serialisable representation of this result."""
        return {
            "workload": self.workload,
            "config_label": self.config_label,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output (``ipc`` is derived)."""
        return cls(
            workload=data["workload"],
            config_label=data["config_label"],
            cycles=int(data["cycles"]),
            instructions=int(data["instructions"]),
            stats=dict(data.get("stats", {})),
        )

    def summary(self) -> str:
        """One-line summary used by the examples."""
        return (f"{self.workload:18s} [{self.config_label}] "
                f"cycles={self.cycles:8d} instructions={self.instructions:7d} "
                f"IPC={self.ipc:5.2f}")

    def __repr__(self) -> str:
        return (f"SimulationResult(workload={self.workload!r}, config={self.config_label!r}, "
                f"cycles={self.cycles}, instructions={self.instructions}, ipc={self.ipc:.3f})")
