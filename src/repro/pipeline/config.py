"""Core configuration (Table 1 of the paper, plus the optimisation knobs).

The default :class:`CoreConfig` reproduces the baseline machine of Table 1:
an 8-wide front end feeding a 6-issue out-of-order engine with a 192-entry
ROB, 60-entry issue queue, 72/48-entry load/store queues, 256+256 physical
registers, a TAGE branch predictor, Store Sets memory dependence prediction
and a three-level memory hierarchy.  Move elimination and SMB are *off* by
default; the ``with_*`` helpers return derived configurations used by the
experiments.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field

from repro.bpred.tage import TageConfig
from repro.core.ddt import DdtConfig
from repro.core.move_elim import MoveEliminationPolicy
from repro.core.smb import SmbConfig
from repro.core.tracker import TrackerConfig
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS
from repro.memdep.store_sets import StoreSetsConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.telemetry.trace import TraceConfig


@dataclass(frozen=True)
class CoreConfig:
    """Full description of the simulated machine."""

    # -- pipeline widths ---------------------------------------------------------
    fetch_width: int = 8
    rename_width: int = 8
    issue_width: int = 6
    commit_width: int = 8
    max_taken_branches_per_fetch: int = 1

    # -- window sizes ------------------------------------------------------------
    rob_entries: int = 192
    iq_entries: int = 60
    lq_entries: int = 72
    sq_entries: int = 48
    num_int_pregs: int = 256
    num_fp_pregs: int = 256
    frontend_queue_entries: int = 96

    # -- pipeline depths and penalties (cycles) ------------------------------------
    frontend_depth: int = 15
    btb_miss_penalty: int = 2
    trap_penalty: int = 5
    ras_mispredict_penalty: int = 0  # resolved like a branch misprediction

    # -- execution latencies (cycles) ----------------------------------------------
    int_alu_latency: int = 1
    int_mul_latency: int = 3
    int_div_latency: int = 25
    fp_alu_latency: int = 3
    fp_mul_latency: int = 5
    fp_div_latency: int = 10
    branch_latency: int = 1
    store_latency: int = 1
    stlf_latency: int = 4
    partial_forward_penalty: int = 2

    # -- front end ---------------------------------------------------------------
    branch_predictor: TageConfig = field(default_factory=TageConfig)
    btb_entries: int = 4096
    btb_ways: int = 2
    ras_depth: int = 32

    # -- memory dependence and hierarchy -------------------------------------------
    store_sets: StoreSetsConfig = field(default_factory=StoreSetsConfig)
    memory: HierarchyConfig = field(default_factory=HierarchyConfig)

    # -- the paper's optimisations --------------------------------------------------
    move_elimination: MoveEliminationPolicy = field(
        default_factory=lambda: MoveEliminationPolicy(enabled=False))
    smb: SmbConfig = field(default_factory=lambda: SmbConfig(enabled=False))
    tracker: TrackerConfig = field(default_factory=lambda: TrackerConfig(
        scheme="isrb", entries=32, counter_bits=3,
        num_phys_regs=512, num_arch_regs=NUM_INT_REGS + NUM_FP_REGS, rob_entries=192))
    lazy_reclaim: bool = False
    free_list_low_watermark: int = 16

    # -- simulator execution strategy (no effect on simulated behaviour) ------------
    #: Event-driven cycle skipping: when no pipeline stage can make progress
    #: this cycle, jump straight to the next cycle at which one can, crediting
    #: the skipped span to the stall counters.  Results are bit-identical to
    #: the per-cycle walk (enforced by the differential tests); the flag only
    #: exists so those tests can run both modes.
    cycle_skipping: bool = True
    #: Opt-in per-instruction pipeline event tracing
    #: (:class:`~repro.telemetry.trace.TraceConfig`).  ``None`` -- the
    #: default -- constructs no tracer at all, keeping the hot loops on
    #: their event-driven fast path; a traced run records lifecycle events
    #: for the configured sequence window with bit-identical simulation
    #: results (the tracer only reads pipeline state; enforced by
    #: ``tests/test_telemetry.py``).
    trace: TraceConfig | None = None

    # -- safety -------------------------------------------------------------------
    max_cycles_per_instruction: int = 400

    def __post_init__(self) -> None:
        if self.rename_width < 1 or self.issue_width < 1 or self.commit_width < 1:
            raise ValueError("pipeline widths must be >= 1")
        if self.num_int_pregs <= NUM_INT_REGS or self.num_fp_pregs <= NUM_FP_REGS:
            raise ValueError("each physical register file must exceed the architectural count")

    # -- derived values -----------------------------------------------------------

    @property
    def num_phys_regs(self) -> int:
        """Total number of physical registers across both classes."""
        return self.num_int_pregs + self.num_fp_pregs

    # -- derived configurations -----------------------------------------------------

    def replace(self, **changes) -> "CoreConfig":
        """A copy of this configuration with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_tracker(self, scheme: str = "isrb", entries: int | None = 32,
                     counter_bits: int | None = 3, checkpoints: int = 8) -> "CoreConfig":
        """A copy with a different sharing tracker."""
        tracker = TrackerConfig(
            scheme=scheme, entries=entries, counter_bits=counter_bits, checkpoints=checkpoints,
            num_phys_regs=self.num_phys_regs, num_arch_regs=NUM_INT_REGS + NUM_FP_REGS,
            rob_entries=self.rob_entries)
        return self.replace(tracker=tracker)

    def with_move_elimination(self, enabled: bool = True, fp_moves: bool = False) -> "CoreConfig":
        """A copy with move elimination switched on (or off)."""
        policy = MoveEliminationPolicy(enabled=enabled, fp_moves=fp_moves)
        return self.replace(move_elimination=policy)

    def with_smb(self, enabled: bool = True, predictor: str = "tage",
                 allow_load_load: bool = True, bypass_from_committed: bool = False,
                 ddt_entries: int | None = 16384, ddt_tag_bits: int = 14) -> "CoreConfig":
        """A copy with speculative memory bypassing configured."""
        smb = SmbConfig(
            enabled=enabled, predictor=predictor, allow_load_load=allow_load_load,
            bypass_from_committed=bypass_from_committed,
            ddt=DdtConfig(entries=ddt_entries, tag_bits=ddt_tag_bits))
        lazy = bypass_from_committed or self.lazy_reclaim
        return self.replace(smb=smb, lazy_reclaim=lazy)

    def with_trace(self, start: int = 0, limit: int = 256,
                   max_events: int = 100_000) -> "CoreConfig":
        """A copy with pipeline event tracing enabled for one seq window."""
        return self.replace(trace=TraceConfig(start=start, limit=limit,
                                              max_events=max_events))

    def variant_name(self) -> str:
        """Filesystem- and table-safe name for this configuration variant.

        Unlike :meth:`label` (free-form, for humans) the variant name only
        uses ``[a-z0-9._-]`` so the experiment harness can key artifact
        files, report columns and cache entries on it.
        """
        tracker = self.tracker
        entries = "unl" if tracker.entries is None else str(tracker.entries)
        bits = "unl" if tracker.counter_bits is None else str(tracker.counter_bits)
        parts = [f"{tracker.scheme}-e{entries}-c{bits}"]
        if self.move_elimination.enabled:
            parts.append("me")
        if self.smb.enabled:
            smb = f"smb.{self.smb.predictor}"
            if self.smb.bypass_from_committed:
                smb += ".committed"
            parts.append(smb)
        if len(parts) == 1:
            parts.append("base")
        return "_".join(parts)

    def warm_signature(self) -> str:
        """Fingerprint of the structures functional warming trains.

        Two configurations with the same signature can share a
        :class:`~repro.pipeline.sampling.SamplePlan` (the checkpoint farm):
        the plan's warm images only describe the memory hierarchy, the BTB
        and the RAS, plus the history registers whose width is fixed.
        Tracker scheme, move elimination, SMB and register-file sizing are
        deliberately excluded -- they are scheme-local detailed state.
        """
        payload = repr((self.memory, self.btb_entries, self.btb_ways,
                        self.ras_depth))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        """JSON-serialisable summary of the knobs the experiment grid varies.

        This is deliberately not a full round-trippable dump of every
        sub-configuration: it records the sweep-relevant knobs (tracker,
        optimisations, window/register sizing) so report artifacts are
        self-describing.
        """
        return {
            "label": self.label(),
            "variant": self.variant_name(),
            "tracker": {
                "scheme": self.tracker.scheme,
                "entries": self.tracker.entries,
                "counter_bits": self.tracker.counter_bits,
                "checkpoints": self.tracker.checkpoints,
            },
            "move_elimination": {
                "enabled": self.move_elimination.enabled,
                "fp_moves": self.move_elimination.fp_moves,
            },
            "smb": {
                "enabled": self.smb.enabled,
                "predictor": self.smb.predictor,
                "allow_load_load": self.smb.allow_load_load,
                "bypass_from_committed": self.smb.bypass_from_committed,
            },
            "rob_entries": self.rob_entries,
            "iq_entries": self.iq_entries,
            "num_int_pregs": self.num_int_pregs,
            "num_fp_pregs": self.num_fp_pregs,
            "lazy_reclaim": self.lazy_reclaim,
        }

    def label(self) -> str:
        """Short human-readable description of the optimisation configuration."""
        parts = []
        if self.move_elimination.enabled:
            parts.append("ME")
        if self.smb.enabled:
            suffix = "+committed" if self.smb.bypass_from_committed else ""
            parts.append(f"SMB({self.smb.predictor}{suffix})")
        if not parts:
            parts.append("baseline")
        entries = self.tracker.entries if self.tracker.entries is not None else "unl"
        parts.append(f"{self.tracker.scheme}:{entries}")
        return "+".join(parts)
