"""Per-instruction pipeline state.

An :class:`InflightOp` wraps one dynamic micro-op from fetch until it
commits (and, under lazy register reclaiming, until its ROB entry is
released).  It carries the renaming outcome, scheduling state and all the
flags the commit stage needs (memory-order violation, bypass validation
result, ...).
"""

from __future__ import annotations

from repro.core.distance import DistancePrediction
from repro.isa.executor import DynamicOp
from repro.rename.renamer import ProducerInfo


class InflightOp:
    """One micro-op travelling through the pipeline."""

    __slots__ = (
        "op", "seq", "fetch_cycle", "rename_cycle", "history", "path",
        "is_load", "is_store", "is_branch", "mem_addr", "mem_size",
        "predicted_taken", "branch_mispredicted",
        "src_pregs", "dest_preg", "old_preg", "allocated", "eliminated", "bypassed",
        "share_recorded", "bypass_producer", "bypass_value_matches", "smb_prediction",
        "store_set_wait_seq", "false_dependency", "stlf_forwarded",
        "needs_execution", "issued", "issue_cycle", "completed", "complete_cycle",
        "fu_pool", "exec_latency", "wait_count",
        "violation", "committed", "commit_cycle", "released",
    )

    def __init__(self, op: DynamicOp, fetch_cycle: int, history: int, path: int) -> None:
        self.op = op
        self.seq = op.seq
        self.fetch_cycle = fetch_cycle
        self.rename_cycle = -1
        self.history = history
        self.path = path
        # Classification and memory footprint, copied from the dynamic op so
        # the scheduler and LSQ never chase ``self.op`` on their hot loops.
        self.is_load = op.is_load
        self.is_store = op.is_store
        self.is_branch = op.is_branch
        self.mem_addr = op.mem_addr
        self.mem_size = op.mem_size
        self.predicted_taken: bool | None = None
        self.branch_mispredicted = False
        # Renaming outcome.
        self.src_pregs: tuple[int, ...] = ()
        self.dest_preg: int | None = None
        self.old_preg: int | None = None
        self.allocated = False
        self.eliminated = False
        self.bypassed = False
        self.share_recorded = False
        self.bypass_producer: ProducerInfo | None = None
        self.bypass_value_matches = True
        self.smb_prediction: DistancePrediction | None = None
        # Memory dependence state.
        self.store_set_wait_seq: int | None = None
        self.false_dependency = False
        self.stlf_forwarded = False
        # Scheduling state.
        self.needs_execution = True
        self.issued = False
        self.issue_cycle = -1
        self.completed = False
        self.complete_cycle = -1
        # Precomputed at dispatch: the functional unit pool this op executes
        # on and (for non-memory ops) its fixed execution latency.
        self.fu_pool = None
        self.exec_latency = 0
        # Number of source registers still waiting for a producer writeback
        # (maintained by the core's event-driven wakeup lists).
        self.wait_count = 0
        # Commit state.
        self.violation = False
        self.committed = False
        self.commit_cycle = -1
        self.released = False

    # -- convenience views --------------------------------------------------------

    @property
    def shared(self) -> bool:
        """``True`` when the destination mapping references a shared register."""
        return self.eliminated or self.bypassed

    def overlaps(self, other: "InflightOp") -> bool:
        """Do the memory footprints of two micro-ops overlap?"""
        if self.mem_addr is None or other.mem_addr is None:
            return False
        return (self.mem_addr < other.mem_addr + other.mem_size
                and other.mem_addr < self.mem_addr + self.mem_size)

    def covers(self, other: "InflightOp") -> bool:
        """Does this micro-op's footprint fully contain ``other``'s?"""
        if self.mem_addr is None or other.mem_addr is None:
            return False
        return (self.mem_addr <= other.mem_addr
                and other.mem_addr + other.mem_size <= self.mem_addr + self.mem_size)

    def __repr__(self) -> str:
        return (f"InflightOp(seq={self.seq}, {self.op.opcode.value}, "
                f"issued={self.issued}, completed={self.completed})")
