"""Issue queue and functional unit pools.

Table 1 models a unified 60-entry issue queue and a 6-wide issue stage
feeding: four 1-cycle ALUs, one non-pipelined integer multiply/divide unit
(3 / 25 cycles), two 3-cycle FP units, two non-pipelined FP multiply/divide
units (5 / 10 cycles), two load ports and one store port.

The issue queue selects ready instructions oldest-first each cycle, subject
to the issue width and to a caller-supplied readiness check (the core model
supplies a closure that checks operand readiness, memory-dependence
constraints and functional unit availability).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.backend.inflight import InflightOp
from repro.isa.opcodes import OpClass


class FunctionalUnitPool:
    """A pool of identical functional units.

    Pipelined pools accept up to ``count`` new operations per cycle.
    Non-pipelined pools additionally keep each unit busy for the full
    latency of the operation it accepted.
    """

    __slots__ = ("name", "count", "pipelined", "_issued_this_cycle",
                 "_current_cycle", "_busy_until", "operations")

    def __init__(self, name: str, count: int, pipelined: bool = True) -> None:
        if count < 1:
            raise ValueError(f"functional unit pool {name!r} needs at least one unit")
        self.name = name
        self.count = count
        self.pipelined = pipelined
        self._issued_this_cycle = 0
        self._current_cycle = -1
        self._busy_until = [0] * count
        self.operations = 0

    def _roll_cycle(self, cycle: int) -> None:
        if cycle != self._current_cycle:
            self._current_cycle = cycle
            self._issued_this_cycle = 0

    def can_accept(self, cycle: int) -> bool:
        """Can one more operation start on this pool at ``cycle``?"""
        self._roll_cycle(cycle)
        if self._issued_this_cycle >= self.count:
            return False
        if self.pipelined:
            return True
        return any(busy <= cycle for busy in self._busy_until)

    def next_free_cycle(self, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` at which one more operation could start.

        Used by the event-driven run loop's next-event computation: a pool
        must never *under*-report this bound (skipping past the true free
        cycle would change timing), but reporting ``cycle`` itself is always
        safe (the caller just re-evaluates).  Pipelined pools accept every
        cycle once the per-cycle issue counter rolls over, so their bound is
        at most the next cycle.
        """
        self._roll_cycle(cycle)
        if self.pipelined:
            return cycle if self._issued_this_cycle < self.count else cycle + 1
        earliest = min(self._busy_until)
        if earliest <= cycle:
            return cycle if self._issued_this_cycle < self.count else cycle + 1
        return earliest

    def accept(self, cycle: int, latency: int) -> None:
        """Reserve a unit for an operation of the given latency starting at ``cycle``."""
        self._roll_cycle(cycle)
        if not self.can_accept(cycle):
            raise RuntimeError(f"functional unit pool {self.name!r} cannot accept at {cycle}")
        self._issued_this_cycle += 1
        self.operations += 1
        if not self.pipelined:
            for index, busy in enumerate(self._busy_until):
                if busy <= cycle:
                    self._busy_until[index] = cycle + latency
                    break

    def __repr__(self) -> str:
        kind = "pipelined" if self.pipelined else "non-pipelined"
        return f"FunctionalUnitPool({self.name}, x{self.count}, {kind})"


@dataclass
class FunctionalUnits:
    """The full set of functional unit pools of the Table-1 machine."""

    int_alu: FunctionalUnitPool = field(
        default_factory=lambda: FunctionalUnitPool("int_alu", 4))
    int_muldiv: FunctionalUnitPool = field(
        default_factory=lambda: FunctionalUnitPool("int_muldiv", 1, pipelined=False))
    fp_alu: FunctionalUnitPool = field(
        default_factory=lambda: FunctionalUnitPool("fp_alu", 2))
    fp_muldiv: FunctionalUnitPool = field(
        default_factory=lambda: FunctionalUnitPool("fp_muldiv", 2, pipelined=False))
    load_ports: FunctionalUnitPool = field(
        default_factory=lambda: FunctionalUnitPool("load_port", 2))
    store_ports: FunctionalUnitPool = field(
        default_factory=lambda: FunctionalUnitPool("store_port", 1))

    def pool_for(self, op_class: OpClass) -> FunctionalUnitPool:
        """The pool an operation of the given class executes on."""
        if op_class in (OpClass.INT_ALU, OpClass.INT_MOVE, OpClass.BRANCH, OpClass.NOP):
            return self.int_alu
        if op_class in (OpClass.INT_MUL, OpClass.INT_DIV):
            return self.int_muldiv
        if op_class in (OpClass.FP_ALU, OpClass.FP_MOVE):
            return self.fp_alu
        if op_class is OpClass.FP_MULDIV:
            return self.fp_muldiv
        if op_class is OpClass.LOAD:
            return self.load_ports
        if op_class is OpClass.STORE:
            return self.store_ports
        raise ValueError(f"no functional unit pool for {op_class}")


class IssueQueue:
    """A unified, age-ordered issue queue.

    Occupancy is tracked by a live-entry counter (``_live``) rather than
    the backing list's length: the core's event-driven scheduler accounts
    for selections with :meth:`note_issued` and already-issued entries
    linger in the list until an amortized compaction, so no per-cycle
    rebuild of the whole queue is needed.  Every accessor that exposes the
    entries themselves compacts first, preserving the historical "live
    entries, oldest first" contract.
    """

    __slots__ = ("capacity", "_entries", "_live", "peak_occupancy", "issued_total")

    def __init__(self, capacity: int = 60) -> None:
        if capacity < 1:
            raise ValueError("issue queue capacity must be >= 1")
        self.capacity = capacity
        self._entries: list[InflightOp] = []
        self._live = 0
        self.peak_occupancy = 0
        self.issued_total = 0

    def __len__(self) -> int:
        return self._live

    def is_full(self) -> bool:
        """``True`` when no instruction can be dispatched into the queue."""
        return self._live >= self.capacity

    def free_slots(self) -> int:
        """Number of instructions that can still be dispatched."""
        return self.capacity - self._live

    def add(self, entry: InflightOp) -> None:
        """Dispatch an instruction into the queue."""
        if self._live >= self.capacity:
            raise OverflowError("issue queue is full")
        self._entries.append(entry)
        self._live += 1
        if self._live > self.peak_occupancy:
            self.peak_occupancy = self._live

    def _compact(self) -> None:
        self._entries = [entry for entry in self._entries if not entry.issued]

    def entries(self) -> list[InflightOp]:
        """The queued instructions, oldest first (the queue's own storage).

        Exposed for the pipeline's inlined issue scan; callers must not
        mutate the list directly -- they hand back the survivors through
        :meth:`replace_entries` (or account for external selections with
        :meth:`note_issued`).
        """
        if self._live != len(self._entries):
            self._compact()
        return self._entries

    def note_issued(self, issued: int) -> None:
        """Account for entries an external scheduler issued out of the queue.

        The issued entries stay in the backing list until more than half of
        it is stale, when one compaction pass drops them -- amortized O(1)
        per issue instead of a full rebuild per issuing cycle.
        """
        self._live -= issued
        self.issued_total += issued
        stale = len(self._entries) - self._live
        if stale > self._live:
            self._compact()

    def replace_entries(self, remaining: list[InflightOp], issued: int) -> None:
        """Install the post-selection queue contents and account for issues."""
        self._entries = remaining
        self._live = len(remaining)
        self.issued_total += issued

    def remove(self, entries: list[InflightOp]) -> None:
        """Remove specific entries (used when squashing)."""
        if not entries:
            return
        doomed = set(id(entry) for entry in entries)
        self._entries = [entry for entry in self.entries()
                         if id(entry) not in doomed]
        self._live = len(self._entries)

    def clear(self) -> None:
        """Empty the queue (commit-stage flush)."""
        self._entries.clear()
        self._live = 0

    def issue(self, cycle: int, issue_width: int,
              try_issue: Callable[[InflightOp], bool]) -> list[InflightOp]:
        """Select up to ``issue_width`` issuable instructions, oldest first.

        ``try_issue(op)`` performs the readiness / functional-unit checks
        and, on success, records the issue (returns ``True``).  Selected
        instructions leave the queue.
        """
        issued: list[InflightOp] = []
        if not self._live:
            return issued
        remaining: list[InflightOp] = []
        for entry in self.entries():
            if len(issued) < issue_width and try_issue(entry):
                issued.append(entry)
            else:
                remaining.append(entry)
        self._entries = remaining
        self._live = len(remaining)
        self.issued_total += len(issued)
        return issued

    def __repr__(self) -> str:
        return f"IssueQueue(capacity={self.capacity}, occupancy={self._live})"
