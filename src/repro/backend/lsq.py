"""Load and store queues: forwarding, ordering and violation detection.

The Table-1 machine has a 72-entry load queue and a 48-entry store queue
with a 4-cycle store-to-load forwarding latency.  Following the paper's
methodology section, only loads *fully contained* in an in-flight store can
forward from the store queue; partially overlapping loads wait for the
store to write back.

Memory-order violations are detected the gem5 way: when a store computes
its address, any younger load that already executed against an overlapping
address (without having forwarded from that store) is flagged; the flag
turns into a trap -- a full pipeline flush -- when the load reaches the
commit stage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.backend.inflight import InflightOp


class ForwardingState(enum.Enum):
    """Relationship between a load and the in-flight stores older than it."""

    NO_CONFLICT = "no_conflict"
    FORWARD = "forward"            # fully contained in an executed older store
    STORE_NOT_READY = "not_ready"  # fully contained, but the store has not executed
    PARTIAL_OVERLAP = "partial"    # overlapping but not contained: must wait


@dataclass(slots=True)
class ForwardingDecision:
    """Result of a store-queue search for a load."""

    state: ForwardingState
    store: InflightOp | None = None


class LoadStoreQueue:
    """The combined load queue / store queue model."""

    __slots__ = ("lq_capacity", "sq_capacity", "_loads", "_stores", "peak_lq", "peak_sq")

    def __init__(self, lq_capacity: int = 72, sq_capacity: int = 48) -> None:
        if lq_capacity < 1 or sq_capacity < 1:
            raise ValueError("load/store queue capacities must be >= 1")
        self.lq_capacity = lq_capacity
        self.sq_capacity = sq_capacity
        self._loads: list[InflightOp] = []
        self._stores: list[InflightOp] = []
        self.peak_lq = 0
        self.peak_sq = 0

    # -- capacity -----------------------------------------------------------------

    def lq_full(self) -> bool:
        """``True`` when no load can be dispatched."""
        return len(self._loads) >= self.lq_capacity

    def sq_full(self) -> bool:
        """``True`` when no store can be dispatched."""
        return len(self._stores) >= self.sq_capacity

    def lq_occupancy(self) -> int:
        """Number of loads currently in the queue."""
        return len(self._loads)

    def sq_occupancy(self) -> int:
        """Number of stores currently in the queue."""
        return len(self._stores)

    # -- dispatch / removal -------------------------------------------------------

    def add(self, entry: InflightOp) -> None:
        """Insert a load or store at dispatch (program order is preserved)."""
        if entry.is_load:
            if self.lq_full():
                raise OverflowError("load queue is full")
            self._loads.append(entry)
            self.peak_lq = max(self.peak_lq, len(self._loads))
        elif entry.is_store:
            if self.sq_full():
                raise OverflowError("store queue is full")
            self._stores.append(entry)
            self.peak_sq = max(self.peak_sq, len(self._stores))
        else:
            raise ValueError("only loads and stores belong in the LSQ")

    def remove_committed(self, entry: InflightOp) -> None:
        """Remove a load/store when it commits."""
        if entry.is_load and entry in self._loads:
            self._loads.remove(entry)
        elif entry.is_store and entry in self._stores:
            self._stores.remove(entry)

    def squash_all(self) -> None:
        """Empty both queues (commit-stage flush)."""
        self._loads.clear()
        self._stores.clear()

    # -- forwarding and ordering --------------------------------------------------

    def forwarding_for(self, load: InflightOp) -> ForwardingDecision:
        """Classify the youngest older store overlapping ``load``."""
        best: InflightOp | None = None
        for store in self._stores:
            if store.seq >= load.seq:
                break
            if store.overlaps(load):
                best = store
        if best is None:
            return ForwardingDecision(ForwardingState.NO_CONFLICT)
        if best.covers(load):
            if best.issued and best.completed:
                return ForwardingDecision(ForwardingState.FORWARD, best)
            return ForwardingDecision(ForwardingState.STORE_NOT_READY, best)
        return ForwardingDecision(ForwardingState.PARTIAL_OVERLAP, best)

    def has_unresolved_partial_overlap(self, load: InflightOp) -> bool:
        """``True`` while an older partially-overlapping store has not executed."""
        decision = self.forwarding_for(load)
        return (decision.state is ForwardingState.PARTIAL_OVERLAP
                and not (decision.store.issued and decision.store.completed))

    def store_inflight(self, seq: int) -> InflightOp | None:
        """Return the in-flight store with sequence number ``seq``, if any."""
        for store in self._stores:
            if store.seq == seq:
                return store
        return None

    def violating_loads(self, store: InflightOp) -> list[InflightOp]:
        """Younger loads that already executed against an address this store overlaps.

        Called when ``store`` executes (its address becomes known).  Loads
        that forwarded from this very store are innocent; everything else
        read stale data and must trap at commit.
        """
        violators: list[InflightOp] = []
        for load in self._loads:
            if load.seq <= store.seq:
                continue
            if not load.issued:
                continue
            if not store.overlaps(load):
                continue
            if load.stlf_forwarded and load.issue_cycle >= store.complete_cycle >= 0:
                continue
            violators.append(load)
        return violators

    def loads(self) -> list[InflightOp]:
        """The loads currently in the queue, oldest first."""
        return self._loads

    def stores(self) -> list[InflightOp]:
        """The stores currently in the queue, oldest first."""
        return self._stores

    def __repr__(self) -> str:
        return (f"LoadStoreQueue(lq={len(self._loads)}/{self.lq_capacity}, "
                f"sq={len(self._stores)}/{self.sq_capacity})")
