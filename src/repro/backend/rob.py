"""The reorder buffer, including the ``release_head`` pointer for lazy reclaim.

The ROB holds instructions from dispatch until commit.  Section 3.3 of the
paper adds a third pointer, ``release_head``, between the commit head and
the tail: committed entries between ``release_head`` and the head keep
their data (in particular their destination physical register identifier),
which lets SMB bypass from *recently committed* instructions, and the
physical registers of the architectural mappings they overwrote are only
reclaimed when the post-commit release logic walks them (triggered when the
free list runs low or the ROB fills up).

With lazy reclaim disabled (the default), entries are released immediately
at commit and reclaim happens in the commit stage, which is the paper's
baseline behaviour.
"""

from __future__ import annotations

from collections import deque

from repro.backend.inflight import InflightOp


class ReorderBuffer:
    """An in-order window of in-flight (plus optionally retained committed) micro-ops."""

    __slots__ = ("capacity", "lazy_reclaim", "_inflight", "_retained", "_by_seq",
                 "peak_occupancy")

    def __init__(self, capacity: int = 192, lazy_reclaim: bool = False) -> None:
        if capacity < 1:
            raise ValueError("ROB capacity must be >= 1")
        self.capacity = capacity
        self.lazy_reclaim = lazy_reclaim
        self._inflight: deque[InflightOp] = deque()
        self._retained: deque[InflightOp] = deque()
        self._by_seq: dict[int, InflightOp] = {}
        self.peak_occupancy = 0

    # -- occupancy ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._inflight)

    def occupancy(self) -> int:
        """Entries currently holding state (in-flight plus retained committed ones)."""
        return len(self._inflight) + len(self._retained)

    def is_full(self) -> bool:
        """``True`` when no new instruction can be dispatched."""
        return len(self._inflight) + len(self._retained) >= self.capacity

    def free_slots(self) -> int:
        """Number of instructions that can still be dispatched."""
        return self.capacity - len(self._inflight) - len(self._retained)

    def retained_count(self) -> int:
        """Number of committed entries not yet released (lazy reclaim only)."""
        return len(self._retained)

    # -- dispatch / commit --------------------------------------------------------

    def append(self, entry: InflightOp) -> None:
        """Dispatch an instruction into the ROB."""
        occupancy = len(self._inflight) + len(self._retained)
        if occupancy >= self.capacity:
            raise OverflowError("reorder buffer is full")
        self._inflight.append(entry)
        self._by_seq[entry.seq] = entry
        if occupancy + 1 > self.peak_occupancy:
            self.peak_occupancy = occupancy + 1

    def head(self) -> InflightOp | None:
        """The oldest in-flight instruction (``None`` when the window is empty)."""
        return self._inflight[0] if self._inflight else None

    def pop_head(self) -> InflightOp:
        """Commit the oldest instruction.

        With lazy reclaim the entry is *retained*: it keeps occupying ROB
        space and stays reachable for SMB until :meth:`pop_retained`
        releases it.
        """
        entry = self._inflight.popleft()
        if self.lazy_reclaim:
            self._retained.append(entry)
        else:
            del self._by_seq[entry.seq]
        return entry

    def pop_retained(self) -> InflightOp | None:
        """Release the oldest retained committed entry (lazy reclaim walk)."""
        if not self._retained:
            return None
        entry = self._retained.popleft()
        entry.released = True
        del self._by_seq[entry.seq]
        return entry

    # -- lookups ------------------------------------------------------------------

    def lookup(self, seq: int) -> InflightOp | None:
        """Find a reachable instruction by sequence number.

        Reachable means in flight, or committed-but-retained when lazy
        reclaim keeps the entry's state valid (Section 3.3).
        """
        return self._by_seq.get(seq)

    def inflight(self) -> deque[InflightOp]:
        """The in-flight entries, oldest first."""
        return self._inflight

    def retained(self) -> deque[InflightOp]:
        """The retained committed entries, oldest first."""
        return self._retained

    # -- squash -------------------------------------------------------------------

    def squash_all_inflight(self) -> list[InflightOp]:
        """Remove every in-flight instruction (commit-stage flush); returns them."""
        squashed = list(self._inflight)
        for entry in squashed:
            del self._by_seq[entry.seq]
        self._inflight.clear()
        return squashed

    def __repr__(self) -> str:
        return (f"ReorderBuffer(capacity={self.capacity}, inflight={len(self._inflight)}, "
                f"retained={len(self._retained)})")
