"""Out-of-order execution engine substrate.

The back end of the Table-1 machine: a 192-entry reorder buffer (with the
``release_head`` pointer used for lazy register reclaiming in Section 3.3),
a 60-entry unified issue queue feeding the functional-unit pools, and
72/48-entry load/store queues implementing store-to-load forwarding and
memory-order violation detection.
"""

from repro.backend.inflight import InflightOp
from repro.backend.lsq import ForwardingState, LoadStoreQueue
from repro.backend.rob import ReorderBuffer
from repro.backend.scheduler import FunctionalUnitPool, FunctionalUnits, IssueQueue

__all__ = [
    "InflightOp",
    "ReorderBuffer",
    "IssueQueue",
    "FunctionalUnitPool",
    "FunctionalUnits",
    "LoadStoreQueue",
    "ForwardingState",
]
