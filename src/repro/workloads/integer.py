"""Integer synthetic workloads.

Each workload models a behaviour class of the SPEC integer benchmarks the
paper evaluates on (the ``spec_analog`` field says which one); none of them
contain SPEC code.  All workloads are infinite loops -- the trace length is
controlled by the ``max_ops`` budget passed to the functional executor.
"""

from __future__ import annotations

import random

from repro.isa.program import ProgramBuilder
from repro.isa.registers import int_reg
from repro.workloads.base import WorkloadImage, register_workload

# Register allocation conventions shared by the integer workloads:
#   r15 : loop iteration counter
#   r14 : loop bound (a huge constant; traces are truncated by max_ops)
#   r13 : scratch used for the loop-back comparison
#   r12 : primary data-structure base pointer
#   r11 : stack / spill area base pointer
#   r10 : LCG state for data-dependent (unpredictable) branches
_LOOP_COUNTER = int_reg(15)
_LOOP_BOUND = int_reg(14)
_LOOP_TEST = int_reg(13)
_BASE_PTR = int_reg(12)
_STACK_PTR = int_reg(11)
_LCG_STATE = int_reg(10)

_STACK_BASE = 0x0001_0000
_HEAP_BASE = 0x0010_0000
_TABLE_BASE = 0x0020_0000
_HUGE_BOUND = 1 << 40

_LCG_MUL = 6364136223846793005
_LCG_ADD = 1442695040888963407


def _loop_prologue(builder: ProgramBuilder) -> None:
    """Initialise the loop counter and bound registers."""
    builder.movi(_LOOP_COUNTER, 0)
    builder.movi(_LOOP_BOUND, _HUGE_BOUND)


def _loop_epilogue(builder: ProgramBuilder, label: str) -> None:
    """Increment the loop counter and branch back to ``label``."""
    builder.addi(_LOOP_COUNTER, _LOOP_COUNTER, 1)
    builder.cmplt(_LOOP_TEST, _LOOP_COUNTER, _LOOP_BOUND)
    builder.bnz(_LOOP_TEST, label)
    builder.halt()


def _lcg_step(builder: ProgramBuilder, mul_reg) -> None:
    """Advance the LCG state register (used for data-dependent branches)."""
    builder.mul(_LCG_STATE, _LCG_STATE, mul_reg)
    builder.addi(_LCG_STATE, _LCG_STATE, _LCG_ADD & 0xFFFF)


def _random_table(rng: random.Random, base: int, words: int) -> dict[int, int]:
    """A table of ``words`` random 64-bit values starting at ``base``."""
    return {base + 8 * i: rng.getrandbits(63) for i in range(words)}


@register_workload(
    "move_chain",
    category="int",
    description="dependent chains of 64/32-bit register moves between ALU ops",
    spec_analog="crafty / vortex (move-dense integer code)",
)
def build_move_chain(seed: int) -> WorkloadImage:
    """Move-heavy integer workload: about one in five micro-ops is an eliminable move."""
    rng = random.Random(seed)
    builder = ProgramBuilder("move_chain")
    r = int_reg

    builder.movi(_BASE_PTR, _HEAP_BASE)
    builder.movi(r(9), 3)
    builder.movi(r(8), 0xFF)
    _loop_prologue(builder)
    builder.label("loop")
    # Walk a small table, copying values through register-to-register moves
    # the way destructive two-operand x86 code does before each arithmetic op.
    for block in range(4):
        offset = 8 * rng.randrange(0, 64)
        builder.andi(r(1), _LOOP_COUNTER, 0x1F8)
        builder.load(r(2), base=_BASE_PTR, index=r(1), offset=offset)
        builder.mov(r(3), r(2))                     # eliminable 64-bit move
        builder.addi(r(3), r(3), block + 1)
        builder.mov(r(4), r(3), width=32)           # eliminable 32-bit move
        builder.add(r(5), r(4), r(9))
        builder.mov(r(6), r(5))                     # eliminable 64-bit move
        builder.shri(r(6), r(6), 1)
        builder.and_(r(7), r(6), r(8))
        builder.store(r(7), base=_BASE_PTR, index=r(1), offset=offset)
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory=_random_table(rng, _HEAP_BASE, 1024),
    )


@register_workload(
    "partial_moves",
    category="int",
    description="mixture of eliminable and non-eliminable (8/16-bit merge) moves",
    spec_analog="gcc / perlbench (byte/sub-word manipulation)",
)
def build_partial_moves(seed: int) -> WorkloadImage:
    """Sub-word move workload exercising the x86_64 ME eligibility rules."""
    rng = random.Random(seed)
    builder = ProgramBuilder("partial_moves")
    r = int_reg

    builder.movi(_BASE_PTR, _TABLE_BASE)
    builder.movi(r(9), 0x7F8)
    _loop_prologue(builder)
    builder.label("loop")
    for _ in range(3):
        builder.andi(r(1), _LOOP_COUNTER, 0x3F8)
        builder.load(r(2), base=_BASE_PTR, index=r(1), offset=8 * rng.randrange(0, 32))
        builder.mov(r(3), r(2))                      # eliminable
        builder.movzx8(r(4), r(3))                   # eliminable zero-extending byte move
        builder.mov(r(5), r(2), width=16)            # merge move: NOT eliminable
        builder.movzx8(r(6), r(3), src_high8=True)   # high-8 source: NOT eliminable
        builder.mov(r(7), r(4), width=8)             # merge move: NOT eliminable
        builder.add(r(5), r(5), r(4))
        builder.xor(r(6), r(6), r(7))
        builder.add(r(8), r(5), r(6))
        builder.and_(r(8), r(8), r(9))
        builder.store(r(8), base=_BASE_PTR, index=r(1), offset=0)
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory=_random_table(rng, _TABLE_BASE, 512),
    )


@register_workload(
    "spill_reload",
    category="int",
    description="compiler-style register spills reloaded a few instructions later",
    spec_analog="perlbench / vortex (register-pressure spills)",
)
def build_spill_reload(seed: int) -> WorkloadImage:
    """Store-to-load pairs with short, stable distances: prime SMB territory."""
    rng = random.Random(seed)
    builder = ProgramBuilder("spill_reload")
    r = int_reg

    builder.movi(_BASE_PTR, _HEAP_BASE)
    builder.movi(_STACK_PTR, _STACK_BASE)
    builder.movi(r(9), 7)
    _loop_prologue(builder)
    builder.label("loop")
    # Produce two temporaries, spill them, do unrelated work, reload them.
    builder.andi(r(1), _LOOP_COUNTER, 0x3F8)
    builder.load(r(2), base=_BASE_PTR, index=r(1), offset=0)
    builder.addi(r(3), r(2), 17)
    builder.mul(r(4), r(2), r(9))
    builder.store(r(3), base=_STACK_PTR, offset=0)       # spill t0
    builder.store(r(4), base=_STACK_PTR, offset=8)       # spill t1
    # Unrelated work that creates register pressure (the reason for the spill).
    for step in range(rng.randrange(4, 7)):
        builder.addi(r(5), _LOOP_COUNTER, step)
        builder.xor(r(6), r(5), r(2))
        builder.shri(r(6), r(6), 2)
        builder.add(r(7), r(6), r(5))
    builder.load(r(2), base=_STACK_PTR, offset=0)        # reload t0
    builder.load(r(8), base=_STACK_PTR, offset=8)        # reload t1
    builder.add(r(5), r(2), r(8))
    builder.store(r(5), base=_BASE_PTR, index=r(1), offset=0)
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory=_random_table(rng, _HEAP_BASE, 1024),
    )


@register_workload(
    "stack_args",
    category="int",
    description="argument passing through the stack around leaf calls",
    spec_analog="astar (latency-bound loads fed by recent stores)",
)
def build_stack_args(seed: int) -> WorkloadImage:
    """Calls whose arguments and results travel through memory (STLF on the critical path)."""
    rng = random.Random(seed)
    builder = ProgramBuilder("stack_args")
    r = int_reg

    builder.movi(_BASE_PTR, _HEAP_BASE)
    builder.movi(_STACK_PTR, _STACK_BASE)
    builder.movi(r(9), 5)
    _loop_prologue(builder)
    builder.jmp("loop")

    # Leaf function: reads two stack arguments, writes one stack result.
    builder.label("leaf")
    builder.load(r(1), base=_STACK_PTR, offset=0)
    builder.load(r(2), base=_STACK_PTR, offset=8)
    builder.add(r(3), r(1), r(2))
    builder.shri(r(4), r(3), 3)
    builder.xor(r(3), r(3), r(4))
    builder.store(r(3), base=_STACK_PTR, offset=16)
    # Independent bookkeeping work inside the leaf (keeps the call from
    # being a pure memory-latency chain).
    builder.addi(r(4), _LOOP_COUNTER, 13)
    builder.shri(r(4), r(4), 1)
    builder.xor(r(4), r(4), _LOOP_COUNTER)
    builder.ret()

    builder.label("loop")
    builder.andi(r(5), _LOOP_COUNTER, 0x7F8)
    builder.load(r(6), base=_BASE_PTR, index=r(5), offset=0)
    builder.addi(r(7), r(6), rng.randrange(1, 64))
    builder.store(r(6), base=_STACK_PTR, offset=0)   # argument 0
    builder.store(r(7), base=_STACK_PTR, offset=8)   # argument 1
    builder.call("leaf")
    builder.load(r(8), base=_STACK_PTR, offset=16)   # result (critical path)
    builder.mul(r(8), r(8), r(9))
    builder.store(r(8), base=_BASE_PTR, index=r(5), offset=0)
    # Independent caller-side work overlapping the next call.
    builder.addi(r(6), r(6), 3)
    builder.shri(r(7), r(6), 2)
    builder.add(r(6), r(6), r(7))
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory=_random_table(rng, _HEAP_BASE, 2048),
    )


@register_workload(
    "alias_trap",
    category="int",
    description="pointer stores that intermittently alias later loads",
    spec_analog="mcf / gamess (memory-order violations and false dependencies)",
)
def build_alias_trap(seed: int) -> WorkloadImage:
    """Intermittent aliasing: Store Sets oscillates between traps and false dependencies."""
    rng = random.Random(seed)
    builder = ProgramBuilder("alias_trap")
    r = int_reg

    builder.movi(_BASE_PTR, _HEAP_BASE)
    builder.movi(_LCG_STATE, rng.getrandbits(32) | 1)
    builder.movi(r(9), _LCG_MUL & 0xFFFFFFFF)
    _loop_prologue(builder)
    builder.label("loop")
    # The store address depends on a long-latency multiply, so the store's
    # address is resolved late; the following load to a possibly identical
    # address can issue first unless a predictor intervenes.
    _lcg_step(builder, r(9))
    builder.shri(r(1), _LCG_STATE, 33)
    builder.andi(r(1), r(1), 0x18)            # 0, 8, 16 or 24: aliases offset 8 sometimes
    builder.mul(r(2), r(1), r(9))
    builder.xor(r(2), r(2), _LCG_STATE)
    builder.store(r(2), base=_BASE_PTR, index=r(1), offset=0)
    builder.load(r(3), base=_BASE_PTR, offset=8)     # aliases the store 1 time in 4
    builder.addi(r(4), r(3), 3)
    builder.shri(r(5), r(4), 5)
    builder.add(r(6), r(4), r(5))
    builder.store(r(6), base=_BASE_PTR, offset=256)
    builder.load(r(7), base=_BASE_PTR, offset=256)   # always-aliasing short pair
    builder.add(r(8), r(7), r(3))
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory=_random_table(rng, _HEAP_BASE, 256),
    )


@register_workload(
    "hash_update",
    category="int",
    description="read-modify-write bursts on a small hash table",
    spec_analog="hmmer / bzip2 (table updates with occasional in-window collisions)",
)
def build_hash_update(seed: int) -> WorkloadImage:
    """Hash-table updates whose buckets occasionally collide inside the window."""
    rng = random.Random(seed)
    builder = ProgramBuilder("hash_update")
    r = int_reg

    builder.movi(_BASE_PTR, _TABLE_BASE)
    builder.movi(_LCG_STATE, rng.getrandbits(32) | 1)
    builder.movi(r(9), 2654435761 & 0xFFFFFFFF)
    _loop_prologue(builder)
    builder.label("loop")
    for slot in range(3):
        _lcg_step(builder, r(9))
        builder.shri(r(1), _LCG_STATE, 30)
        builder.andi(r(1), r(1), 0x78)               # 16 buckets -> frequent collisions
        builder.load(r(2), base=_BASE_PTR, index=r(1), offset=0)
        builder.addi(r(2), r(2), slot + 1)
        builder.mov(r(3), r(2))
        builder.store(r(3), base=_BASE_PTR, index=r(1), offset=0)
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory=_random_table(rng, _TABLE_BASE, 64),
    )


@register_workload(
    "branchy",
    category="int",
    description="data-dependent branches with moderate move density",
    spec_analog="gobmk / sjeng (hard-to-predict control flow)",
)
def build_branchy(seed: int) -> WorkloadImage:
    """Unpredictable branches: stresses recovery latency of the sharing tracker."""
    rng = random.Random(seed)
    builder = ProgramBuilder("branchy")
    r = int_reg

    builder.movi(_BASE_PTR, _HEAP_BASE)
    builder.movi(_LCG_STATE, rng.getrandbits(32) | 1)
    builder.movi(r(9), _LCG_MUL & 0xFFFFFFFF)
    _loop_prologue(builder)
    builder.label("loop")
    _lcg_step(builder, r(9))
    builder.shri(r(1), _LCG_STATE, 35)
    builder.andi(r(1), r(1), 1)
    builder.bnz(r(1), "then_side")
    # else side: a short move + ALU burst
    builder.andi(r(2), _LOOP_COUNTER, 0x1F8)
    builder.load(r(3), base=_BASE_PTR, index=r(2), offset=0)
    builder.mov(r(4), r(3))
    builder.addi(r(4), r(4), 11)
    builder.store(r(4), base=_BASE_PTR, index=r(2), offset=0)
    builder.jmp("join")
    builder.label("then_side")
    builder.andi(r(2), _LOOP_COUNTER, 0x1F8)
    builder.load(r(5), base=_BASE_PTR, index=r(2), offset=8)
    builder.mov(r(6), r(5))
    builder.shri(r(6), r(6), 2)
    builder.xor(r(6), r(6), _LCG_STATE)
    builder.store(r(6), base=_BASE_PTR, index=r(2), offset=8)
    builder.label("join")
    builder.nop()
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory=_random_table(rng, _HEAP_BASE, 512),
    )


@register_workload(
    "stream_reduce",
    category="int",
    description="streaming loads feeding a reduction; almost no moves or aliasing",
    spec_analog="libquantum / gzip inner loops (little to gain from sharing)",
)
def build_stream_reduce(seed: int) -> WorkloadImage:
    """Control workload: neither ME nor SMB should find much to improve here."""
    rng = random.Random(seed)
    builder = ProgramBuilder("stream_reduce")
    r = int_reg

    builder.movi(_BASE_PTR, _HEAP_BASE)
    builder.movi(r(9), 0)
    _loop_prologue(builder)
    builder.label("loop")
    for lane in range(4):
        builder.andi(r(1), _LOOP_COUNTER, 0xFF8)
        builder.load(r(2), base=_BASE_PTR, index=r(1), offset=8 * lane)
        builder.shri(r(3), r(2), lane + 1)
        builder.add(r(9), r(9), r(3))
    builder.store(r(9), base=_BASE_PTR, offset=0x7FF8)
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory=_random_table(rng, _HEAP_BASE, 4096),
    )


@register_workload(
    "load_load",
    category="int",
    description="serialised pointer chase around a small circular structure",
    spec_analog="mcf / omnetpp inner loops (latency-bound redundant loads)",
)
def build_load_load(seed: int) -> WorkloadImage:
    """A circular pointer chase: every address is re-loaded one lap later.

    The chase loads are serialised (each address is the previous load's
    result), so the baseline is bound by the L1 latency.  Because the
    structure is never written, load-load bypassing collapses the chain into
    register dependences -- the behaviour the paper's load-load
    generalisation targets -- while store-only SMB finds nothing.
    """
    rng = random.Random(seed)
    builder = ProgramBuilder("load_load")
    r = int_reg

    node_count = 4
    node_stride = 32
    builder.movi(r(1), _TABLE_BASE)      # r1 = current node pointer
    builder.movi(r(9), 0)                # accumulator
    _loop_prologue(builder)
    builder.label("loop")
    builder.load(r(1), base=r(1), offset=0)      # p = p->next (serialised chase)
    builder.load(r(2), base=r(1), offset=8)      # value = p->payload
    builder.add(r(9), r(9), r(2))
    builder.shri(r(3), r(9), 7)
    builder.xor(r(9), r(9), r(3))
    _loop_epilogue(builder, "loop")

    memory: dict[int, int] = {}
    for index in range(node_count):
        node = _TABLE_BASE + index * node_stride
        successor = _TABLE_BASE + ((index + 1) % node_count) * node_stride
        memory[node] = successor
        memory[node + 8] = rng.getrandbits(48)
    return WorkloadImage(program=builder.build(), initial_memory=memory)


@register_workload(
    "long_reuse",
    category="int",
    description="values produced early in an iteration and reloaded ~200 instructions later",
    spec_analog="gcc / fortran common-block reuse (producers at the edge of the window)",
)
def build_long_reuse(seed: int) -> WorkloadImage:
    """Store-to-load pairs whose distance (~200 micro-ops) reaches the edge of the ROB.

    By the time the reload renames, its producer has often already
    committed, so this workload distinguishes eager register reclaiming
    (bypass impossible) from the lazy ``release_head`` scheme of Section 3.3
    (bypass still possible from the retained ROB entry).
    """
    rng = random.Random(seed)
    builder = ProgramBuilder("long_reuse")
    r = int_reg
    inner_reg = int_reg(8)
    inner_bound = int_reg(7)

    builder.movi(_BASE_PTR, _HEAP_BASE)
    builder.movi(_STACK_PTR, _STACK_BASE)
    builder.movi(r(9), 3)
    builder.movi(r(0), 48271)
    builder.movi(_LCG_STATE, rng.getrandbits(31) | 1)
    _loop_prologue(builder)
    builder.label("loop")
    # Produce two values and spill them.
    builder.andi(r(1), _LOOP_COUNTER, 0x3F8)
    builder.load(r(2), base=_BASE_PTR, index=r(1), offset=0)
    builder.addi(r(3), r(2), rng.randrange(3, 40))
    builder.store(r(2), base=_STACK_PTR, offset=0)
    builder.store(r(3), base=_STACK_PTR, offset=8)
    # A long stretch of independent work (an inner loop of ~8 x 24 micro-ops)
    # that pushes the producers towards (and past) the commit point.
    builder.movi(inner_reg, 0)
    builder.movi(inner_bound, 8)
    builder.label("inner")
    for step in range(5):
        builder.addi(r(4), inner_reg, step + 1)
        builder.shli(r(5), r(4), 2)
        builder.xor(r(6), r(5), _LOOP_COUNTER)
        builder.add(r(4), r(6), r(9))
    builder.addi(inner_reg, inner_reg, 1)
    builder.cmplt(r(4), inner_reg, inner_bound)
    builder.bnz(r(4), "inner")
    # A data-dependent branch keeps the window from staying permanently
    # full, so committed producers can actually be *retained* in the ROB.
    builder.mul(_LCG_STATE, _LCG_STATE, r(0))
    builder.addi(_LCG_STATE, _LCG_STATE, 12345)
    builder.shri(r(4), _LCG_STATE, 33)
    builder.andi(r(4), r(4), 1)
    builder.bz(r(4), "skip_extra")
    builder.addi(r(6), _LOOP_COUNTER, 7)
    builder.shri(r(6), r(6), 1)
    builder.label("skip_extra")
    # Reload the two values produced ~200 micro-ops ago.
    builder.load(r(5), base=_STACK_PTR, offset=0)
    builder.load(r(6), base=_STACK_PTR, offset=8)
    builder.add(r(5), r(5), r(6))
    builder.store(r(5), base=_BASE_PTR, index=r(1), offset=0)
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory=_random_table(rng, _HEAP_BASE, 1024),
    )


@register_workload(
    "list_traverse",
    category="int",
    description="serialised chase of a large randomly-linked list (cache-missing)",
    spec_analog="mcf / xalancbmk (pointer-chasing over a heap-sized structure)",
)
def build_list_traverse(seed: int) -> WorkloadImage:
    """Pointer-chasing over a list too large for the L1: latency dominated.

    Unlike :func:`build_load_load` (a 4-node lap that stays L1-resident and
    is prime load-load bypass territory), this list has hundreds of nodes
    linked in a random permutation, so the chase misses the L1 regularly,
    the next-line prefetcher gets no usable stride, and every scheme is
    bound by the memory round trip.  A read-modify-write of each node's
    payload adds store pressure without ever feeding the chase itself.
    """
    rng = random.Random(seed)
    builder = ProgramBuilder("list_traverse")
    r = int_reg

    node_count = 512
    node_stride = 64  # one cache line per node
    builder.movi(r(1), _HEAP_BASE)       # r1 = current node pointer
    builder.movi(r(9), 0)                # accumulator
    builder.movi(r(8), 0xFF)
    _loop_prologue(builder)
    builder.label("loop")
    for _ in range(2):
        builder.load(r(1), base=r(1), offset=0)      # p = p->next (serialised)
        builder.load(r(2), base=r(1), offset=8)      # p->payload
        builder.add(r(9), r(9), r(2))
        builder.and_(r(3), r(2), r(8))
        builder.addi(r(3), r(3), 1)
        builder.store(r(3), base=r(1), offset=16)    # p->visits rmw slot
        builder.load(r(4), base=r(1), offset=16)     # immediate reload (STLF pair)
        builder.add(r(9), r(9), r(4))
    builder.shri(r(5), r(9), 9)
    builder.xor(r(9), r(9), r(5))
    _loop_epilogue(builder, "loop")

    # Link the nodes in a random permutation so consecutive hops jump
    # across the whole structure instead of walking sequential lines.
    order = list(range(1, node_count))
    rng.shuffle(order)
    order = [0] + order
    memory: dict[int, int] = {}
    for position, node_index in enumerate(order):
        node = _HEAP_BASE + node_index * node_stride
        successor_index = order[(position + 1) % node_count]
        memory[node] = _HEAP_BASE + successor_index * node_stride
        memory[node + 8] = rng.getrandbits(48)
    return WorkloadImage(program=builder.build(), initial_memory=memory)


@register_workload(
    "deep_recursion",
    category="int",
    description="self-recursive calls 17-48 deep with per-frame stack spills",
    spec_analog="perlbench / gcc recursive walks (RAS pressure + frame traffic)",
)
def build_deep_recursion(seed: int) -> WorkloadImage:
    """Call-heavy recursion: RAS stress plus spill/reload pairs at every depth.

    Each outer iteration draws a recursion depth between 17 and 48 from an
    LCG, so roughly half the recursions overflow the 32-entry return
    address stack and the unwind mispredicts its deepest returns.  Every
    frame saves a callee-saved register to its own stack slot and reloads
    it in the epilogue: the leaf sees a short store-to-load distance, while
    outer frames reload across the entire subtree -- a spread of distances
    the SMB distance predictor has to cope with.
    """
    rng = random.Random(seed)
    builder = ProgramBuilder("deep_recursion")
    r = int_reg

    builder.movi(_BASE_PTR, _HEAP_BASE)
    builder.movi(_STACK_PTR, _STACK_BASE)
    builder.movi(_LCG_STATE, rng.getrandbits(32) | 1)
    builder.movi(r(9), _LCG_MUL & 0xFFFFFFFF)
    _loop_prologue(builder)
    builder.jmp("loop")

    # rec(depth in r1): accumulate into r2, one stack frame per level.
    builder.label("rec")
    builder.store(r(6), base=_STACK_PTR, offset=0)   # save callee-saved reg
    builder.mov(r(6), r(1))                          # argument shuffle (eliminable)
    builder.addi(r(1), r(1), -1)
    builder.bz(r(1), "rec_leaf")
    builder.addi(_STACK_PTR, _STACK_PTR, 16)         # push frame
    builder.call("rec")
    builder.addi(_STACK_PTR, _STACK_PTR, -16)        # pop frame
    builder.label("rec_leaf")
    builder.add(r(2), r(2), r(6))
    builder.load(r(6), base=_STACK_PTR, offset=0)    # reload the spill
    builder.ret()

    builder.label("loop")
    _lcg_step(builder, r(9))
    builder.shri(r(1), _LCG_STATE, 34)
    builder.andi(r(1), r(1), 0x1F)
    builder.addi(r(1), r(1), 17)                     # depth in [17, 48]
    builder.movi(r(2), 0)
    builder.call("rec")
    builder.andi(r(3), _LOOP_COUNTER, 0x3F8)
    builder.load(r(4), base=_BASE_PTR, index=r(3), offset=0)
    builder.add(r(4), r(4), r(2))
    builder.store(r(4), base=_BASE_PTR, index=r(3), offset=0)
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory=_random_table(rng, _HEAP_BASE, 1024),
    )


@register_workload(
    "call_ret",
    category="int",
    description="short functions with caller/callee register shuffling",
    spec_analog="perlbench / xalancbmk (call-heavy code with save/restore moves)",
)
def build_call_ret(seed: int) -> WorkloadImage:
    """Call-heavy workload: moves for register shuffling plus stack save/restore pairs."""
    rng = random.Random(seed)
    builder = ProgramBuilder("call_ret")
    r = int_reg

    builder.movi(_BASE_PTR, _HEAP_BASE)
    builder.movi(_STACK_PTR, _STACK_BASE)
    builder.movi(r(9), 3)
    _loop_prologue(builder)
    builder.jmp("loop")

    # Callee: saves a register to the stack, shuffles arguments, restores.
    builder.label("callee")
    builder.store(r(6), base=_STACK_PTR, offset=32)   # save callee-saved register
    builder.mov(r(6), r(1))                           # argument shuffle (eliminable)
    builder.addi(r(6), r(6), 21)
    builder.mov(r(2), r(6))                           # return value shuffle (eliminable)
    # Callee-local work independent of the argument chain.
    builder.addi(r(7), _LOOP_COUNTER, 5)
    builder.shri(r(8), r(7), 2)
    builder.xor(r(7), r(7), r(8))
    builder.add(r(8), r(7), r(9))
    builder.load(r(6), base=_STACK_PTR, offset=32)    # restore
    builder.ret()

    builder.label("loop")
    builder.andi(r(3), _LOOP_COUNTER, 0x3F8)
    builder.load(r(4), base=_BASE_PTR, index=r(3), offset=0)
    builder.mov(r(1), r(4))                           # argument setup (eliminable)
    builder.call("callee")
    builder.mov(r(5), r(2))                           # consume return value (eliminable)
    builder.mul(r(5), r(5), r(9))
    builder.store(r(5), base=_BASE_PTR, index=r(3), offset=0)
    # Caller-side independent work between calls.
    builder.addi(r(6), r(6), rng.randrange(1, 8))
    builder.shri(r(7), r(4), 3)
    builder.add(r(7), r(7), r(3))
    builder.xor(r(7), r(7), r(4))
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory=_random_table(rng, _HEAP_BASE, 1024),
    )


@register_workload(
    "long_phase_mix",
    category="int",
    description="long-horizon two-phase kernel (random gather vs. spill-heavy "
                "stream) switching every ~200k micro-ops",
    spec_analog="gcc / mcf whole-program phase behaviour (SimPoint-scale phases)",
)
def build_long_phase_mix(seed: int) -> WorkloadImage:
    """Long-horizon integer workload: behaviour changes at the 100k+ op scale.

    The high bits of the loop counter select between two phases: phase A
    scatters LCG-driven gather loads over a 1MB footprint (cache- and
    DRAM-bound, nothing to prefetch), phase B runs a dense
    eliminable-move/spill/reload stream over a 16KB window (core-bound,
    sharing-friendly).  Each phase lasts 16384 iterations (about 230k
    micro-ops), so a 20k-op run sees only phase A while a >=1M-op run
    alternates through both -- the behaviour the two-speed sampled engine
    exists to make tractable.
    """
    rng = random.Random(seed)
    builder = ProgramBuilder("long_phase_mix")
    r = int_reg

    builder.movi(_BASE_PTR, _HEAP_BASE)
    builder.movi(_STACK_PTR, _STACK_BASE)
    builder.movi(_LCG_STATE, rng.getrandbits(31) | 1)
    builder.movi(r(9), 48271)
    _loop_prologue(builder)
    builder.label("loop")
    builder.shri(r(4), _LOOP_COUNTER, 14)       # phase bit flips every 16384 iters
    builder.andi(r(4), r(4), 1)
    builder.bnz(r(4), "phase_b")

    # Phase A: LCG gather over a 1MB window; addresses resolve late.
    for _ in range(2):
        _lcg_step(builder, r(9))
        builder.shri(r(1), _LCG_STATE, 30)
        builder.andi(r(1), r(1), 0xF_FFF8)      # 1MB gather window
        builder.load(r(2), base=_BASE_PTR, index=r(1), offset=0)
        builder.mov(r(3), r(2))                 # eliminable move
        builder.addi(r(3), r(3), 1)
        builder.andi(r(5), _LOOP_COUNTER, 0x3FF8)
        builder.store(r(3), base=_STACK_PTR, index=r(5), offset=0)
    builder.jmp("join")

    # Phase B: dense moves plus a short spill/reload (STLF) chain in 16KB.
    builder.label("phase_b")
    builder.andi(r(1), _LOOP_COUNTER, 0x3FF8)
    builder.load(r(2), base=_STACK_PTR, index=r(1), offset=0)
    builder.mov(r(6), r(2))                     # eliminable move
    builder.addi(r(6), r(6), 3)
    builder.store(r(6), base=_STACK_PTR, offset=0x7F00)   # short spill
    builder.mov(r(7), r(6))                     # eliminable move
    builder.shri(r(7), r(7), 2)
    builder.load(r(8), base=_STACK_PTR, offset=0x7F00)    # reload (STLF pair)
    builder.add(r(8), r(8), r(7))
    builder.store(r(8), base=_STACK_PTR, index=r(1), offset=0)

    builder.label("join")
    builder.nop()
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory=_random_table(rng, _HEAP_BASE, 1024),
    )
