"""Workload families backed by files: RV32I binaries and imported traces.

Two dynamic families (see
:func:`~repro.workloads.base.register_workload_family`):

* ``riscv:<path>`` -- decode + lower an RV32I binary (flat or ELF-lite)
  into a workload image.  Fully equivalent to a synthetic workload: it runs
  through the functional core, the detailed core and sampled simulation.
* ``trace:<path>`` -- import an externally recorded micro-op trace
  (:mod:`repro.isa.trace_io` JSONL, optionally ``.gz``).  Trace files carry
  no program to re-execute, so they replay through the full detailed path
  only; sampled mode raises with a clear message.

Both families embed a content hash of the backing file in their
``cache_token``, so on-disk trace-cache entries invalidate automatically
when the file changes.
"""

from __future__ import annotations

import hashlib
import re
from pathlib import Path

from repro.workloads.base import WorkloadImage, WorkloadSpec, register_workload_family

__all__ = ["riscv_workload", "trace_workload"]


def _file_token(kind: str, path: Path) -> str:
    """A filesystem-safe, content-hashed cache token for a file workload."""
    digest = hashlib.sha256(path.read_bytes()).hexdigest()[:12]
    stem = re.sub(r"[^A-Za-z0-9_.-]+", "-", path.stem) or "file"
    return f"{kind}-{stem}-{digest}"


def _require_file(name: str, path_text: str) -> Path:
    if not path_text:
        raise KeyError(f"workload {name!r} names no file (expected "
                       f"{name.split(':', 1)[0]}:<path>)")
    path = Path(path_text).expanduser()
    if not path.is_file():
        raise KeyError(f"workload {name!r}: no such file {path}")
    return path


@register_workload_family("riscv", "decoded RV32I binaries: riscv:<path> "
                                   "(flat binary or ELF-lite)")
def riscv_workload(name: str) -> WorkloadSpec:
    """Resolve ``riscv:<path>`` into a lowered RV32I workload spec."""
    # Imported lazily to keep repro.isa.riscv importable on its own.
    from repro.isa.riscv.lower import lower_image

    path = _require_file(name, name.partition(":")[2])

    def build(seed: int) -> WorkloadImage:
        # The seed is meaningless for a fixed binary; re-reading per build
        # keeps edited binaries fresh within one process.
        del seed
        return lower_image(path, name=name)

    return WorkloadSpec(
        name=name,
        category="int",
        description=f"RV32I binary {path.name} (decoded + lowered)",
        spec_analog="real program (user-supplied binary)",
        builder=build,
        cache_token=_file_token("riscv", path),
    )


@register_workload_family("trace", "imported micro-op traces: trace:<path> "
                                   "(repro-uop-trace JSONL, .gz ok)")
def trace_workload(name: str) -> WorkloadSpec:
    """Resolve ``trace:<path>`` into an imported-trace workload spec."""
    from repro.isa.trace_io import import_trace

    path = _require_file(name, name.partition(":")[2])

    def build(seed: int) -> WorkloadImage:
        raise ValueError(
            f"workload {name!r} is an imported trace: it has no program to "
            f"execute functionally, so it supports full detailed simulation "
            f"but not sampled mode (drop --sample-period / use the full "
            f"simulator)")

    def trace(max_ops: int, seed: int):
        del seed  # recorded streams are what they are
        return import_trace(path, max_ops=max_ops, name=name)

    return WorkloadSpec(
        name=name,
        category="int",
        description=f"imported micro-op trace {path.name}",
        spec_analog="externally recorded trace",
        builder=build,
        cache_token=_file_token("trace", path),
        tracer=trace,
    )
