"""Workload abstraction and registry.

The paper evaluates on 36 SPEC CPU2000/2006 Simpoint slices.  SPEC binaries
and traces are not redistributable and an x86_64 front end is out of scope
for this reproduction, so the evaluation substrate is a suite of *synthetic
workloads* written directly in the micro-op ISA.  Each workload is designed
to exhibit one of the behaviour classes that drive the paper's results:

* density of (eliminable and non-eliminable) register-to-register moves,
* store-to-load pairs whose distance fits inside the instruction window
  (compiler spills, stack argument passing, memory-carried recurrences),
* load-to-load redundancy (repeatedly reading the same location),
* memory dependences that the Store Sets predictor mis-handles (aliasing
  that appears and disappears, producing traps and false dependencies),
* branch predictability (from fully biased loops to data-dependent coins).

A workload is registered with :func:`register_workload` and produces a
:class:`WorkloadImage` (program + initial architectural state).  The
:func:`repro.workloads.generate_trace` helper functionally executes the
image into a :class:`~repro.isa.executor.Trace` that the core model replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa.executor import Executor, Trace
from repro.isa.program import Program
from repro.isa.registers import ArchReg


@dataclass
class WorkloadImage:
    """A program plus the initial architectural state it expects."""

    program: Program
    initial_regs: dict[ArchReg, int] = field(default_factory=dict)
    initial_memory: dict[int, int] = field(default_factory=dict)

    def execute(self, max_ops: int) -> Trace:
        """Run the image functionally and return its dynamic trace."""
        executor = Executor(
            self.program,
            initial_regs=self.initial_regs,
            initial_memory=self.initial_memory,
        )
        return executor.run(max_ops=max_ops)


#: Signature of a workload builder: ``build(seed) -> WorkloadImage``.
WorkloadBuilder = Callable[[int], WorkloadImage]

#: Signature of a direct trace materialiser: ``tracer(max_ops, seed) -> Trace``.
#: Used by trace-file workloads, which have no functional image to execute.
WorkloadTracer = Callable[[int, int], Trace]


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of one registered synthetic workload.

    Attributes
    ----------
    name:
        Registry key (also used in benchmark output rows).
    category:
        ``"int"`` or ``"fp"``; the paper groups results the same way.
    description:
        One-line summary of the behaviour the workload models.
    spec_analog:
        The SPEC benchmark(s) whose relevant behaviour class this workload
        stands in for (documentation only; no SPEC code is used).
    builder:
        Callable creating the :class:`WorkloadImage` for a seed.
    cache_token:
        Filesystem-safe token identifying this workload in on-disk trace
        cache keys.  ``None`` (all plainly registered workloads) means the
        name itself is the token; family-resolved workloads (``riscv:...``,
        ``trace:...``) carry a sanitised, content-hashed token so cache
        entries invalidate when the backing file changes.
    tracer:
        For imported-trace workloads only: materialise the dynamic trace
        directly.  Workloads with a ``tracer`` cannot be functionally
        re-executed (their ``builder`` raises), so they support full-trace
        simulation but not sampled mode.
    """

    name: str
    category: str
    description: str
    spec_analog: str
    builder: WorkloadBuilder
    cache_token: str | None = None
    tracer: WorkloadTracer | None = None

    def build(self, seed: int = 1) -> WorkloadImage:
        """Construct the workload image for ``seed``."""
        return self.builder(seed)

    def trace(self, max_ops: int, seed: int = 1) -> Trace:
        """Materialise the dynamic trace for this workload."""
        if self.tracer is not None:
            return self.tracer(max_ops, seed)
        return self.build(seed).execute(max_ops=max_ops)


_REGISTRY: dict[str, WorkloadSpec] = {}


def register_workload(name: str, category: str, description: str,
                      spec_analog: str) -> Callable[[WorkloadBuilder], WorkloadBuilder]:
    """Class/function decorator registering a workload builder under ``name``."""
    if category not in ("int", "fp"):
        raise ValueError(f"workload category must be 'int' or 'fp', got {category!r}")

    def decorator(builder: WorkloadBuilder) -> WorkloadBuilder:
        if name in _REGISTRY:
            raise ValueError(f"workload {name!r} registered twice")
        _REGISTRY[name] = WorkloadSpec(
            name=name,
            category=category,
            description=description,
            spec_analog=spec_analog,
            builder=builder,
        )
        return builder

    return decorator


def workload_registry() -> dict[str, WorkloadSpec]:
    """Return the registry of all known workloads (name -> spec)."""
    return dict(_REGISTRY)


#: Signature of a family resolver: ``resolve(name) -> WorkloadSpec`` for any
#: ``name`` starting with the family's ``<prefix>:``.
FamilyResolver = Callable[[str], WorkloadSpec]

_FAMILIES: dict[str, tuple[str, FamilyResolver]] = {}


def register_workload_family(prefix: str, description: str) \
        -> Callable[[FamilyResolver], FamilyResolver]:
    """Decorator registering a *dynamic workload family*.

    A family resolves open-ended workload names of the form
    ``<prefix>:<rest>`` (for example ``riscv:<path>`` or ``fuzz:mem:42``)
    into :class:`WorkloadSpec` objects on demand, so binaries, trace files
    and parameterised generators plug into every consumer of
    :func:`get_workload` -- the CLI, the sweep grid and the trace cache --
    without being enumerated in the static registry.
    """

    def decorator(resolver: FamilyResolver) -> FamilyResolver:
        if prefix in _FAMILIES:
            raise ValueError(f"workload family {prefix!r} registered twice")
        _FAMILIES[prefix] = (description, resolver)
        return resolver

    return decorator


def workload_families() -> dict[str, str]:
    """Return the registered workload families (prefix -> description)."""
    return {prefix: description for prefix, (description, _) in _FAMILIES.items()}


def get_workload(name: str) -> WorkloadSpec:
    """Return the spec for workload ``name`` (registry or family-resolved)."""
    spec = _REGISTRY.get(name)
    if spec is not None:
        return spec
    prefix, sep, _rest = name.partition(":")
    if sep and prefix in _FAMILIES:
        return _FAMILIES[prefix][1](name)
    known = ", ".join(sorted(_REGISTRY))
    families = ", ".join(f"{prefix}:..." for prefix in sorted(_FAMILIES))
    hint = f"; workload families: {families}" if families else ""
    raise KeyError(f"unknown workload {name!r}; known workloads: {known}{hint}")
