"""Synthetic workload suite standing in for the paper's SPEC benchmarks.

The public surface is small:

* :func:`list_workloads` -- names of every registered workload.
* :func:`workload_specs` -- full :class:`~repro.workloads.base.WorkloadSpec`
  metadata (category, description, SPEC behaviour analog).
* :func:`build_workload` -- construct the program + initial state for a
  workload.
* :func:`generate_trace` -- functionally execute a workload into the dynamic
  micro-op trace consumed by the core model.
* :func:`install_trace_provider` / :func:`clear_trace_provider` -- hook for
  the experiment harness's on-disk trace cache: a provider intercepts
  ``generate_trace(name, max_ops, seed)`` and may return a previously
  materialised trace instead of re-running the functional executor.
* ``DEFAULT_SUITE`` -- the ordered list of workloads the benchmark harness
  sweeps by default (integer first, then floating point, as in the paper's
  figures).
"""

from __future__ import annotations

from typing import Callable, Optional

# Importing the workload modules populates the registry (and the dynamic
# workload families: fuzz:, riscv:, trace:).
from repro.workloads import floating as _floating  # noqa: F401
from repro.workloads import fuzz as _fuzz  # noqa: F401
from repro.workloads import integer as _integer  # noqa: F401
from repro.workloads import riscv as _riscv  # noqa: F401
from repro.workloads.base import (
    WorkloadImage,
    WorkloadSpec,
    get_workload,
    register_workload,
    register_workload_family,
    workload_families,
    workload_registry,
)
from repro.isa.executor import Trace


def list_workloads(category: str | None = None) -> list[str]:
    """Return the registered workload names, optionally filtered by category."""
    specs = workload_registry()
    names = [name for name, spec in specs.items()
             if category is None or spec.category == category]
    # Keep a stable, paper-like ordering: integer workloads first.
    names.sort(key=lambda name: (specs[name].category != "int", name))
    return names


def workload_specs() -> list[WorkloadSpec]:
    """Return every registered workload spec in suite order."""
    registry = workload_registry()
    return [registry[name] for name in list_workloads()]


def build_workload(name: str, seed: int = 1) -> WorkloadImage:
    """Build the program and initial architectural state for workload ``name``."""
    return get_workload(name).build(seed)


#: Signature of a trace provider.  It receives ``(name, max_ops, seed)`` and
#: returns a :class:`Trace` to use instead of functional execution, or
#: ``None`` to fall through to the executor (e.g. on a cache miss).
TraceProvider = Callable[[str, int, int], Optional[Trace]]

_trace_provider: TraceProvider | None = None


def install_trace_provider(provider: TraceProvider | None) -> TraceProvider | None:
    """Install a trace provider consulted by :func:`generate_trace`.

    Returns the previously installed provider so callers can restore it.
    Passing ``None`` uninstalls the current provider.
    """
    global _trace_provider
    previous = _trace_provider
    _trace_provider = provider
    return previous


def clear_trace_provider() -> None:
    """Remove any installed trace provider."""
    install_trace_provider(None)


def generate_trace(name: str, max_ops: int = 20_000, seed: int = 1) -> Trace:
    """Functionally execute workload ``name`` and return its dynamic trace.

    When a trace provider is installed (see :func:`install_trace_provider`)
    it is consulted first; the executor only runs when the provider declines
    by returning ``None``.  Traces are deterministic in ``(name, max_ops,
    seed)``, which is what makes the experiment harness's on-disk cache
    sound.
    """
    if _trace_provider is not None:
        trace = _trace_provider(name, max_ops, seed)
        if trace is not None:
            return trace
    return materialize_trace(name, max_ops=max_ops, seed=seed)


def materialize_trace(name: str, max_ops: int = 20_000, seed: int = 1) -> Trace:
    """Materialise a trace *without* consulting the provider hook.

    For ordinary workloads this functionally executes the image; for
    imported-trace workloads (``trace:<path>``) it reads the trace file.
    This is the primitive the on-disk trace cache itself uses (the provider
    hook would recurse into the cache).
    """
    return get_workload(name).trace(max_ops, seed=seed)


def workload_cache_token(name: str) -> str:
    """Filesystem-safe token identifying ``name`` in trace-cache keys.

    Plainly registered workloads keep their name (so existing cache entries
    stay valid); family-resolved workloads (``riscv:...``, ``trace:...``,
    ``fuzz:...``) carry a sanitised token, content-hashed for file-backed
    families so cache entries invalidate when the file changes.

    Unregistered *plain* names key by themselves -- cache-key construction
    never required registry membership, and the real lookup error surfaces
    when the trace is materialised.  Unresolvable *family* names still
    raise: their tokens carry sanitisation/content hashes a fallback
    cannot fake.
    """
    try:
        spec = get_workload(name)
    except KeyError:
        prefix, sep, _rest = name.partition(":")
        if sep and prefix in workload_families():
            raise
        return name
    return spec.cache_token if spec.cache_token is not None else spec.name


#: Workloads swept by the benchmark harness, in presentation order.
DEFAULT_SUITE: tuple[str, ...] = tuple(list_workloads())

__all__ = [
    "WorkloadImage",
    "WorkloadSpec",
    "register_workload",
    "register_workload_family",
    "workload_registry",
    "workload_families",
    "get_workload",
    "list_workloads",
    "workload_specs",
    "build_workload",
    "generate_trace",
    "materialize_trace",
    "workload_cache_token",
    "TraceProvider",
    "install_trace_provider",
    "clear_trace_provider",
    "DEFAULT_SUITE",
]
