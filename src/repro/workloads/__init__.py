"""Synthetic workload suite standing in for the paper's SPEC benchmarks.

The public surface is small:

* :func:`list_workloads` -- names of every registered workload.
* :func:`workload_specs` -- full :class:`~repro.workloads.base.WorkloadSpec`
  metadata (category, description, SPEC behaviour analog).
* :func:`build_workload` -- construct the program + initial state for a
  workload.
* :func:`generate_trace` -- functionally execute a workload into the dynamic
  micro-op trace consumed by the core model.
* ``DEFAULT_SUITE`` -- the ordered list of workloads the benchmark harness
  sweeps by default (integer first, then floating point, as in the paper's
  figures).
"""

from __future__ import annotations

# Importing the workload modules populates the registry.
from repro.workloads import floating as _floating  # noqa: F401
from repro.workloads import integer as _integer  # noqa: F401
from repro.workloads.base import (
    WorkloadImage,
    WorkloadSpec,
    get_workload,
    register_workload,
    workload_registry,
)
from repro.isa.executor import Trace


def list_workloads(category: str | None = None) -> list[str]:
    """Return the registered workload names, optionally filtered by category."""
    specs = workload_registry()
    names = [name for name, spec in specs.items()
             if category is None or spec.category == category]
    # Keep a stable, paper-like ordering: integer workloads first.
    names.sort(key=lambda name: (specs[name].category != "int", name))
    return names


def workload_specs() -> list[WorkloadSpec]:
    """Return every registered workload spec in suite order."""
    registry = workload_registry()
    return [registry[name] for name in list_workloads()]


def build_workload(name: str, seed: int = 1) -> WorkloadImage:
    """Build the program and initial architectural state for workload ``name``."""
    return get_workload(name).build(seed)


def generate_trace(name: str, max_ops: int = 20_000, seed: int = 1) -> Trace:
    """Functionally execute workload ``name`` and return its dynamic trace."""
    return build_workload(name, seed=seed).execute(max_ops=max_ops)


#: Workloads swept by the benchmark harness, in presentation order.
DEFAULT_SUITE: tuple[str, ...] = tuple(list_workloads())

__all__ = [
    "WorkloadImage",
    "WorkloadSpec",
    "register_workload",
    "workload_registry",
    "get_workload",
    "list_workloads",
    "workload_specs",
    "build_workload",
    "generate_trace",
    "DEFAULT_SUITE",
]
