"""Floating-point synthetic workloads.

These model the behaviour classes of the paper's SPEC FP benchmarks:
long-latency FP dependence chains, array stencils that re-read neighbouring
elements, memory-carried recurrences and register-blocked kernels whose
accumulators spill to memory.  Addressing is done with integer registers as
in real x86_64 FP code.
"""

from __future__ import annotations

import random

from repro.isa.program import ProgramBuilder
from repro.isa.registers import fp_reg, int_reg
from repro.workloads.base import WorkloadImage, register_workload

_LOOP_COUNTER = int_reg(15)
_LOOP_BOUND = int_reg(14)
_LOOP_TEST = int_reg(13)
_ARRAY_A = int_reg(12)
_ARRAY_B = int_reg(11)
_LCG_STATE = int_reg(10)

_A_BASE = 0x0040_0000
_B_BASE = 0x0048_0000
_SPILL_BASE = 0x0002_0000
_HUGE_BOUND = 1 << 40
_LCG_ADD = 0x9E37


def _loop_prologue(builder: ProgramBuilder) -> None:
    """Initialise loop counter/bound and the two array base pointers."""
    builder.movi(_LOOP_COUNTER, 0)
    builder.movi(_LOOP_BOUND, _HUGE_BOUND)
    builder.movi(_ARRAY_A, _A_BASE)
    builder.movi(_ARRAY_B, _B_BASE)


def _loop_epilogue(builder: ProgramBuilder, label: str) -> None:
    """Increment the loop counter and branch back to ``label``."""
    builder.addi(_LOOP_COUNTER, _LOOP_COUNTER, 1)
    builder.cmplt(_LOOP_TEST, _LOOP_COUNTER, _LOOP_BOUND)
    builder.bnz(_LOOP_TEST, label)
    builder.halt()


def _random_table(rng: random.Random, base: int, words: int) -> dict[int, int]:
    """A table of ``words`` random 64-bit values starting at ``base``."""
    return {base + 8 * i: rng.getrandbits(63) for i in range(words)}


@register_workload(
    "fp_stencil",
    category="fp",
    description="1D stencil re-reading neighbouring elements every iteration",
    spec_analog="mgrid / applu (stencils with heavy load-load redundancy)",
)
def build_fp_stencil(seed: int) -> WorkloadImage:
    """Stencil kernel: a[i-1] and a[i] are reloaded by the next iteration (load-load pairs)."""
    rng = random.Random(seed)
    builder = ProgramBuilder("fp_stencil")
    r, f = int_reg, fp_reg

    _loop_prologue(builder)
    builder.label("loop")
    # i advances one element per iteration: a[i] and a[i+1] are re-read by
    # the next iteration as a[i-1] and a[i] (stable load-load distances).
    builder.shli(r(1), _LOOP_COUNTER, 3)
    builder.andi(r(1), r(1), 0x7F8)
    builder.fload(f(0), base=_ARRAY_A, index=r(1), offset=0)       # a[i-1]
    builder.fload(f(1), base=_ARRAY_A, index=r(1), offset=8)       # a[i]
    builder.fload(f(2), base=_ARRAY_A, index=r(1), offset=16)      # a[i+1]
    builder.fadd(f(3), f(0), f(1))
    builder.fadd(f(4), f(3), f(2))
    builder.fmul(f(5), f(4), f(1))
    builder.fstore(f(5), base=_ARRAY_B, index=r(1), offset=8)
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory={**_random_table(rng, _A_BASE, 512), **_random_table(rng, _B_BASE, 512)},
    )


@register_workload(
    "fp_recurrence",
    category="fp",
    description="memory-carried recurrence: each iteration reloads the value stored by the last",
    spec_analog="wupwise / swim (short store-to-load recurrences)",
)
def build_fp_recurrence(seed: int) -> WorkloadImage:
    """Store-to-load recurrence with a stable in-window distance (prime store-load SMB)."""
    rng = random.Random(seed)
    builder = ProgramBuilder("fp_recurrence")
    r, f = int_reg, fp_reg

    _loop_prologue(builder)
    builder.movi(r(9), _SPILL_BASE)
    builder.label("loop")
    builder.fload(f(0), base=r(9), offset=0)              # reload last iteration's value
    builder.andi(r(1), _LOOP_COUNTER, 0x1F8)
    builder.fload(f(1), base=_ARRAY_A, index=r(1), offset=0)
    builder.fadd(f(2), f(0), f(1))
    builder.fmul(f(3), f(2), f(1))
    builder.fadd(f(4), f(3), f(0))
    builder.fstore(f(4), base=r(9), offset=0)              # store for the next iteration
    builder.fstore(f(3), base=_ARRAY_B, index=r(1), offset=0)
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory={**_random_table(rng, _A_BASE, 256),
                        **_random_table(rng, _SPILL_BASE, 8)},
    )


@register_workload(
    "fp_moves",
    category="fp",
    description="FP arithmetic with FP and integer register shuffling moves",
    spec_analog="namd / povray (moves on the scalar critical path)",
)
def build_fp_moves(seed: int) -> WorkloadImage:
    """FP kernel whose integer address computation goes through eliminable moves."""
    rng = random.Random(seed)
    builder = ProgramBuilder("fp_moves")
    r, f = int_reg, fp_reg

    _loop_prologue(builder)
    builder.movi(r(9), 3)
    builder.label("loop")
    builder.andi(r(1), _LOOP_COUNTER, 0x7F8)
    builder.mov(r(2), r(1))                                # eliminable (address critical path)
    builder.addi(r(2), r(2), 8)
    builder.mov(r(3), r(2))                                # eliminable
    builder.fload(f(0), base=_ARRAY_A, index=r(3), offset=0)
    builder.fmov(f(1), f(0))                               # FP move (kept as a real micro-op)
    builder.fmul(f(2), f(1), f(0))
    builder.fmov(f(3), f(2))                               # FP move
    builder.fadd(f(4), f(3), f(1))
    builder.fstore(f(4), base=_ARRAY_B, index=r(1), offset=0)
    builder.mov(r(4), r(3))                                # eliminable
    builder.add(r(5), r(4), r(9))
    builder.store(r(5), base=_ARRAY_B, index=r(1), offset=0x4000)
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory={**_random_table(rng, _A_BASE, 512), **_random_table(rng, _B_BASE, 512)},
    )


@register_workload(
    "fp_gather_alias",
    category="fp",
    description="indexed FP loads disturbed by intermittently aliasing stores",
    spec_analog="gamess / gromacs (gather/scatter with rare in-window aliasing)",
)
def build_fp_gather_alias(seed: int) -> WorkloadImage:
    """Gather/scatter with occasional aliasing: traps without SMB, clean with it."""
    rng = random.Random(seed)
    builder = ProgramBuilder("fp_gather_alias")
    r, f = int_reg, fp_reg

    _loop_prologue(builder)
    builder.movi(_LCG_STATE, rng.getrandbits(31) | 1)
    builder.movi(r(9), 2654435761)
    builder.label("loop")
    builder.mul(_LCG_STATE, _LCG_STATE, r(9))
    builder.addi(_LCG_STATE, _LCG_STATE, _LCG_ADD)
    builder.shri(r(1), _LCG_STATE, 40)
    builder.andi(r(1), r(1), 0x38)                       # scatter bucket (8 buckets)
    builder.mul(r(2), r(1), r(9))                        # late-resolving scatter address input
    builder.andi(r(2), r(2), 0x38)
    builder.andi(r(3), _LOOP_COUNTER, 0x1F8)
    builder.fload(f(0), base=_ARRAY_A, index=r(3), offset=0)
    builder.fmul(f(1), f(0), f(0))
    builder.fstore(f(1), base=_ARRAY_B, index=r(2), offset=0)   # scatter (late address)
    builder.fload(f(2), base=_ARRAY_B, offset=0x10)             # gathers bucket 2: aliases 1/8
    builder.fadd(f(3), f(2), f(1))
    builder.fstore(f(3), base=_ARRAY_B, index=r(3), offset=0x2000)
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory={**_random_table(rng, _A_BASE, 256), **_random_table(rng, _B_BASE, 2048)},
    )


@register_workload(
    "fp_blocked_mm",
    category="fp",
    description="register-blocked kernel whose accumulators spill and reload",
    spec_analog="gromacs / calculix (blocked linear algebra with spills)",
)
def build_fp_blocked_mm(seed: int) -> WorkloadImage:
    """Register-blocked multiply-accumulate tile with accumulator spills to memory."""
    rng = random.Random(seed)
    builder = ProgramBuilder("fp_blocked_mm")
    r, f = int_reg, fp_reg

    _loop_prologue(builder)
    builder.movi(r(9), _SPILL_BASE)
    builder.label("loop")
    builder.andi(r(1), _LOOP_COUNTER, 0x1F8)
    # Load a 2x2 tile of operands.
    builder.fload(f(0), base=_ARRAY_A, index=r(1), offset=0)
    builder.fload(f(1), base=_ARRAY_A, index=r(1), offset=8)
    builder.fload(f(2), base=_ARRAY_B, index=r(1), offset=0)
    builder.fload(f(3), base=_ARRAY_B, index=r(1), offset=8)
    # Multiply-accumulate into four accumulators.
    builder.fmul(f(4), f(0), f(2))
    builder.fmul(f(5), f(0), f(3))
    builder.fmul(f(6), f(1), f(2))
    builder.fmul(f(7), f(1), f(3))
    # Spill two accumulators (register pressure), keep computing, reload them.
    builder.fstore(f(4), base=r(9), offset=0)
    builder.fstore(f(5), base=r(9), offset=8)
    builder.fadd(f(8), f(6), f(7))
    builder.fmul(f(9), f(8), f(2))
    builder.fload(f(10), base=r(9), offset=0)          # reload accumulator 0
    builder.fload(f(11), base=r(9), offset=8)          # reload accumulator 1
    builder.fadd(f(12), f(10), f(11))
    builder.fadd(f(13), f(12), f(9))
    builder.fstore(f(13), base=_ARRAY_B, index=r(1), offset=0x2000)
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory={**_random_table(rng, _A_BASE, 512),
                        **_random_table(rng, _B_BASE, 2048),
                        **_random_table(rng, _SPILL_BASE, 8)},
    )


@register_workload(
    "fp_mixed",
    category="fp",
    description="mixed FP/integer loop with moderate moves, spills and branches",
    spec_analog="sphinx3 / soplex (balanced FP code)",
)
def build_fp_mixed(seed: int) -> WorkloadImage:
    """A balanced FP workload combining every behaviour in moderation."""
    rng = random.Random(seed)
    builder = ProgramBuilder("fp_mixed")
    r, f = int_reg, fp_reg

    _loop_prologue(builder)
    builder.movi(r(9), _SPILL_BASE)
    builder.movi(_LCG_STATE, rng.getrandbits(31) | 1)
    builder.movi(r(8), 48271)
    builder.label("loop")
    builder.andi(r(1), _LOOP_COUNTER, 0x3F8)
    builder.fload(f(0), base=_ARRAY_A, index=r(1), offset=0)
    builder.mov(r(2), r(1))                              # eliminable move
    builder.addi(r(2), r(2), 16)
    builder.fload(f(1), base=_ARRAY_A, index=r(2), offset=0)
    builder.fmul(f(2), f(0), f(1))
    builder.fstore(f(2), base=r(9), offset=16)           # short spill
    builder.mul(_LCG_STATE, _LCG_STATE, r(8))
    builder.addi(_LCG_STATE, _LCG_STATE, 7)
    builder.shri(r(3), _LCG_STATE, 34)
    builder.andi(r(3), r(3), 1)
    builder.bz(r(3), "skip")
    builder.fadd(f(3), f(2), f(0))
    builder.fstore(f(3), base=_ARRAY_B, index=r(1), offset=0)
    builder.label("skip")
    builder.fload(f(4), base=r(9), offset=16)            # reload of the short spill
    builder.fadd(f(5), f(4), f(1))
    builder.fstore(f(5), base=_ARRAY_B, index=r(1), offset=0x2000)
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory={**_random_table(rng, _A_BASE, 512),
                        **_random_table(rng, _B_BASE, 2048),
                        **_random_table(rng, _SPILL_BASE, 8)},
    )


@register_workload(
    "stride_stream",
    category="fp",
    description="streaming + strided FP kernel sweeping a multi-set footprint",
    spec_analog="libquantum / lbm / milc (bandwidth-bound streaming loops)",
)
def build_stride_stream(seed: int) -> WorkloadImage:
    """Streaming/strided kernel: the prefetcher's best and worst case at once.

    Stream A walks sequential 8-byte elements (eight accesses per line, a
    perfectly strided miss pattern the next-line prefetcher should cover);
    stream B touches one element per line at a 64-byte stride (every access
    a new line, prefetchable but with no reuse); the result streams out to
    a third region.  Both footprints wrap far beyond the L1, so without
    prefetching the loop is bandwidth-bound.  There is nothing here for
    move elimination or SMB -- like ``stream_reduce`` it acts as a control
    workload, but one whose bottleneck is the memory hierarchy model.
    """
    rng = random.Random(seed)
    builder = ProgramBuilder("stride_stream")
    r = int_reg
    f = fp_reg

    out_base = int_reg(9)
    builder.movi(out_base, _SPILL_BASE + 0x0010_0000)
    _loop_prologue(builder)
    builder.movi(f(0), 0)                                # running sum
    builder.label("loop")
    builder.shli(r(1), _LOOP_COUNTER, 3)                 # A: sequential 8B stride
    builder.andi(r(1), r(1), 0x3_FFF8)                   # 256KB window
    builder.fload(f(1), base=_ARRAY_A, index=r(1), offset=0)
    builder.shli(r(2), _LOOP_COUNTER, 6)                 # B: one element per line
    builder.andi(r(2), r(2), 0xF_FFC0)                   # 1MB window
    builder.fload(f(2), base=_ARRAY_B, index=r(2), offset=0)
    builder.fadd(f(3), f(1), f(2))
    builder.fadd(f(0), f(0), f(3))
    builder.fmul(f(4), f(3), f(1))
    builder.fstore(f(4), base=out_base, index=r(1), offset=0)  # output stream
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory={**_random_table(rng, _A_BASE, 2048),
                        **_random_table(rng, _B_BASE, 2048)},
    )


@register_workload(
    "long_stride_drift",
    category="fp",
    description="long-horizon streaming kernel whose stride drifts every "
                "~300k micro-ops (prefetcher must retrain per epoch)",
    spec_analog="milc / soplex input-dependent access-pattern drift",
)
def build_long_stride_drift(seed: int) -> WorkloadImage:
    """Long-horizon FP workload: the access pattern itself is time-varying.

    The high bits of the loop counter pick the stride shift (8 to 64 bytes)
    used to walk a 1MB window, so every 32768 iterations (about 300k
    micro-ops) the stride prefetcher faces a different pattern and a
    different effective footprint.  Short runs measure exactly one epoch;
    only >=1M-op runs -- tractable under sampling -- see the drift the
    workload exists to model.
    """
    rng = random.Random(seed)
    builder = ProgramBuilder("long_stride_drift")
    r, f = int_reg, fp_reg

    out_base = int_reg(9)
    builder.movi(out_base, _SPILL_BASE)
    builder.movi(r(8), 0)
    builder.i2f(f(0), r(8))                              # running sum
    _loop_prologue(builder)
    builder.label("loop")
    builder.shri(r(1), _LOOP_COUNTER, 15)                # epoch every 32768 iters
    builder.andi(r(1), r(1), 3)
    builder.addi(r(1), r(1), 3)                          # stride shift 3..6
    builder.shl(r(2), _LOOP_COUNTER, r(1))
    builder.andi(r(2), r(2), 0xF_FFF8)                   # 1MB window
    builder.fload(f(1), base=_ARRAY_A, index=r(2), offset=0)
    builder.fadd(f(0), f(0), f(1))
    builder.fload(f(2), base=_ARRAY_B, index=r(2), offset=0)
    builder.fmul(f(3), f(1), f(2))
    builder.andi(r(3), _LOOP_COUNTER, 0x3FF8)            # 16KB output window
    builder.fstore(f(3), base=out_base, index=r(3), offset=0)
    _loop_epilogue(builder, "loop")

    return WorkloadImage(
        program=builder.build(),
        initial_memory={**_random_table(rng, _A_BASE, 1024),
                        **_random_table(rng, _B_BASE, 1024)},
    )
