"""Seeded random-program (fuzz) workloads.

The property-test layer (``tests/test_properties.py``) has always driven the
pipeline with seeded random programs; this module promotes that generator
into first-class, registered workloads so the sweep harness, the paper
pipeline and the differential tests all exercise machine-generated code
nobody hand-tuned for the tracker schemes.

The promoted generator is *phase-structured*: the program is an infinite
outer loop over a few phases, each phase being an inner loop whose body is
drawn from a different template mix (ALU-heavy, memory-heavy,
branch-heavy).  Distinct phases have distinct IPC and distinct
sharing/squash behaviour, which is exactly the program shape the two-speed
sampling layer has to handle.

Three profiles are registered in the default suite (``fuzz_mix``,
``fuzz_mem``, ``fuzz_branch``); arbitrary profile/seed combinations are
reachable through the ``fuzz:<profile>[:<seed>]`` workload family, e.g.
``repro run fuzz:mem:42``.

Template inventory (shared across profiles, weighted per phase):

0. two-source ALU ops,
1. immediate ALU / shifts,
2. moves -- eliminable 64-bit, non-eliminable 16-bit merges, ``movzx8``,
3. masked loads from a 128-word heap (dense aliasing),
4. masked stores, address frequently behind a multiply (late resolution,
   so memory-order traps actually happen),
5. data-dependent forward branches over short blocks,
6. calls to a leaf function with a spill/reload pair (RAS + STLF),
7. long-latency multiply producers.
"""

from __future__ import annotations

import random
import zlib

from repro.isa.program import ProgramBuilder
from repro.isa.registers import int_reg
from repro.workloads.base import (
    WorkloadImage,
    WorkloadSpec,
    register_workload,
    register_workload_family,
)

__all__ = ["FUZZ_PROFILES", "fuzz_image", "random_image"]

_HEAP = 0x0010_0000
_STACK = 0x0001_0000

#: Per-profile phase structure: each inner tuple is one phase's weights over
#: the eight templates (see the module docstring for the inventory).
FUZZ_PROFILES: dict[str, tuple[tuple[int, ...], ...]] = {
    "mix": (
        (3, 2, 2, 1, 1, 1, 1, 1),   # ALU/move-heavy
        (1, 1, 1, 4, 4, 1, 1, 1),   # memory-heavy
        (1, 1, 1, 1, 1, 5, 2, 1),   # branch/call-heavy
    ),
    "mem": (
        (1, 1, 1, 5, 2, 0, 1, 1),   # load-dominated
        (1, 1, 1, 2, 5, 1, 0, 1),   # store-dominated (late addresses)
        (0, 1, 1, 4, 4, 1, 1, 0),   # balanced aliasing churn
    ),
    "branch": (
        (1, 1, 1, 1, 0, 6, 1, 0),   # coin-flip branches
        (1, 1, 2, 1, 1, 4, 2, 1),   # branches + calls
        (2, 1, 1, 0, 1, 5, 0, 1),   # branches behind long latency
    ),
}

_TEMPLATES = 8


def fuzz_image(seed: int, profile: str = "mix") -> WorkloadImage:
    """Generate a phase-structured random workload image.

    Structural register conventions (unchanged from the original
    property-test generator): ``r0..r8`` are value registers the templates
    mangle freely, ``r9`` the multiplier constant, ``r10`` the LCG state,
    ``r11/r12`` stack/heap bases, ``r13`` the inner phase counter (and the
    outer-loop compare scratch), ``r14/r15`` the outer loop bound/counter.
    """
    try:
        phases = FUZZ_PROFILES[profile]
    except KeyError:
        known = ", ".join(sorted(FUZZ_PROFILES))
        raise ValueError(f"unknown fuzz profile {profile!r}; known: {known}") \
            from None
    # Stable across processes (unlike hash()): profile-salted seed.
    rng = random.Random(seed if profile == "mix"
                        else seed ^ zlib.crc32(profile.encode()))
    builder = ProgramBuilder(f"fuzz_{profile}_{seed}")
    r = int_reg
    value_regs = [r(i) for i in range(9)]

    def any_reg():
        return rng.choice(value_regs)

    builder.movi(r(12), _HEAP)
    builder.movi(r(11), _STACK)
    builder.movi(r(10), rng.getrandbits(31) | 1)
    builder.movi(r(9), 48271)
    builder.movi(r(15), 0)            # outer loop counter
    builder.movi(r(14), 1 << 40)      # outer bound (truncated by max_ops)
    builder.jmp("phase_0")

    # Leaf function: spill, shuffle, reload -- a call/RAS + STLF template.
    builder.label("fn")
    builder.store(r(6), base=r(11), offset=32)
    builder.mov(r(6), r(1))                       # eliminable shuffle
    builder.addi(r(6), r(6), 7)
    builder.load(r(6), base=r(11), offset=32)
    builder.ret()

    skip_count = 0

    def emit_template(template: int) -> None:
        nonlocal skip_count
        if template == 0:   # two-source ALU
            op = rng.choice((builder.add, builder.sub, builder.xor,
                             builder.and_, builder.or_))
            op(any_reg(), any_reg(), any_reg())
        elif template == 1:  # immediate ALU / shift
            op = rng.choice((builder.addi, builder.andi, builder.shri,
                             builder.shli))
            op(any_reg(), any_reg(), rng.randrange(1, 48))
        elif template == 2:  # moves: eliminable and merge flavours
            kind = rng.randrange(3)
            if kind == 0:
                builder.mov(any_reg(), any_reg())                 # eliminable
            elif kind == 1:
                builder.mov(any_reg(), any_reg(), width=16)       # merge: not
            else:
                builder.movzx8(any_reg(), any_reg(),
                               src_high8=rng.random() < 0.3)
        elif template == 3:  # masked load
            builder.andi(r(1), any_reg(), 0x3F8)
            builder.load(any_reg(), base=r(12), index=r(1),
                         offset=8 * rng.randrange(0, 4))
        elif template == 4:  # masked store, index often behind a multiply
            if rng.random() < 0.5:
                builder.mul(r(2), any_reg(), r(9))
                builder.andi(r(2), r(2), 0x3F8)
            else:
                builder.andi(r(2), any_reg(), 0x3F8)
            builder.store(any_reg(), base=r(12), index=r(2),
                          offset=8 * rng.randrange(0, 4))
        elif template == 5:  # data-dependent forward branch over a block
            builder.mul(r(10), r(10), r(9))
            builder.addi(r(10), r(10), 12345)
            builder.shri(r(3), r(10), 33)
            builder.andi(r(3), r(3), 1)
            label = f"skip_{skip_count}"
            skip_count += 1
            builder.bnz(r(3), label)
            for _ in range(rng.randrange(1, 3)):
                builder.addi(any_reg(), any_reg(), rng.randrange(1, 9))
            builder.label(label)
            builder.nop()
        elif template == 6:  # call the leaf
            builder.mov(r(1), any_reg())
            builder.call("fn")
        else:               # long-latency producer
            builder.mul(any_reg(), any_reg(), r(9))

    for phase_index, weights in enumerate(phases):
        builder.label(f"phase_{phase_index}")
        builder.movi(r(13), rng.randrange(6, 14))   # inner phase iterations
        builder.label(f"phase_{phase_index}_body")
        for _ in range(rng.randrange(10, 22)):
            emit_template(rng.choices(range(_TEMPLATES), weights=weights)[0])
        builder.addi(r(13), r(13), -1)
        builder.bnz(r(13), f"phase_{phase_index}_body")

    builder.addi(r(15), r(15), 1)
    builder.cmplt(r(13), r(15), r(14))
    builder.bnz(r(13), "phase_0")
    builder.halt()

    memory = {_HEAP + 8 * i: rng.getrandbits(63) for i in range(128)}
    return WorkloadImage(program=builder.build(), initial_memory=memory)


def random_image(seed: int) -> WorkloadImage:
    """The property-test entry point: a mixed-profile fuzz image."""
    return fuzz_image(seed, "mix")


def _register(profile: str, description: str) -> None:
    register_workload(
        name=f"fuzz_{profile}",
        category="int",
        description=description,
        spec_analog="machine-generated (no hand-tuned analog)",
    )(lambda seed, _profile=profile: fuzz_image(seed, _profile))


_register("mix", "phase-structured random program: ALU, memory and branch "
                 "phases in rotation")
_register("mem", "phase-structured random program: load/store-dominated "
                 "phases with dense aliasing")
_register("branch", "phase-structured random program: data-dependent "
                    "branch/call-dominated phases")


@register_workload_family(
    "fuzz", "seeded random programs: fuzz:<profile>[:<seed>], profiles "
            + "/".join(sorted(FUZZ_PROFILES)))
def _resolve_fuzz(name: str) -> WorkloadSpec:
    _, _, rest = name.partition(":")
    profile, _, seed_text = rest.partition(":")
    if profile not in FUZZ_PROFILES:
        known = ", ".join(sorted(FUZZ_PROFILES))
        raise KeyError(f"unknown fuzz profile in {name!r}; known: {known}")
    pinned_seed: int | None = None
    if seed_text:
        try:
            pinned_seed = int(seed_text)
        except ValueError:
            raise KeyError(f"bad fuzz seed in {name!r}: {seed_text!r}") from None

    def build(seed: int, _profile=profile, _pinned=pinned_seed) -> WorkloadImage:
        return fuzz_image(_pinned if _pinned is not None else seed, _profile)

    token = f"fuzz-{profile}" + (f"-{pinned_seed}" if pinned_seed is not None
                                 else "")
    return WorkloadSpec(
        name=name,
        category="int",
        description=f"fuzz workload, profile {profile!r}"
                    + (f", pinned seed {pinned_seed}" if pinned_seed is not None
                       else ""),
        spec_analog="machine-generated (no hand-tuned analog)",
        builder=build,
        cache_token=token,
    )
