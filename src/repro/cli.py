"""Console-script shim: ``repro = repro.cli:main`` (see pyproject.toml).

The implementation lives in :mod:`repro.experiments.cli`; this module only
gives the packaging metadata a stable import path.
"""

from repro.experiments.cli import main

__all__ = ["main"]

if __name__ == "__main__":
    raise SystemExit(main())
