"""Programs and a small builder DSL for writing synthetic workloads.

A :class:`Program` is an ordered list of static micro-ops plus a label table.
Workloads (see :mod:`repro.workloads`) construct programs through
:class:`ProgramBuilder`, which reads like a tiny assembler::

    b = ProgramBuilder("example")
    b.movi(r(0), 0)                      # r0 = 0
    b.label("loop")
    b.load(r(1), base=r(2), offset=0)    # r1 = mem[r2]
    b.addi(r(0), r(0), 1)
    b.cmplt(r(3), r(0), r(4))
    b.bnz(r(3), "loop")
    b.halt()
    program = b.build()

Program counters are assigned densely (4 bytes per micro-op) starting at
``Program.BASE_PC`` so branch predictors index realistic-looking addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction, MemOperand
from repro.isa.opcodes import Opcode
from repro.isa.registers import ArchReg


@dataclass
class Program:
    """A static micro-op program.

    Attributes
    ----------
    name:
        Human-readable workload name.
    instructions:
        Static micro-ops in program order.
    labels:
        Mapping from label name to instruction index.
    """

    BASE_PC = 0x1000
    BYTES_PER_OP = 4

    name: str
    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)

    def pc_of(self, index: int) -> int:
        """Program counter of the instruction at ``index``."""
        return self.BASE_PC + index * self.BYTES_PER_OP

    def index_of_pc(self, pc: int) -> int:
        """Instruction index corresponding to program counter ``pc``."""
        index, remainder = divmod(pc - self.BASE_PC, self.BYTES_PER_OP)
        if remainder or not 0 <= index < len(self.instructions):
            raise ValueError(f"pc {pc:#x} does not name an instruction of {self.name}")
        return index

    def target_index(self, label: str) -> int:
        """Instruction index of a label."""
        try:
            return self.labels[label]
        except KeyError as exc:
            raise KeyError(f"unknown label {label!r} in program {self.name}") from exc

    def target_pc(self, label: str) -> int:
        """Program counter of a label."""
        return self.pc_of(self.target_index(label))

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def validate(self) -> None:
        """Check that every branch target resolves to a label."""
        for instruction in self.instructions:
            if instruction.target is not None and instruction.target not in self.labels:
                raise ValueError(
                    f"instruction {instruction} references unknown label {instruction.target!r}"
                )

    def __repr__(self) -> str:
        return f"Program(name={self.name!r}, instructions={len(self.instructions)})"


class ProgramBuilder:
    """Fluent builder used by the synthetic workloads to assemble programs."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._pending_label: str | None = None

    # -- structural helpers ------------------------------------------------------

    def label(self, name: str) -> "ProgramBuilder":
        """Attach ``name`` to the next emitted instruction."""
        if name in self._labels:
            raise ValueError(f"label {name!r} defined twice in program {self._name}")
        if self._pending_label is not None:
            raise ValueError(
                f"two labels ({self._pending_label!r}, {name!r}) attached to one instruction"
            )
        self._pending_label = name
        return self

    def emit(self, instruction: Instruction) -> "ProgramBuilder":
        """Append a raw instruction (applying any pending label)."""
        if self._pending_label is not None:
            self._labels[self._pending_label] = len(self._instructions)
            instruction = Instruction(
                opcode=instruction.opcode,
                dest=instruction.dest,
                srcs=instruction.srcs,
                imm=instruction.imm,
                width=instruction.width,
                src_high8=instruction.src_high8,
                mem=instruction.mem,
                target=instruction.target,
                label=self._pending_label,
                comment=instruction.comment,
            )
            self._pending_label = None
        self._instructions.append(instruction)
        return self

    def build(self) -> Program:
        """Finalise the program and validate branch targets."""
        if self._pending_label is not None:
            raise ValueError(f"dangling label {self._pending_label!r} at end of program")
        program = Program(self._name, list(self._instructions), dict(self._labels))
        program.validate()
        return program

    # -- integer ALU --------------------------------------------------------------

    def add(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = a + b``."""
        return self.emit(Instruction(Opcode.IADD, dest=dest, srcs=(a, b)))

    def sub(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = a - b``."""
        return self.emit(Instruction(Opcode.ISUB, dest=dest, srcs=(a, b)))

    def and_(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = a & b``."""
        return self.emit(Instruction(Opcode.IAND, dest=dest, srcs=(a, b)))

    def or_(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = a | b``."""
        return self.emit(Instruction(Opcode.IOR, dest=dest, srcs=(a, b)))

    def xor(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = a ^ b``."""
        return self.emit(Instruction(Opcode.IXOR, dest=dest, srcs=(a, b)))

    def shl(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = a << (b & 63)``."""
        return self.emit(Instruction(Opcode.ISHL, dest=dest, srcs=(a, b)))

    def shr(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = a >> (b & 63)``."""
        return self.emit(Instruction(Opcode.ISHR, dest=dest, srcs=(a, b)))

    def addi(self, dest: ArchReg, a: ArchReg, imm: int) -> "ProgramBuilder":
        """``dest = a + imm``."""
        return self.emit(Instruction(Opcode.IADDI, dest=dest, srcs=(a,), imm=imm))

    def andi(self, dest: ArchReg, a: ArchReg, imm: int) -> "ProgramBuilder":
        """``dest = a & imm``."""
        return self.emit(Instruction(Opcode.IANDI, dest=dest, srcs=(a,), imm=imm))

    def shli(self, dest: ArchReg, a: ArchReg, imm: int) -> "ProgramBuilder":
        """``dest = a << imm``."""
        return self.emit(Instruction(Opcode.ISHLI, dest=dest, srcs=(a,), imm=imm))

    def shri(self, dest: ArchReg, a: ArchReg, imm: int) -> "ProgramBuilder":
        """``dest = a >> imm``."""
        return self.emit(Instruction(Opcode.ISHRI, dest=dest, srcs=(a,), imm=imm))

    def cmpeq(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = 1 if a == b else 0``."""
        return self.emit(Instruction(Opcode.ICMPEQ, dest=dest, srcs=(a, b)))

    def cmplt(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = 1 if a < b else 0`` (unsigned)."""
        return self.emit(Instruction(Opcode.ICMPLT, dest=dest, srcs=(a, b)))

    def mul(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = a * b`` (long latency, non-pipelined unit)."""
        return self.emit(Instruction(Opcode.IMUL, dest=dest, srcs=(a, b)))

    def div(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = a // max(b, 1)`` (very long latency)."""
        return self.emit(Instruction(Opcode.IDIV, dest=dest, srcs=(a, b)))

    # -- moves and immediates -----------------------------------------------------

    def movi(self, dest: ArchReg, imm: int) -> "ProgramBuilder":
        """``dest = imm``."""
        return self.emit(Instruction(Opcode.MOVI, dest=dest, imm=imm))

    def mov(self, dest: ArchReg, src: ArchReg, width: int = 64) -> "ProgramBuilder":
        """Register-to-register move of the given width (64/32/16/8 bits)."""
        return self.emit(Instruction(Opcode.MOV, dest=dest, srcs=(src,), width=width))

    def movzx8(self, dest: ArchReg, src: ArchReg, src_high8: bool = False) -> "ProgramBuilder":
        """Zero-extending move of the low (or high) byte of ``src``."""
        return self.emit(
            Instruction(Opcode.MOVZX8, dest=dest, srcs=(src,), width=8, src_high8=src_high8)
        )

    def fmov(self, dest: ArchReg, src: ArchReg) -> "ProgramBuilder":
        """Floating-point register-to-register move."""
        return self.emit(Instruction(Opcode.FMOV, dest=dest, srcs=(src,)))

    # -- floating point -----------------------------------------------------------

    def fadd(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = a + b`` on floating-point registers."""
        return self.emit(Instruction(Opcode.FADD, dest=dest, srcs=(a, b)))

    def fsub(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = a - b`` on floating-point registers."""
        return self.emit(Instruction(Opcode.FSUB, dest=dest, srcs=(a, b)))

    def fmul(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = a * b`` on floating-point registers."""
        return self.emit(Instruction(Opcode.FMUL, dest=dest, srcs=(a, b)))

    def fdiv(self, dest: ArchReg, a: ArchReg, b: ArchReg) -> "ProgramBuilder":
        """``dest = a / b`` on floating-point registers."""
        return self.emit(Instruction(Opcode.FDIV, dest=dest, srcs=(a, b)))

    def i2f(self, dest: ArchReg, src: ArchReg) -> "ProgramBuilder":
        """Move an integer register value into a floating-point register."""
        return self.emit(Instruction(Opcode.I2F, dest=dest, srcs=(src,)))

    def f2i(self, dest: ArchReg, src: ArchReg) -> "ProgramBuilder":
        """Move a floating-point register value into an integer register."""
        return self.emit(Instruction(Opcode.F2I, dest=dest, srcs=(src,)))

    # -- memory -------------------------------------------------------------------

    def load(self, dest: ArchReg, base: ArchReg | None = None, offset: int = 0,
             index: ArchReg | None = None, scale: int = 1, size: int = 8) -> "ProgramBuilder":
        """Integer load: ``dest = mem[base + index*scale + offset]``."""
        mem = MemOperand(base=base, index=index, scale=scale, offset=offset, size=size)
        return self.emit(Instruction(Opcode.LOAD, dest=dest, mem=mem))

    def store(self, src: ArchReg, base: ArchReg | None = None, offset: int = 0,
              index: ArchReg | None = None, scale: int = 1, size: int = 8) -> "ProgramBuilder":
        """Integer store: ``mem[base + index*scale + offset] = src``."""
        mem = MemOperand(base=base, index=index, scale=scale, offset=offset, size=size)
        return self.emit(Instruction(Opcode.STORE, srcs=(src,), mem=mem))

    def fload(self, dest: ArchReg, base: ArchReg | None = None, offset: int = 0,
              index: ArchReg | None = None, scale: int = 1, size: int = 8) -> "ProgramBuilder":
        """Floating-point load."""
        mem = MemOperand(base=base, index=index, scale=scale, offset=offset, size=size)
        return self.emit(Instruction(Opcode.FLOAD, dest=dest, mem=mem))

    def fstore(self, src: ArchReg, base: ArchReg | None = None, offset: int = 0,
               index: ArchReg | None = None, scale: int = 1, size: int = 8) -> "ProgramBuilder":
        """Floating-point store."""
        mem = MemOperand(base=base, index=index, scale=scale, offset=offset, size=size)
        return self.emit(Instruction(Opcode.FSTORE, srcs=(src,), mem=mem))

    # -- control flow -------------------------------------------------------------

    def bnz(self, src: ArchReg, target: str) -> "ProgramBuilder":
        """Branch to ``target`` when ``src != 0``."""
        return self.emit(Instruction(Opcode.BNZ, srcs=(src,), target=target))

    def bz(self, src: ArchReg, target: str) -> "ProgramBuilder":
        """Branch to ``target`` when ``src == 0``."""
        return self.emit(Instruction(Opcode.BZ, srcs=(src,), target=target))

    def jmp(self, target: str) -> "ProgramBuilder":
        """Unconditional jump."""
        return self.emit(Instruction(Opcode.JMP, target=target))

    def call(self, target: str) -> "ProgramBuilder":
        """Direct call (return address is kept on the executor's shadow stack)."""
        return self.emit(Instruction(Opcode.CALL, target=target))

    def ret(self) -> "ProgramBuilder":
        """Return to the most recent unmatched call."""
        return self.emit(Instruction(Opcode.RET))

    def nop(self) -> "ProgramBuilder":
        """No operation."""
        return self.emit(Instruction(Opcode.NOP))

    def halt(self) -> "ProgramBuilder":
        """Terminate the program."""
        return self.emit(Instruction(Opcode.HALT))
