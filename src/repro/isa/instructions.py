"""Static micro-op representation.

A :class:`Instruction` is the static form of a micro-op inside a
:class:`~repro.isa.program.Program`.  The functional executor turns static
instructions into dynamic micro-ops (with concrete values and addresses)
that the timing model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import (
    Opcode,
    is_branch,
    is_conditional_branch,
    is_load,
    is_move,
    is_store,
    op_class,
)
from repro.isa.registers import ArchReg, RegClass


@dataclass(frozen=True)
class MemOperand:
    """A memory operand of the form ``base + index * scale + offset``.

    ``base`` and ``index`` are integer architectural registers; either may be
    ``None``.  ``size`` is the access size in bytes (4 or 8).
    """

    base: ArchReg | None = None
    index: ArchReg | None = None
    scale: int = 1
    offset: int = 0
    size: int = 8

    def __post_init__(self) -> None:
        if self.size not in (4, 8):
            raise ValueError(f"memory access size must be 4 or 8 bytes, got {self.size}")
        if self.base is not None and self.base.reg_class is not RegClass.INT:
            raise ValueError("memory base register must be an integer register")
        if self.index is not None and self.index.reg_class is not RegClass.INT:
            raise ValueError("memory index register must be an integer register")
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"memory scale must be 1, 2, 4 or 8, got {self.scale}")

    def registers(self) -> tuple[ArchReg, ...]:
        """The architectural registers this operand reads."""
        regs = []
        if self.base is not None:
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        return tuple(regs)


@dataclass(frozen=True)
class Instruction:
    """A static micro-op.

    Attributes
    ----------
    opcode:
        The operation.
    dest:
        Destination architectural register, if any.
    srcs:
        Source architectural registers (register operands only; memory
        address registers live in ``mem``).
    imm:
        Immediate operand for immediate-form ALU ops and ``MOVI``.
    width:
        Operand width in bits for register-to-register moves (64, 32, 16, 8).
        The Intel move-elimination eligibility rules of Section 2.1 depend on
        this field.
    src_high8:
        ``True`` when an 8-bit move reads the *high* byte of a 16-bit
        register (``AH``-like); such moves can never be eliminated.
    mem:
        Memory operand for loads and stores.
    target:
        Branch/jump/call target label.
    label:
        Optional label naming this instruction (branch targets).
    """

    opcode: Opcode
    dest: ArchReg | None = None
    srcs: tuple[ArchReg, ...] = ()
    imm: int = 0
    width: int = 64
    src_high8: bool = False
    mem: MemOperand | None = None
    target: str | None = None
    label: str | None = None
    comment: str = ""

    def __post_init__(self) -> None:
        if self.width not in (64, 32, 16, 8):
            raise ValueError(f"register width must be 64, 32, 16 or 8 bits, got {self.width}")
        if (is_load(self.opcode) or is_store(self.opcode)) and self.mem is None:
            raise ValueError(f"{self.opcode.value} requires a memory operand")
        if is_branch(self.opcode) and self.opcode is not Opcode.RET and self.target is None:
            raise ValueError(f"{self.opcode.value} requires a target label")

    # -- classification helpers -------------------------------------------------

    @property
    def op_class(self):
        """Functional-unit class of the micro-op."""
        return op_class(self.opcode)

    @property
    def is_load(self) -> bool:
        """``True`` for load micro-ops."""
        return is_load(self.opcode)

    @property
    def is_store(self) -> bool:
        """``True`` for store micro-ops."""
        return is_store(self.opcode)

    @property
    def is_branch(self) -> bool:
        """``True`` for control-flow micro-ops."""
        return is_branch(self.opcode)

    @property
    def is_conditional_branch(self) -> bool:
        """``True`` for conditional branches."""
        return is_conditional_branch(self.opcode)

    @property
    def is_move(self) -> bool:
        """``True`` for register-to-register moves (ME candidates)."""
        return is_move(self.opcode)

    def source_registers(self) -> tuple[ArchReg, ...]:
        """All architectural registers read by the micro-op.

        This includes register sources, memory address registers and, for
        stores, the data register.  Partial-width (16/8-bit) register moves
        are *merge* micro-ops in x86_64 terms: they also read their old
        destination, which is exactly why they cannot be move-eliminated
        (Section 2.1 of the paper).
        """
        regs: list[ArchReg] = list(self.srcs)
        if self.opcode is Opcode.MOV and self.width in (16, 8) and self.dest is not None:
            regs.append(self.dest)
        if self.mem is not None:
            regs.extend(self.mem.registers())
        return tuple(regs)

    def __str__(self) -> str:
        parts = [self.opcode.value]
        if self.dest is not None:
            parts.append(self.dest.name)
        parts.extend(src.name for src in self.srcs)
        if self.mem is not None:
            base = self.mem.base.name if self.mem.base else ""
            parts.append(f"[{base}+{self.mem.offset}]")
        if self.opcode in (Opcode.MOVI, Opcode.IADDI, Opcode.IANDI, Opcode.ISHLI, Opcode.ISHRI):
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"-> {self.target}")
        text = " ".join(parts)
        if self.label:
            text = f"{self.label}: {text}"
        return text
