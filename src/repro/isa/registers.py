"""Architectural registers of the synthetic micro-op ISA.

The register file mirrors x86_64's split between 16 general purpose integer
registers and 16 SIMD/floating-point registers.  The paper's checkpoint
storage comparison ("saving the x86_64 Rename Map requires at least 256 bits:
(16 GPRs + 16 SIMD registers) x 8-bit identifiers", Section 4.3.3) relies on
exactly these counts, so the reproduction keeps them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

NUM_INT_REGS = 16
NUM_FP_REGS = 16


class RegClass(enum.Enum):
    """Architectural register class."""

    INT = "int"
    FP = "fp"


@dataclass(frozen=True, order=True)
class ArchReg:
    """An architectural register: a class plus an index within the class."""

    reg_class: RegClass
    index: int

    def __post_init__(self) -> None:
        limit = NUM_INT_REGS if self.reg_class is RegClass.INT else NUM_FP_REGS
        if not 0 <= self.index < limit:
            raise ValueError(
                f"{self.reg_class.value} register index {self.index} out of range [0, {limit})"
            )

    @property
    def flat_index(self) -> int:
        """Index in the flattened architectural register space (INT first)."""
        if self.reg_class is RegClass.INT:
            return self.index
        return NUM_INT_REGS + self.index

    @property
    def name(self) -> str:
        """A readable register name (``r3``, ``f7``)."""
        prefix = "r" if self.reg_class is RegClass.INT else "f"
        return f"{prefix}{self.index}"

    def __repr__(self) -> str:
        return self.name


def int_reg(index: int) -> ArchReg:
    """Return the integer architectural register with the given index."""
    return ArchReg(RegClass.INT, index)


def fp_reg(index: int) -> ArchReg:
    """Return the floating-point architectural register with the given index."""
    return ArchReg(RegClass.FP, index)


#: Total number of architectural registers across both classes.
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

#: All integer architectural registers, in index order.
INT_REGS = tuple(int_reg(i) for i in range(NUM_INT_REGS))

#: All floating-point architectural registers, in index order.
FP_REGS = tuple(fp_reg(i) for i in range(NUM_FP_REGS))

#: All architectural registers (integer first, then floating point).
ALL_REGS = INT_REGS + FP_REGS
