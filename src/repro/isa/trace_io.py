"""External trace import/export (ChampSim/gem5-style instruction records).

Lets the simulator consume traces produced *outside* the functional
executor -- recorded on another machine, captured from a different
front end, or exported from a previous run -- and lets recorded traces be
shipped as plain files.

The container is JSON Lines (optionally gzip-compressed when the path ends
in ``.gz``): a header object followed by one record per dynamic micro-op,
in program order.  Like a gem5/ChampSim instruction trace, each record is a
self-contained instruction descriptor: pc, opcode, register operands,
result value, memory address/size/store-value and resolved branch
behaviour.  Unlike raw ChampSim records the opcode vocabulary is this
simulator's micro-op ISA; converting an external trace means mapping each
foreign record onto these fields.

Record schema (short keys keep multi-MB traces small)::

    header: {"format": "repro-uop-trace", "version": 1, "name": ...,
             "ops": N}
    op:     {"q": seq, "p": pc, "x": static_index, "o": opcode,
             "d": dest or null, "s": [srcs...], "w": width, "h": high8 0/1,
             "i": imm, "v": result, "a": mem_addr, "z": mem_size,
             "sv": store_value, "n": next_pc, "t": taken 0/1, "g": target_pc}

``static_index`` is preserved exactly: the pipeline's dispatch cache is
keyed by it, so all records sharing a ``static_index`` must decode
identically (true for any trace this module exported).
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path

from repro.isa.executor import DynamicOp, Trace
from repro.isa.opcodes import Opcode, op_class
from repro.isa.registers import ArchReg, RegClass

__all__ = ["TraceFormatError", "export_trace", "import_trace"]

FORMAT_NAME = "repro-uop-trace"
FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """Raised when a trace file does not match the expected schema."""


def _reg_name(reg: ArchReg | None) -> str | None:
    return None if reg is None else reg.name


def _parse_reg(name: str | None, where: str) -> ArchReg | None:
    if name is None:
        return None
    try:
        reg_class = {"r": RegClass.INT, "f": RegClass.FP}[name[0]]
        return ArchReg(reg_class, int(name[1:]))
    except (KeyError, ValueError, IndexError):
        raise TraceFormatError(f"{where}: bad register name {name!r}") from None


def _open_write(path: Path):
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "wb"), encoding="utf-8")
    return path.open("w", encoding="utf-8")


def _open_read(path: Path):
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return path.open("r", encoding="utf-8")


def export_trace(trace: Trace, path: str | Path) -> int:
    """Write ``trace`` to ``path`` in the JSONL trace format.

    Returns the number of micro-op records written.
    """
    path = Path(path)
    with _open_write(path) as stream:
        header = {"format": FORMAT_NAME, "version": FORMAT_VERSION,
                  "name": trace.name, "ops": len(trace.ops)}
        stream.write(json.dumps(header) + "\n")
        for op in trace.ops:
            record = {
                "q": op.seq, "p": op.pc, "x": op.static_index,
                "o": op.opcode.value,
                "d": _reg_name(op.dest),
                "s": [reg.name for reg in op.srcs],
                "w": op.width, "h": int(op.src_high8), "i": op.imm,
                "v": op.result, "a": op.mem_addr, "z": op.mem_size,
                "sv": op.store_value, "n": op.next_pc, "t": int(op.taken),
                "g": op.target_pc,
            }
            stream.write(json.dumps(record) + "\n")
    return len(trace.ops)


def import_trace(path: str | Path, max_ops: int | None = None,
                 name: str | None = None) -> Trace:
    """Read a trace file back into a :class:`Trace`.

    ``max_ops`` truncates the record stream (like a shorter functional run);
    ``name`` overrides the recorded trace name.  The returned trace carries
    no :class:`~repro.isa.program.Program` -- imported traces replay through
    the full detailed path but cannot be functionally re-executed, so they
    do not support sampled simulation.
    """
    path = Path(path)
    try:
        stream = _open_read(path)
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace {path}: {exc}") from exc
    with stream:
        header_line = stream.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{path}: header is not JSON") from exc
        if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
            raise TraceFormatError(
                f"{path}: not a {FORMAT_NAME} file (header {header_line[:60]!r})")
        if header.get("version") != FORMAT_VERSION:
            raise TraceFormatError(
                f"{path}: unsupported trace version {header.get('version')!r} "
                f"(expected {FORMAT_VERSION})")
        trace = Trace(name=name or header.get("name") or path.stem)
        ops = trace.ops
        for lineno, line in enumerate(stream, start=2):
            if max_ops is not None and len(ops) >= max_ops:
                break
            if not line.strip():
                continue
            where = f"{path}:{lineno}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"{where}: bad JSON record") from exc
            try:
                opcode = Opcode(record["o"])
            except (KeyError, ValueError):
                raise TraceFormatError(
                    f"{where}: unknown opcode {record.get('o')!r}") from None
            try:
                op = DynamicOp(
                    seq=len(ops),
                    pc=record["p"],
                    static_index=record["x"],
                    opcode=opcode,
                    op_class=op_class(opcode),
                    dest=_parse_reg(record.get("d"), where),
                    srcs=tuple(_parse_reg(reg, where)
                               for reg in record.get("s", ())),
                    width=record.get("w", 64),
                    src_high8=bool(record.get("h", 0)),
                    imm=record.get("i", 0),
                    result=record.get("v"),
                    mem_addr=record.get("a"),
                    mem_size=record.get("z", 8),
                    store_value=record.get("sv"),
                    next_pc=record.get("n", 0),
                    taken=bool(record.get("t", 0)),
                    target_pc=record.get("g"),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise TraceFormatError(f"{where}: bad record ({exc})") from exc
            ops.append(op)
    expected = header.get("ops")
    if max_ops is None and isinstance(expected, int) and expected != len(ops):
        raise TraceFormatError(
            f"{path}: header promises {expected} ops, file has {len(ops)}")
    return trace
