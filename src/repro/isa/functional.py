"""The functional fast-forward core of the two-speed simulation engine.

:class:`FunctionalCore` retires instructions *architecturally* -- registers,
memory, control flow -- with no pipeline model and, crucially, without
materialising :class:`~repro.isa.executor.DynamicOp` objects.  It is the
fast half of the SMARTS-style sampled simulation driver
(:mod:`repro.pipeline.sampling`): long stretches of a workload are
fast-forwarded here at hundreds of thousands to millions of micro-ops per
second, and only the periodic detailed windows are *recorded* into a trace
that the cycle-level core replays.

Three execution paths share one set of semantics:

* :meth:`fast_forward` runs per-static-instruction *compiled closures*.
  Each closure is built once, on first visit, from the decoded-field cache
  (:func:`repro.isa.executor._precompute_static`, introduced for the trace
  generator's hot path) and captures concrete register-file slots, memory
  accessors and branch target indices.  The ALU value semantics come from
  the raw lambda tables exported by :mod:`repro.isa.executor`
  (``RAW_BINARY_OPS`` et al.), so the compiled path can never diverge from
  the handler path.
* :meth:`record` runs the ordinary handler loop (the same one
  :meth:`Executor.run` uses) from the current architectural state,
  producing a window :class:`~repro.isa.executor.Trace` whose micro-ops
  are field-identical to the ones an uninterrupted :class:`Executor` run
  would have produced at the same position (with window-local sequence
  numbers).
* :meth:`to_snapshot` / :meth:`load_snapshot` / :meth:`from_snapshot`
  serialise the full architectural state (registers, byte-granular memory,
  call stack, program position) so execution can be suspended and resumed
  bit-exactly -- the property tests pin ``snapshot -> restore -> resume``
  against an uninterrupted run via :meth:`Executor.state_digest`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.executor import (
    DynamicOp,
    ExecutionLimitExceeded,
    Executor,
    RAW_BINARY_OPS,
    RAW_IMMEDIATE_OPS,
    RAW_UNARY_OPS,
    Trace,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import ArchReg, RegClass

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class ArchSnapshot:
    """A complete, immutable architectural state of a :class:`FunctionalCore`.

    ``memory`` is the byte-granular image as sorted ``(address, byte)``
    pairs, which makes the snapshot deterministic (and hashable) regardless
    of the insertion order of the live memory dictionary.
    """

    program_name: str
    index: int
    retired: int
    halted: bool
    int_regs: tuple[int, ...]
    fp_regs: tuple[int, ...]
    memory: tuple[tuple[int, int], ...]
    call_stack: tuple[int, ...]


class FunctionalCore(Executor):
    """Architectural executor with fast-forward, windowed recording and snapshots.

    Unlike :class:`Executor` (one-shot ``run``), a ``FunctionalCore`` keeps
    its position in the program between calls: ``fast_forward`` and
    ``record`` can be interleaved freely, which is exactly what the sampled
    simulation driver does.
    """

    def __init__(self, program: Program,
                 initial_regs: dict[ArchReg, int] | None = None,
                 initial_memory: dict[int, int] | None = None,
                 word_image: bool = True, warmer=None) -> None:
        """``warmer`` optionally observes the fast-forwarded stream.

        When given, the compiled closures additionally call the warmer's
        ``load(pc, addr)`` / ``store(pc, addr)`` / ``cond(pc, taken,
        target_pc)`` / ``jump(pc, target_pc)`` / ``call(pc, target_pc)`` /
        ``ret(pc)`` hooks, which the sampled simulation driver uses for
        SMARTS-style functional warming of caches, BTB, RAS and the branch
        history registers during the gaps between detailed windows.
        Warming never changes architectural results, only micro-
        architectural training state.
        """
        super().__init__(program, initial_regs=initial_regs,
                         initial_memory=initial_memory, word_image=word_image)
        self._index = 0
        self.retired = 0
        self.halted = False
        self._warmer = warmer
        # Compiled fast-forward steps, built lazily per static instruction.
        self._compiled: list = [None] * len(program.instructions)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_image(cls, image, warmer=None) -> "FunctionalCore":
        """Build a core from a :class:`~repro.workloads.base.WorkloadImage`."""
        return cls(image.program, initial_regs=image.initial_regs,
                   initial_memory=image.initial_memory, warmer=warmer)

    # -- snapshots ---------------------------------------------------------------

    def to_snapshot(self) -> ArchSnapshot:
        """Serialise the complete architectural state."""
        return ArchSnapshot(
            program_name=self.program.name,
            index=self._index,
            retired=self.retired,
            halted=self.halted,
            int_regs=tuple(self._int_regs),
            fp_regs=tuple(self._fp_regs),
            memory=tuple(sorted(self._memory.items())),
            call_stack=tuple(self._call_stack),
        )

    def load_snapshot(self, snapshot: ArchSnapshot) -> None:
        """Overwrite the architectural state with ``snapshot`` (in place).

        The register lists and the memory dictionary are mutated rather
        than rebound so that already-compiled fast-forward closures (which
        capture those objects) keep seeing current state.
        """
        if snapshot.program_name != self.program.name:
            raise ValueError(
                f"snapshot was taken on program {snapshot.program_name!r}, "
                f"cannot restore into {self.program.name!r}")
        if not 0 <= snapshot.index <= len(self.program.instructions):
            raise ValueError(f"snapshot index {snapshot.index} out of range")
        self._int_regs[:] = snapshot.int_regs
        self._fp_regs[:] = snapshot.fp_regs
        self._memory.clear()
        self._memory.update(snapshot.memory)
        self._call_stack[:] = snapshot.call_stack
        self._index = snapshot.index
        self.retired = snapshot.retired
        self.halted = snapshot.halted

    @classmethod
    def from_snapshot(cls, program: Program, snapshot: ArchSnapshot) -> "FunctionalCore":
        """Resume a suspended execution: a fresh core holding ``snapshot``'s state."""
        core = cls(program)
        core.load_snapshot(snapshot)
        return core

    # -- fast-forward ------------------------------------------------------------

    def fast_forward(self, count: int) -> int:
        """Retire up to ``count`` micro-ops architecturally; returns the number retired.

        Stops early at ``HALT``.  Falling off the end of the program raises
        :class:`ExecutionLimitExceeded`, exactly like :meth:`Executor.run`.
        """
        if count <= 0 or self.halted:
            return 0
        compiled = self._compiled
        statics = self._statics
        limit = len(statics)
        index = self._index
        retired = 0
        compile_step = self._compile_step
        while retired < count:
            if index >= limit:
                # Keep the position and retire counters consistent with the
                # architectural state already mutated by this call.
                self._index = index
                self.retired += retired
                raise ExecutionLimitExceeded(
                    f"program {self.program.name!r} ran past its last instruction; "
                    "add an explicit halt() or loop")
            step = compiled[index]
            if step is None:
                if statics[index] is None:  # HALT
                    self.halted = True
                    break
                step = compile_step(index)
                compiled[index] = step
            index = step()
            retired += 1
        self._index = index
        self.retired += retired
        return retired

    # -- windowed recording ------------------------------------------------------

    def record(self, count: int, name: str | None = None) -> Trace:
        """Retire up to ``count`` micro-ops, recording them as a window trace.

        This is the handler-based loop of :meth:`Executor.run`, started at
        the current position.  Sequence numbers are window-local (they
        start at 0) because the cycle-level core indexes ``trace.ops`` by
        ``seq``; :attr:`retired` keeps the global position.
        """
        trace = Trace(name=name or f"{self.program.name}@{self.retired}",
                      program=self.program)
        if count <= 0 or self.halted:
            return trace
        index = self._index
        instructions = self.program.instructions
        statics = self._statics
        limit = len(instructions)
        base_pc = self.program.BASE_PC
        bytes_per_op = self.program.BYTES_PER_OP
        ops = trace.ops
        append = ops.append
        write_reg = self._write_reg
        while len(ops) < count:
            if index >= limit:
                self._index = index
                self.retired += len(ops)
                raise ExecutionLimitExceeded(
                    f"program {self.program.name!r} ran past its last instruction; "
                    "add an explicit halt() or loop")
            static = statics[index]
            if static is None:  # HALT
                self.halted = True
                break
            pc, opcode, op_cls, dest, srcs, width, src_high8, imm, derived, handler = static
            instruction = instructions[index]
            result, mem_addr, mem_size, store_value, taken, target_pc, next_index = \
                handler(self, instruction, index)
            if dest is not None and result is not None:
                write_reg(dest, result)
            next_pc = (base_pc + next_index * bytes_per_op) if next_index < limit else pc + 4
            append(DynamicOp(
                len(ops), pc, index, opcode, op_cls, dest, srcs, width, src_high8,
                imm, result, mem_addr, mem_size, store_value, next_pc, taken,
                target_pc, *derived,
            ))
            index = next_index
        self._index = index
        self.retired += len(ops)
        return trace

    # -- the fast-forward compiler -------------------------------------------------

    def _reg_slot(self, reg: ArchReg) -> tuple[list[int], int]:
        """The (register file list, index) pair a closure reads or writes."""
        if reg.reg_class is RegClass.INT:
            return self._int_regs, reg.index
        return self._fp_regs, reg.index

    def _compile_address(self, instruction):
        """Compile the effective-address computation of a memory micro-op."""
        mem = instruction.mem
        offset = mem.offset
        scale = mem.scale
        if mem.base is not None and mem.index is not None:
            rb, ib = self._reg_slot(mem.base)
            ri, ii = self._reg_slot(mem.index)
            return lambda: (offset + rb[ib] + ri[ii] * scale) & _MASK64
        if mem.base is not None:
            rb, ib = self._reg_slot(mem.base)
            return lambda: (offset + rb[ib]) & _MASK64
        if mem.index is not None:
            ri, ii = self._reg_slot(mem.index)
            return lambda: (offset + ri[ii] * scale) & _MASK64
        return lambda: offset & _MASK64

    def _compile_step(self, index: int):
        """Build the compiled fast-forward closure for one static instruction.

        Every closure applies the instruction's full architectural effect
        and returns the next static index.  The value semantics are the raw
        lambdas shared with the handler table, so ``fast_forward`` and
        ``record`` can never disagree.
        """
        instruction = self.program.instructions[index]
        opcode = instruction.opcode
        nxt = index + 1

        fn = RAW_BINARY_OPS.get(opcode)
        if fn is not None:
            rd, di = self._reg_slot(instruction.dest)
            ra, ai = self._reg_slot(instruction.srcs[0])
            rb, bi = self._reg_slot(instruction.srcs[1])

            def step_binary():
                rd[di] = fn(ra[ai], rb[bi]) & _MASK64
                return nxt
            return step_binary

        fn = RAW_IMMEDIATE_OPS.get(opcode)
        if fn is not None:
            rd, di = self._reg_slot(instruction.dest)
            ra, ai = self._reg_slot(instruction.srcs[0])
            imm = instruction.imm

            def step_immediate():
                rd[di] = fn(ra[ai], imm) & _MASK64
                return nxt
            return step_immediate

        fn = RAW_UNARY_OPS.get(opcode)
        if fn is not None:
            rd, di = self._reg_slot(instruction.dest)
            ra, ai = self._reg_slot(instruction.srcs[0])

            def step_unary():
                rd[di] = fn(ra[ai]) & _MASK64
                return nxt
            return step_unary

        if opcode is Opcode.MOVI:
            rd, di = self._reg_slot(instruction.dest)
            value = instruction.imm & _MASK64

            def step_movi():
                rd[di] = value
                return nxt
            return step_movi

        if opcode in (Opcode.MOV, Opcode.FMOV):
            rd, di = self._reg_slot(instruction.dest)
            ra, ai = self._reg_slot(instruction.srcs[0])
            width = instruction.width
            if opcode is Opcode.FMOV or width == 64:
                def step_mov64():
                    rd[di] = ra[ai]
                    return nxt
                return step_mov64
            if width == 32:
                def step_mov32():
                    rd[di] = ra[ai] & 0xFFFFFFFF
                    return nxt
                return step_mov32
            mask = 0xFFFF if width == 16 else 0xFF

            def step_mov_merge():
                rd[di] = (rd[di] & ~mask) & _MASK64 | (ra[ai] & mask)
                return nxt
            return step_mov_merge

        if opcode is Opcode.MOVZX8:
            rd, di = self._reg_slot(instruction.dest)
            ra, ai = self._reg_slot(instruction.srcs[0])
            if instruction.src_high8:
                def step_movzx_high():
                    rd[di] = (ra[ai] >> 8) & 0xFF
                    return nxt
                return step_movzx_high

            def step_movzx_low():
                rd[di] = ra[ai] & 0xFF
                return nxt
            return step_movzx_low

        if opcode in (Opcode.LOAD, Opcode.FLOAD):
            rd, di = self._reg_slot(instruction.dest)
            address = self._compile_address(instruction)
            size = instruction.mem.size
            get = self._memory.get
            if size == 8:
                def step_load():
                    a = address()
                    rd[di] = (get(a, 0) | get(a + 1, 0) << 8 | get(a + 2, 0) << 16
                              | get(a + 3, 0) << 24 | get(a + 4, 0) << 32
                              | get(a + 5, 0) << 40 | get(a + 6, 0) << 48
                              | get(a + 7, 0) << 56)
                    return nxt
            else:
                def step_load():
                    a = address()
                    rd[di] = (get(a, 0) | get(a + 1, 0) << 8 | get(a + 2, 0) << 16
                              | get(a + 3, 0) << 24)
                    return nxt
            if self._warmer is None:
                return step_load
            # Warmed variant: one address computation feeds both the warm
            # hook and the (re-inlined) load body.
            warm_load = self._warmer.load
            pc = self.program.pc_of(index)
            if size == 8:
                def step_load_warmed():
                    a = address()
                    warm_load(pc, a)
                    rd[di] = (get(a, 0) | get(a + 1, 0) << 8 | get(a + 2, 0) << 16
                              | get(a + 3, 0) << 24 | get(a + 4, 0) << 32
                              | get(a + 5, 0) << 40 | get(a + 6, 0) << 48
                              | get(a + 7, 0) << 56)
                    return nxt
            else:
                def step_load_warmed():
                    a = address()
                    warm_load(pc, a)
                    rd[di] = (get(a, 0) | get(a + 1, 0) << 8 | get(a + 2, 0) << 16
                              | get(a + 3, 0) << 24)
                    return nxt
            return step_load_warmed

        if opcode in (Opcode.STORE, Opcode.FSTORE):
            ra, ai = self._reg_slot(instruction.srcs[0])
            address = self._compile_address(instruction)
            size = instruction.mem.size
            memory = self._memory
            if size == 8:
                def step_store():
                    a = address()
                    v = ra[ai]
                    memory[a] = v & 0xFF
                    memory[a + 1] = (v >> 8) & 0xFF
                    memory[a + 2] = (v >> 16) & 0xFF
                    memory[a + 3] = (v >> 24) & 0xFF
                    memory[a + 4] = (v >> 32) & 0xFF
                    memory[a + 5] = (v >> 40) & 0xFF
                    memory[a + 6] = (v >> 48) & 0xFF
                    memory[a + 7] = (v >> 56) & 0xFF
                    return nxt
            else:
                def step_store():
                    a = address()
                    v = ra[ai] & 0xFFFFFFFF
                    memory[a] = v & 0xFF
                    memory[a + 1] = (v >> 8) & 0xFF
                    memory[a + 2] = (v >> 16) & 0xFF
                    memory[a + 3] = (v >> 24) & 0xFF
                    return nxt
            if self._warmer is None:
                return step_store
            warm_store = self._warmer.store
            pc = self.program.pc_of(index)
            if size == 8:
                def step_store_warmed():
                    a = address()
                    warm_store(pc, a)
                    v = ra[ai]
                    memory[a] = v & 0xFF
                    memory[a + 1] = (v >> 8) & 0xFF
                    memory[a + 2] = (v >> 16) & 0xFF
                    memory[a + 3] = (v >> 24) & 0xFF
                    memory[a + 4] = (v >> 32) & 0xFF
                    memory[a + 5] = (v >> 40) & 0xFF
                    memory[a + 6] = (v >> 48) & 0xFF
                    memory[a + 7] = (v >> 56) & 0xFF
                    return nxt
            else:
                def step_store_warmed():
                    a = address()
                    warm_store(pc, a)
                    v = ra[ai] & 0xFFFFFFFF
                    memory[a] = v & 0xFF
                    memory[a + 1] = (v >> 8) & 0xFF
                    memory[a + 2] = (v >> 16) & 0xFF
                    memory[a + 3] = (v >> 24) & 0xFF
                    return nxt
            return step_store_warmed

        if opcode in (Opcode.BNZ, Opcode.BZ):
            ra, ai = self._reg_slot(instruction.srcs[0])
            target = self.program.target_index(instruction.target)
            want_nonzero = opcode is Opcode.BNZ
            if self._warmer is None:
                if want_nonzero:
                    def step_bnz():
                        return target if ra[ai] != 0 else nxt
                    return step_bnz

                def step_bz():
                    return target if ra[ai] == 0 else nxt
                return step_bz
            warm_cond = self._warmer.cond
            pc = self.program.pc_of(index)
            target_pc = self.program.pc_of(target)

            def step_cond_warmed():
                taken = (ra[ai] != 0) == want_nonzero
                warm_cond(pc, taken, target_pc)
                return target if taken else nxt
            return step_cond_warmed

        if opcode is Opcode.JMP:
            target = self.program.target_index(instruction.target)
            if self._warmer is None:
                return lambda: target
            warm_jump = self._warmer.jump
            pc = self.program.pc_of(index)
            target_pc = self.program.pc_of(target)

            def step_jmp_warmed():
                warm_jump(pc, target_pc)
                return target
            return step_jmp_warmed

        if opcode is Opcode.CALL:
            target = self.program.target_index(instruction.target)
            stack = self._call_stack
            if self._warmer is None:
                def step_call():
                    stack.append(nxt)
                    return target
                return step_call
            warm_call = self._warmer.call
            pc = self.program.pc_of(index)
            target_pc = self.program.pc_of(target)

            def step_call_warmed():
                warm_call(pc, target_pc)
                stack.append(nxt)
                return target
            return step_call_warmed

        if opcode is Opcode.RET:
            stack = self._call_stack
            name = self.program.name
            if self._warmer is None:
                def step_ret():
                    if not stack:
                        raise ExecutionLimitExceeded(
                            f"return without a matching call in program {name!r}")
                    return stack.pop()
                return step_ret
            warm_ret = self._warmer.ret
            pc = self.program.pc_of(index)

            def step_ret_warmed():
                if not stack:
                    raise ExecutionLimitExceeded(
                        f"return without a matching call in program {name!r}")
                warm_ret(pc)
                return stack.pop()
            return step_ret_warmed

        if opcode is Opcode.NOP:
            return lambda: nxt

        raise ValueError(f"no fast-forward compiler for opcode {opcode!r}")
