"""Functional execution of programs into dynamic micro-op traces.

The reproduction uses a *trace-driven* timing model: a program is first
executed functionally by :class:`Executor`, which records every dynamic
micro-op together with its concrete result value, memory address, memory
value and branch outcome.  The cycle-level core model then replays this
trace, so that

* move elimination can be checked against real register values,
* speculative memory bypassing can be *validated* exactly as in the paper
  (compare the bypassed register's value with the value actually loaded),
* the Data Dependency Table sees real virtual addresses, and
* the branch predictor sees the real taken/not-taken stream.

All register values are 64-bit unsigned integers.  Floating-point micro-ops
operate on the same 64-bit domain with distinct mixing functions; the timing
model only cares about dependencies and value equality, not IEEE semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction
from repro.isa.opcodes import OpClass, Opcode, op_class
from repro.isa.program import Program
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS, ArchReg, RegClass

_MASK64 = (1 << 64) - 1


class ExecutionLimitExceeded(RuntimeError):
    """Raised when a program does not halt within the configured budgets."""


@dataclass(frozen=True)
class DynamicOp:
    """One dynamic micro-op of a trace.

    The fields capture everything the timing model needs: operands for
    dependence tracking, the result value for sharing validation, the memory
    address/size for the data cache, store queue and DDT, and the resolved
    branch behaviour for the front end.
    """

    seq: int
    pc: int
    static_index: int
    opcode: Opcode
    op_class: OpClass
    dest: ArchReg | None
    srcs: tuple[ArchReg, ...]
    width: int = 64
    src_high8: bool = False
    imm: int = 0
    result: int | None = None
    mem_addr: int | None = None
    mem_size: int = 8
    store_value: int | None = None
    next_pc: int = 0
    taken: bool = False
    target_pc: int | None = None

    @property
    def is_load(self) -> bool:
        """``True`` for load micro-ops."""
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        """``True`` for store micro-ops."""
        return self.op_class is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        """``True`` for control-flow micro-ops."""
        return self.op_class is OpClass.BRANCH

    @property
    def is_conditional_branch(self) -> bool:
        """``True`` for conditional branches."""
        return self.opcode in (Opcode.BNZ, Opcode.BZ)

    @property
    def is_call(self) -> bool:
        """``True`` for call micro-ops."""
        return self.opcode is Opcode.CALL

    @property
    def is_return(self) -> bool:
        """``True`` for return micro-ops."""
        return self.opcode is Opcode.RET

    @property
    def is_move(self) -> bool:
        """``True`` for register-to-register moves."""
        return self.opcode in (Opcode.MOV, Opcode.MOVZX8, Opcode.FMOV)

    @property
    def writes_register(self) -> bool:
        """``True`` when the micro-op produces an architectural register value."""
        return self.dest is not None

    def __repr__(self) -> str:
        dest = self.dest.name if self.dest else "-"
        return f"DynamicOp(seq={self.seq}, pc={self.pc:#x}, {self.opcode.value}, dest={dest})"


@dataclass
class Trace:
    """A fully resolved dynamic micro-op stream for one workload."""

    name: str
    ops: list[DynamicOp] = field(default_factory=list)
    program: Program | None = None

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __getitem__(self, index: int) -> DynamicOp:
        return self.ops[index]

    def count(self, predicate) -> int:
        """Number of dynamic micro-ops satisfying ``predicate``."""
        return sum(1 for op in self.ops if predicate(op))

    def mix(self) -> dict[str, int]:
        """Instruction mix summary (by :class:`OpClass` name)."""
        counts: dict[str, int] = {}
        for op in self.ops:
            counts[op.op_class.value] = counts.get(op.op_class.value, 0) + 1
        return counts


class Executor:
    """Architectural (functional) executor for :class:`~repro.isa.program.Program`.

    Parameters
    ----------
    program:
        The static program to execute.
    initial_regs:
        Optional initial values for architectural registers.
    initial_memory:
        Optional initial memory image as a mapping from byte address to byte
        value (or from aligned address to 64-bit word when ``word_image`` is
        ``True``).
    """

    def __init__(self, program: Program,
                 initial_regs: dict[ArchReg, int] | None = None,
                 initial_memory: dict[int, int] | None = None,
                 word_image: bool = True) -> None:
        program.validate()
        self.program = program
        self._int_regs = [0] * NUM_INT_REGS
        self._fp_regs = [0] * NUM_FP_REGS
        self._memory: dict[int, int] = {}
        self._call_stack: list[int] = []
        if initial_regs:
            for reg, value in initial_regs.items():
                self._write_reg(reg, value)
        if initial_memory:
            if word_image:
                for address, value in initial_memory.items():
                    self._write_memory(address, value & _MASK64, 8)
            else:
                for address, value in initial_memory.items():
                    self._memory[address] = value & 0xFF

    # -- architectural state accessors -------------------------------------------

    def read_reg(self, reg: ArchReg) -> int:
        """Return the current architectural value of ``reg``."""
        if reg.reg_class is RegClass.INT:
            return self._int_regs[reg.index]
        return self._fp_regs[reg.index]

    def _write_reg(self, reg: ArchReg, value: int) -> None:
        value &= _MASK64
        if reg.reg_class is RegClass.INT:
            self._int_regs[reg.index] = value
        else:
            self._fp_regs[reg.index] = value

    def read_memory(self, address: int, size: int = 8) -> int:
        """Read ``size`` bytes of memory (little endian, missing bytes are zero)."""
        value = 0
        for offset in range(size):
            value |= self._memory.get(address + offset, 0) << (8 * offset)
        return value

    def _write_memory(self, address: int, value: int, size: int) -> None:
        for offset in range(size):
            self._memory[address + offset] = (value >> (8 * offset)) & 0xFF

    # -- execution ----------------------------------------------------------------

    def run(self, max_ops: int = 1_000_000) -> Trace:
        """Execute the program and return its dynamic trace.

        Execution stops at ``HALT`` or after ``max_ops`` dynamic micro-ops,
        whichever comes first.  Falling off the end of the program raises
        :class:`ExecutionLimitExceeded` because workloads are expected to be
        explicit about termination.
        """
        trace = Trace(name=self.program.name, program=self.program)
        index = 0
        instructions = self.program.instructions
        while len(trace.ops) < max_ops:
            if index >= len(instructions):
                raise ExecutionLimitExceeded(
                    f"program {self.program.name!r} ran past its last instruction; "
                    "add an explicit halt() or loop"
                )
            instruction = instructions[index]
            if instruction.opcode is Opcode.HALT:
                break
            dynamic, next_index = self._step(instruction, index, len(trace.ops))
            trace.ops.append(dynamic)
            index = next_index
        return trace

    def _step(self, instruction: Instruction, index: int, seq: int) -> tuple[DynamicOp, int]:
        """Execute one static instruction, returning its dynamic form and the next index."""
        opcode = instruction.opcode
        pc = self.program.pc_of(index)
        next_index = index + 1
        result: int | None = None
        mem_addr: int | None = None
        mem_size = 8
        store_value: int | None = None
        taken = False
        target_pc: int | None = None

        if opcode in _ALU_HANDLERS:
            result = _ALU_HANDLERS[opcode](self, instruction)
        elif opcode is Opcode.MOVI:
            result = instruction.imm & _MASK64
        elif opcode in (Opcode.MOV, Opcode.FMOV):
            result = self._execute_move(instruction)
        elif opcode is Opcode.MOVZX8:
            source = self.read_reg(instruction.srcs[0])
            byte = (source >> 8) & 0xFF if instruction.src_high8 else source & 0xFF
            result = byte
        elif opcode in (Opcode.LOAD, Opcode.FLOAD):
            mem_addr, mem_size = self._effective_address(instruction)
            result = self.read_memory(mem_addr, mem_size)
        elif opcode in (Opcode.STORE, Opcode.FSTORE):
            mem_addr, mem_size = self._effective_address(instruction)
            store_value = self.read_reg(instruction.srcs[0])
            if mem_size == 4:
                store_value &= 0xFFFFFFFF
            self._write_memory(mem_addr, store_value, mem_size)
        elif opcode in (Opcode.BNZ, Opcode.BZ):
            value = self.read_reg(instruction.srcs[0])
            taken = (value != 0) if opcode is Opcode.BNZ else (value == 0)
            target_index = self.program.target_index(instruction.target)
            target_pc = self.program.pc_of(target_index)
            if taken:
                next_index = target_index
        elif opcode is Opcode.JMP:
            taken = True
            next_index = self.program.target_index(instruction.target)
            target_pc = self.program.pc_of(next_index)
        elif opcode is Opcode.CALL:
            taken = True
            self._call_stack.append(index + 1)
            next_index = self.program.target_index(instruction.target)
            target_pc = self.program.pc_of(next_index)
        elif opcode is Opcode.RET:
            taken = True
            if not self._call_stack:
                raise ExecutionLimitExceeded(
                    f"return without a matching call in program {self.program.name!r}"
                )
            next_index = self._call_stack.pop()
            target_pc = self.program.pc_of(next_index)
        elif opcode is Opcode.NOP:
            result = None
        else:  # pragma: no cover - defensive; HALT is handled by run()
            raise NotImplementedError(f"unhandled opcode {opcode}")

        if instruction.dest is not None and result is not None:
            self._write_reg(instruction.dest, result)

        dynamic = DynamicOp(
            seq=seq,
            pc=pc,
            static_index=index,
            opcode=opcode,
            op_class=op_class(opcode),
            dest=instruction.dest,
            srcs=instruction.source_registers(),
            width=instruction.width,
            src_high8=instruction.src_high8,
            imm=instruction.imm,
            result=result,
            mem_addr=mem_addr,
            mem_size=mem_size,
            store_value=store_value,
            next_pc=self.program.pc_of(next_index) if next_index < len(self.program) else pc + 4,
            taken=taken,
            target_pc=target_pc,
        )
        return dynamic, next_index

    def _execute_move(self, instruction: Instruction) -> int:
        """Register-to-register move semantics, including x86-style partial widths."""
        source = self.read_reg(instruction.srcs[0])
        if instruction.opcode is Opcode.FMOV or instruction.width == 64:
            return source
        if instruction.width == 32:
            # x86_64 zeroes the upper 32 bits on a 32-bit register move.
            return source & 0xFFFFFFFF
        destination = self.read_reg(instruction.dest)
        if instruction.width == 16:
            return (destination & ~0xFFFF) & _MASK64 | (source & 0xFFFF)
        # 8-bit move merges into the low byte of the destination.
        return (destination & ~0xFF) & _MASK64 | (source & 0xFF)

    def _effective_address(self, instruction: Instruction) -> tuple[int, int]:
        """Compute the byte address and size of a memory micro-op."""
        mem = instruction.mem
        address = mem.offset
        if mem.base is not None:
            address += self.read_reg(mem.base)
        if mem.index is not None:
            address += self.read_reg(mem.index) * mem.scale
        return address & _MASK64, mem.size


def _binary(handler):
    """Wrap a two-source integer operation handler."""

    def wrapped(executor: Executor, instruction: Instruction) -> int:
        a = executor.read_reg(instruction.srcs[0])
        b = executor.read_reg(instruction.srcs[1])
        return handler(a, b) & _MASK64

    return wrapped


def _immediate(handler):
    """Wrap a source-plus-immediate integer operation handler."""

    def wrapped(executor: Executor, instruction: Instruction) -> int:
        a = executor.read_reg(instruction.srcs[0])
        return handler(a, instruction.imm) & _MASK64

    return wrapped


def _unary(handler):
    """Wrap a single-source operation handler."""

    def wrapped(executor: Executor, instruction: Instruction) -> int:
        a = executor.read_reg(instruction.srcs[0])
        return handler(a) & _MASK64

    return wrapped


_ALU_HANDLERS = {
    Opcode.IADD: _binary(lambda a, b: a + b),
    Opcode.ISUB: _binary(lambda a, b: a - b),
    Opcode.IAND: _binary(lambda a, b: a & b),
    Opcode.IOR: _binary(lambda a, b: a | b),
    Opcode.IXOR: _binary(lambda a, b: a ^ b),
    Opcode.ISHL: _binary(lambda a, b: a << (b & 63)),
    Opcode.ISHR: _binary(lambda a, b: a >> (b & 63)),
    Opcode.IADDI: _immediate(lambda a, imm: a + imm),
    Opcode.IANDI: _immediate(lambda a, imm: a & imm),
    Opcode.ISHLI: _immediate(lambda a, imm: a << (imm & 63)),
    Opcode.ISHRI: _immediate(lambda a, imm: a >> (imm & 63)),
    Opcode.ICMPEQ: _binary(lambda a, b: 1 if a == b else 0),
    Opcode.ICMPLT: _binary(lambda a, b: 1 if a < b else 0),
    Opcode.IMUL: _binary(lambda a, b: a * b),
    Opcode.IDIV: _binary(lambda a, b: a // b if b else 0),
    Opcode.FADD: _binary(lambda a, b: a + b),
    Opcode.FSUB: _binary(lambda a, b: a - b),
    Opcode.FMUL: _binary(lambda a, b: (a * b) ^ ((a * b) >> 17)),
    Opcode.FDIV: _binary(lambda a, b: (a // b if b else 0) ^ 0x5A5A5A5A),
    Opcode.I2F: _unary(lambda a: a),
    Opcode.F2I: _unary(lambda a: a),
}
