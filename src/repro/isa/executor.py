"""Functional execution of programs into dynamic micro-op traces.

The reproduction uses a *trace-driven* timing model: a program is first
executed functionally by :class:`Executor`, which records every dynamic
micro-op together with its concrete result value, memory address, memory
value and branch outcome.  The cycle-level core model then replays this
trace, so that

* move elimination can be checked against real register values,
* speculative memory bypassing can be *validated* exactly as in the paper
  (compare the bypassed register's value with the value actually loaded),
* the Data Dependency Table sees real virtual addresses, and
* the branch predictor sees the real taken/not-taken stream.

All register values are 64-bit unsigned integers.  Floating-point micro-ops
operate on the same 64-bit domain with distinct mixing functions; the timing
model only cares about dependencies and value equality, not IEEE semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction
from repro.isa.opcodes import OpClass, Opcode, op_class
from repro.isa.program import Program
from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS, ArchReg, RegClass

_MASK64 = (1 << 64) - 1


class ExecutionLimitExceeded(RuntimeError):
    """Raised when a program does not halt within the configured budgets."""


#: Names of the derived classification fields on :class:`DynamicOp`, in the
#: order :func:`derive_classification` produces them.
_DERIVED_FIELD_NAMES = (
    "is_load", "is_store", "is_branch", "is_conditional_branch",
    "is_move", "writes_register", "dest_flat", "src_flats",
)


def derive_classification(opcode, op_class, dest, srcs) -> tuple:
    """Compute the derived classification fields of a micro-op.

    The single source of truth shared by :meth:`DynamicOp.__post_init__`
    (hand-constructed ops) and the executor's per-static-instruction cache
    (generated traces), so the two paths can never classify differently.
    Returns values in ``_DERIVED_FIELD_NAMES`` order.
    """
    return (
        op_class is OpClass.LOAD,
        op_class is OpClass.STORE,
        op_class is OpClass.BRANCH,
        opcode in (Opcode.BNZ, Opcode.BZ),
        opcode in (Opcode.MOV, Opcode.MOVZX8, Opcode.FMOV),
        dest is not None,
        dest.flat_index if dest is not None else -1,
        tuple(src.flat_index for src in srcs),
    )


@dataclass(frozen=True, slots=True)
class DynamicOp:
    """One dynamic micro-op of a trace.

    The fields capture everything the timing model needs: operands for
    dependence tracking, the result value for sharing validation, the memory
    address/size for the data cache, store queue and DDT, and the resolved
    branch behaviour for the front end.

    The trailing block of non-init fields (``is_load`` ... ``src_flats``)
    is *derived* from the others in ``__post_init__``.  The timing model
    replays the same micro-op once per (scheme x sizing) configuration, so
    classification and flat-register-index lookups are paid once at trace
    generation time instead of on every replay (they used to be properties
    on the pipeline's hottest paths).
    """

    seq: int
    pc: int
    static_index: int
    opcode: Opcode
    op_class: OpClass
    dest: ArchReg | None
    srcs: tuple[ArchReg, ...]
    width: int = 64
    src_high8: bool = False
    imm: int = 0
    result: int | None = None
    mem_addr: int | None = None
    mem_size: int = 8
    store_value: int | None = None
    next_pc: int = 0
    taken: bool = False
    target_pc: int | None = None
    # -- derived, precomputed classification (see class docstring).  The
    # executor passes these in from its per-static-instruction cache; when
    # constructed by hand (tests, tools) they are derived automatically.
    is_load: bool = None
    is_store: bool = None
    is_branch: bool = None
    is_conditional_branch: bool = None
    is_move: bool = None
    writes_register: bool = None
    dest_flat: int = None
    src_flats: tuple[int, ...] = None

    def __post_init__(self) -> None:
        supplied = (self.is_load, self.is_store, self.is_branch,
                    self.is_conditional_branch, self.is_move,
                    self.writes_register, self.dest_flat, self.src_flats)
        if all(value is not None for value in supplied):
            return
        # Derive everything unless the caller supplied the complete set (a
        # partial set would leave None flags that read as falsy downstream).
        set_ = object.__setattr__
        values = derive_classification(self.opcode, self.op_class, self.dest, self.srcs)
        for name, value in zip(_DERIVED_FIELD_NAMES, values):
            set_(self, name, value)

    @property
    def is_call(self) -> bool:
        """``True`` for call micro-ops."""
        return self.opcode is Opcode.CALL

    @property
    def is_return(self) -> bool:
        """``True`` for return micro-ops."""
        return self.opcode is Opcode.RET

    def __repr__(self) -> str:
        dest = self.dest.name if self.dest else "-"
        return f"DynamicOp(seq={self.seq}, pc={self.pc:#x}, {self.opcode.value}, dest={dest})"


@dataclass
class Trace:
    """A fully resolved dynamic micro-op stream for one workload."""

    name: str
    ops: list[DynamicOp] = field(default_factory=list)
    program: Program | None = None

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __getitem__(self, index: int) -> DynamicOp:
        return self.ops[index]

    def count(self, predicate) -> int:
        """Number of dynamic micro-ops satisfying ``predicate``."""
        return sum(1 for op in self.ops if predicate(op))

    def mix(self) -> dict[str, int]:
        """Instruction mix summary (by :class:`OpClass` name)."""
        counts: dict[str, int] = {}
        for op in self.ops:
            counts[op.op_class.value] = counts.get(op.op_class.value, 0) + 1
        return counts


class Executor:
    """Architectural (functional) executor for :class:`~repro.isa.program.Program`.

    Parameters
    ----------
    program:
        The static program to execute.
    initial_regs:
        Optional initial values for architectural registers.
    initial_memory:
        Optional initial memory image as a mapping from byte address to byte
        value (or from aligned address to 64-bit word when ``word_image`` is
        ``True``).
    """

    def __init__(self, program: Program,
                 initial_regs: dict[ArchReg, int] | None = None,
                 initial_memory: dict[int, int] | None = None,
                 word_image: bool = True) -> None:
        program.validate()
        self.program = program
        self._int_regs = [0] * NUM_INT_REGS
        self._fp_regs = [0] * NUM_FP_REGS
        self._memory: dict[int, int] = {}
        self._call_stack: list[int] = []
        self._statics = [_precompute_static(program, index, instruction)
                         for index, instruction in enumerate(program.instructions)]
        if initial_regs:
            for reg, value in initial_regs.items():
                self._write_reg(reg, value)
        if initial_memory:
            if word_image:
                for address, value in initial_memory.items():
                    self._write_memory(address, value & _MASK64, 8)
            else:
                for address, value in initial_memory.items():
                    self._memory[address] = value & 0xFF

    # -- architectural state accessors -------------------------------------------

    def read_reg(self, reg: ArchReg) -> int:
        """Return the current architectural value of ``reg``."""
        if reg.reg_class is RegClass.INT:
            return self._int_regs[reg.index]
        return self._fp_regs[reg.index]

    def _write_reg(self, reg: ArchReg, value: int) -> None:
        value &= _MASK64
        if reg.reg_class is RegClass.INT:
            self._int_regs[reg.index] = value
        else:
            self._fp_regs[reg.index] = value

    def state_digest(self) -> str:
        """SHA-256 digest of the full architectural state (registers + memory).

        The differential test layer uses this to pin the functional
        semantics of a workload: every tracker scheme replays the same
        trace, so the committed architectural state must be independent of
        the timing configuration, and hot-path optimisations must not
        change it.
        """
        import hashlib

        digest = hashlib.sha256()
        for value in self._int_regs:
            digest.update(value.to_bytes(8, "little"))
        for value in self._fp_regs:
            digest.update(value.to_bytes(8, "little"))
        for address in sorted(self._memory):
            digest.update(address.to_bytes(8, "little"))
            digest.update(self._memory[address].to_bytes(1, "little"))
        return digest.hexdigest()

    def read_memory(self, address: int, size: int = 8) -> int:
        """Read ``size`` bytes of memory (little endian, missing bytes are zero)."""
        value = 0
        for offset in range(size):
            value |= self._memory.get(address + offset, 0) << (8 * offset)
        return value

    def _write_memory(self, address: int, value: int, size: int) -> None:
        for offset in range(size):
            self._memory[address + offset] = (value >> (8 * offset)) & 0xFF

    # -- execution ----------------------------------------------------------------

    def run(self, max_ops: int = 1_000_000) -> Trace:
        """Execute the program and return its dynamic trace.

        Execution stops at ``HALT`` or after ``max_ops`` dynamic micro-ops,
        whichever comes first.  Falling off the end of the program raises
        :class:`ExecutionLimitExceeded` because workloads are expected to be
        explicit about termination.
        """
        trace = Trace(name=self.program.name, program=self.program)
        index = 0
        instructions = self.program.instructions
        statics = self._statics
        limit = len(instructions)
        base_pc = self.program.BASE_PC
        bytes_per_op = self.program.BYTES_PER_OP
        ops = trace.ops
        append = ops.append
        write_reg = self._write_reg
        while len(ops) < max_ops:
            if index >= limit:
                raise ExecutionLimitExceeded(
                    f"program {self.program.name!r} ran past its last instruction; "
                    "add an explicit halt() or loop"
                )
            static = statics[index]
            if static is None:  # HALT
                break
            pc, opcode, op_cls, dest, srcs, width, src_high8, imm, derived, handler = static
            instruction = instructions[index]
            result, mem_addr, mem_size, store_value, taken, target_pc, next_index = \
                handler(self, instruction, index)
            if dest is not None and result is not None:
                write_reg(dest, result)
            next_pc = (base_pc + next_index * bytes_per_op) if next_index < limit else pc + 4
            append(DynamicOp(
                len(ops), pc, index, opcode, op_cls, dest, srcs, width, src_high8,
                imm, result, mem_addr, mem_size, store_value, next_pc, taken,
                target_pc, *derived,
            ))
            index = next_index
        return trace

    def _step(self, instruction: Instruction, index: int, seq: int) -> tuple[DynamicOp, int]:
        """Execute one static instruction, returning its dynamic form and the next index.

        This is the single-step twin of the inlined loop in :meth:`run`
        (kept for tools and tests that drive the executor one instruction
        at a time).
        """
        static = self._statics[index]
        if static is None:
            raise ValueError("cannot step a HALT instruction")
        pc, opcode, op_cls, dest, srcs, width, src_high8, imm, derived, handler = static
        result, mem_addr, mem_size, store_value, taken, target_pc, next_index = \
            handler(self, instruction, index)
        if dest is not None and result is not None:
            self._write_reg(dest, result)
        limit = len(self.program)
        next_pc = self.program.pc_of(next_index) if next_index < limit else pc + 4
        dynamic = DynamicOp(
            seq, pc, index, opcode, op_cls, dest, srcs, width, src_high8,
            imm, result, mem_addr, mem_size, store_value, next_pc, taken,
            target_pc, *derived,
        )
        return dynamic, next_index

    def _execute_move(self, instruction: Instruction) -> int:
        """Register-to-register move semantics, including x86-style partial widths."""
        source = self.read_reg(instruction.srcs[0])
        if instruction.opcode is Opcode.FMOV or instruction.width == 64:
            return source
        if instruction.width == 32:
            # x86_64 zeroes the upper 32 bits on a 32-bit register move.
            return source & 0xFFFFFFFF
        destination = self.read_reg(instruction.dest)
        if instruction.width == 16:
            return (destination & ~0xFFFF) & _MASK64 | (source & 0xFFFF)
        # 8-bit move merges into the low byte of the destination.
        return (destination & ~0xFF) & _MASK64 | (source & 0xFF)

    def _effective_address(self, instruction: Instruction) -> tuple[int, int]:
        """Compute the byte address and size of a memory micro-op."""
        mem = instruction.mem
        address = mem.offset
        if mem.base is not None:
            address += self.read_reg(mem.base)
        if mem.index is not None:
            address += self.read_reg(mem.index) * mem.scale
        return address & _MASK64, mem.size


def _binary(handler):
    """Wrap a two-source integer operation handler."""

    def wrapped(executor: Executor, instruction: Instruction) -> int:
        a = executor.read_reg(instruction.srcs[0])
        b = executor.read_reg(instruction.srcs[1])
        return handler(a, b) & _MASK64

    return wrapped


def _immediate(handler):
    """Wrap a source-plus-immediate integer operation handler."""

    def wrapped(executor: Executor, instruction: Instruction) -> int:
        a = executor.read_reg(instruction.srcs[0])
        return handler(a, instruction.imm) & _MASK64

    return wrapped


def _unary(handler):
    """Wrap a single-source operation handler."""

    def wrapped(executor: Executor, instruction: Instruction) -> int:
        a = executor.read_reg(instruction.srcs[0])
        return handler(a) & _MASK64

    return wrapped


#: Raw value semantics of the two-source / immediate / one-source ALU
#: micro-ops.  These plain ``int -> int`` lambdas are the single source of
#: truth shared by the executor's handler table below and by the
#: fast-forward compiler in :mod:`repro.isa.functional` -- the two execution
#: backends can therefore never compute different results.
RAW_BINARY_OPS = {
    Opcode.IADD: lambda a, b: a + b,
    Opcode.ISUB: lambda a, b: a - b,
    Opcode.IAND: lambda a, b: a & b,
    Opcode.IOR: lambda a, b: a | b,
    Opcode.IXOR: lambda a, b: a ^ b,
    Opcode.ISHL: lambda a, b: a << (b & 63),
    Opcode.ISHR: lambda a, b: a >> (b & 63),
    Opcode.ICMPEQ: lambda a, b: 1 if a == b else 0,
    Opcode.ICMPLT: lambda a, b: 1 if a < b else 0,
    Opcode.IMUL: lambda a, b: a * b,
    Opcode.IDIV: lambda a, b: a // b if b else 0,
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: (a * b) ^ ((a * b) >> 17),
    Opcode.FDIV: lambda a, b: (a // b if b else 0) ^ 0x5A5A5A5A,
}

RAW_IMMEDIATE_OPS = {
    Opcode.IADDI: lambda a, imm: a + imm,
    Opcode.IANDI: lambda a, imm: a & imm,
    Opcode.ISHLI: lambda a, imm: a << (imm & 63),
    Opcode.ISHRI: lambda a, imm: a >> (imm & 63),
}

RAW_UNARY_OPS = {
    Opcode.I2F: lambda a: a,
    Opcode.F2I: lambda a: a,
}

_ALU_HANDLERS = {
    **{opcode: _binary(handler) for opcode, handler in RAW_BINARY_OPS.items()},
    **{opcode: _immediate(handler) for opcode, handler in RAW_IMMEDIATE_OPS.items()},
    **{opcode: _unary(handler) for opcode, handler in RAW_UNARY_OPS.items()},
}


# ---------------------------------------------------------------------------
# Per-opcode dispatch table
# ---------------------------------------------------------------------------
#
# Every handler computes the full dynamic effect of one static instruction:
# ``(result, mem_addr, mem_size, store_value, taken, target_pc, next_index)``.
# :meth:`Executor._step` indexes this table directly instead of walking an
# if/elif chain, which keeps the per-micro-op cost flat across opcodes.

#: Precomputed opcode -> OpClass mapping (avoids a function call per micro-op).
_CLASS_OF = {opcode: op_class(opcode) for opcode in Opcode if opcode is not Opcode.HALT}


def _step_alu(handler):
    """Adapt a result-only ALU handler to the full-effect signature."""

    def step(executor: Executor, instruction: Instruction, index: int):
        return handler(executor, instruction), None, 8, None, False, None, index + 1

    return step


def _step_movi(executor: Executor, instruction: Instruction, index: int):
    return instruction.imm & _MASK64, None, 8, None, False, None, index + 1


def _step_move(executor: Executor, instruction: Instruction, index: int):
    return executor._execute_move(instruction), None, 8, None, False, None, index + 1


def _step_movzx8(executor: Executor, instruction: Instruction, index: int):
    source = executor.read_reg(instruction.srcs[0])
    byte = (source >> 8) & 0xFF if instruction.src_high8 else source & 0xFF
    return byte, None, 8, None, False, None, index + 1


def _step_load(executor: Executor, instruction: Instruction, index: int):
    mem_addr, mem_size = executor._effective_address(instruction)
    return (executor.read_memory(mem_addr, mem_size), mem_addr, mem_size, None,
            False, None, index + 1)


def _step_store(executor: Executor, instruction: Instruction, index: int):
    mem_addr, mem_size = executor._effective_address(instruction)
    store_value = executor.read_reg(instruction.srcs[0])
    if mem_size == 4:
        store_value &= 0xFFFFFFFF
    executor._write_memory(mem_addr, store_value, mem_size)
    return None, mem_addr, mem_size, store_value, False, None, index + 1


def _step_bnz(executor: Executor, instruction: Instruction, index: int):
    taken = executor.read_reg(instruction.srcs[0]) != 0
    target_index = executor.program.target_index(instruction.target)
    target_pc = executor.program.pc_of(target_index)
    return None, None, 8, None, taken, target_pc, target_index if taken else index + 1


def _step_bz(executor: Executor, instruction: Instruction, index: int):
    taken = executor.read_reg(instruction.srcs[0]) == 0
    target_index = executor.program.target_index(instruction.target)
    target_pc = executor.program.pc_of(target_index)
    return None, None, 8, None, taken, target_pc, target_index if taken else index + 1


def _step_jmp(executor: Executor, instruction: Instruction, index: int):
    next_index = executor.program.target_index(instruction.target)
    return None, None, 8, None, True, executor.program.pc_of(next_index), next_index


def _step_call(executor: Executor, instruction: Instruction, index: int):
    executor._call_stack.append(index + 1)
    next_index = executor.program.target_index(instruction.target)
    return None, None, 8, None, True, executor.program.pc_of(next_index), next_index


def _step_ret(executor: Executor, instruction: Instruction, index: int):
    if not executor._call_stack:
        raise ExecutionLimitExceeded(
            f"return without a matching call in program {executor.program.name!r}"
        )
    next_index = executor._call_stack.pop()
    return None, None, 8, None, True, executor.program.pc_of(next_index), next_index


def _step_nop(executor: Executor, instruction: Instruction, index: int):
    return None, None, 8, None, False, None, index + 1


_DISPATCH = {opcode: _step_alu(handler) for opcode, handler in _ALU_HANDLERS.items()}
_DISPATCH.update({
    Opcode.MOVI: _step_movi,
    Opcode.MOV: _step_move,
    Opcode.FMOV: _step_move,
    Opcode.MOVZX8: _step_movzx8,
    Opcode.LOAD: _step_load,
    Opcode.FLOAD: _step_load,
    Opcode.STORE: _step_store,
    Opcode.FSTORE: _step_store,
    Opcode.BNZ: _step_bnz,
    Opcode.BZ: _step_bz,
    Opcode.JMP: _step_jmp,
    Opcode.CALL: _step_call,
    Opcode.RET: _step_ret,
    Opcode.NOP: _step_nop,
})


def _precompute_static(program: Program, index: int, instruction: Instruction):
    """Precompute everything about a static instruction that its dynamic
    instances share: decoded fields, classification flags, flat register
    indices and the dispatch handler.  Returns ``None`` for ``HALT`` (the
    run loop's stop marker).  An opcode missing from the dispatch table is
    a table bug and raises ``KeyError`` here, at decode time.
    """
    opcode = instruction.opcode
    if opcode is Opcode.HALT:
        return None
    op_cls = _CLASS_OF[opcode]
    dest = instruction.dest
    srcs = instruction.source_registers()
    derived = derive_classification(opcode, op_cls, dest, srcs)
    return (
        program.BASE_PC + index * program.BYTES_PER_OP,
        opcode,
        op_cls,
        dest,
        srcs,
        instruction.width,
        instruction.src_high8,
        instruction.imm,
        derived,
        _DISPATCH[opcode],
    )
