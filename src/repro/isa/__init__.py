"""A compact micro-op ISA used as the workload substrate of the reproduction.

The original paper evaluates register sharing on x86_64 binaries decomposed
into micro-ops by gem5.  This reproduction defines its own explicit micro-op
ISA with the properties the paper's mechanisms care about:

* 16 integer and 16 floating-point architectural registers (matching the
  x86_64 GPR / SIMD register counts used for the checkpoint storage
  comparison in Section 4.3.3);
* register-to-register moves of 64/32/16/8-bit widths plus zero-extending
  byte moves, so the Intel move-elimination eligibility rules of Section 2.1
  are meaningful;
* loads and stores with byte-accurate addresses and sizes, so
  store-to-load forwarding, partial overlaps and the Data Dependency Table
  behave as in the paper;
* conditional branches, unconditional jumps and call/return pairs so the
  TAGE branch predictor, BTB and return address stack are exercised.

Workload programs are written against :class:`~repro.isa.program.ProgramBuilder`
and executed functionally by :class:`~repro.isa.executor.Executor`, which
produces the dynamic micro-op trace (with concrete values, addresses and
branch outcomes) consumed by the cycle-level core model.
"""

from repro.isa.executor import DynamicOp, ExecutionLimitExceeded, Executor, Trace
from repro.isa.functional import ArchSnapshot, FunctionalCore
from repro.isa.instructions import Instruction, MemOperand
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import (
    NUM_FP_REGS,
    NUM_INT_REGS,
    ArchReg,
    RegClass,
    fp_reg,
    int_reg,
)

__all__ = [
    "ArchReg",
    "RegClass",
    "int_reg",
    "fp_reg",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "Opcode",
    "OpClass",
    "Instruction",
    "MemOperand",
    "Program",
    "ProgramBuilder",
    "Executor",
    "FunctionalCore",
    "ArchSnapshot",
    "DynamicOp",
    "Trace",
    "ExecutionLimitExceeded",
]
