"""Micro-op opcodes and their execution classes.

Each opcode belongs to an :class:`OpClass` that the back-end maps onto a
functional-unit pool and an execution latency (Table 1 of the paper: four
1-cycle ALUs, one non-pipelined integer multiplier/divider, two 3-cycle FP
units, two FP multiply/divide units, two load ports and one store port).
"""

from __future__ import annotations

import enum


class Opcode(enum.Enum):
    """Every micro-op the synthetic ISA can express."""

    # Integer ALU operations (dest, src_a, src_b).
    IADD = "iadd"
    ISUB = "isub"
    IAND = "iand"
    IOR = "ior"
    IXOR = "ixor"
    ISHL = "ishl"
    ISHR = "ishr"
    # Integer ALU operations with an immediate (dest, src_a, imm).
    IADDI = "iaddi"
    IANDI = "iandi"
    ISHLI = "ishli"
    ISHRI = "ishri"
    # Comparisons producing 0/1 (dest, src_a, src_b).
    ICMPEQ = "icmpeq"
    ICMPLT = "icmplt"
    # Long-latency integer operations.
    IMUL = "imul"
    IDIV = "idiv"
    # Register-to-register moves (dest, src).  ``width`` selects 64/32/16/8.
    MOV = "mov"
    MOVZX8 = "movzx8"
    # Load an immediate into a register (dest, imm).
    MOVI = "movi"
    # Floating-point operations (dest, src_a, src_b) on FP registers.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    # Floating-point register-to-register move (dest, src).
    FMOV = "fmov"
    # Conversions between register classes (dest, src).
    I2F = "i2f"
    F2I = "f2i"
    # Memory operations.  Addresses are ``base + offset`` (+ ``index`` register).
    LOAD = "load"
    STORE = "store"
    FLOAD = "fload"
    FSTORE = "fstore"
    # Control flow.
    BNZ = "bnz"    # branch to target if src != 0
    BZ = "bz"      # branch to target if src == 0
    JMP = "jmp"    # unconditional direct jump
    CALL = "call"  # direct call (pushes return address on the shadow stack)
    RET = "ret"    # return (pops the shadow stack)
    # No operation / end of program.
    NOP = "nop"
    HALT = "halt"


class OpClass(enum.Enum):
    """Functional-unit class of a micro-op."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    INT_MOVE = "int_move"
    FP_ALU = "fp_alu"
    FP_MULDIV = "fp_muldiv"
    FP_MOVE = "fp_move"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"


_OPCLASS: dict[Opcode, OpClass] = {
    Opcode.IADD: OpClass.INT_ALU,
    Opcode.ISUB: OpClass.INT_ALU,
    Opcode.IAND: OpClass.INT_ALU,
    Opcode.IOR: OpClass.INT_ALU,
    Opcode.IXOR: OpClass.INT_ALU,
    Opcode.ISHL: OpClass.INT_ALU,
    Opcode.ISHR: OpClass.INT_ALU,
    Opcode.IADDI: OpClass.INT_ALU,
    Opcode.IANDI: OpClass.INT_ALU,
    Opcode.ISHLI: OpClass.INT_ALU,
    Opcode.ISHRI: OpClass.INT_ALU,
    Opcode.ICMPEQ: OpClass.INT_ALU,
    Opcode.ICMPLT: OpClass.INT_ALU,
    Opcode.IMUL: OpClass.INT_MUL,
    Opcode.IDIV: OpClass.INT_DIV,
    Opcode.MOV: OpClass.INT_MOVE,
    Opcode.MOVZX8: OpClass.INT_MOVE,
    Opcode.MOVI: OpClass.INT_ALU,
    Opcode.FADD: OpClass.FP_ALU,
    Opcode.FSUB: OpClass.FP_ALU,
    Opcode.FMUL: OpClass.FP_MULDIV,
    Opcode.FDIV: OpClass.FP_MULDIV,
    Opcode.FMOV: OpClass.FP_MOVE,
    Opcode.I2F: OpClass.FP_ALU,
    Opcode.F2I: OpClass.INT_ALU,
    Opcode.LOAD: OpClass.LOAD,
    Opcode.FLOAD: OpClass.LOAD,
    Opcode.STORE: OpClass.STORE,
    Opcode.FSTORE: OpClass.STORE,
    Opcode.BNZ: OpClass.BRANCH,
    Opcode.BZ: OpClass.BRANCH,
    Opcode.JMP: OpClass.BRANCH,
    Opcode.CALL: OpClass.BRANCH,
    Opcode.RET: OpClass.BRANCH,
    Opcode.NOP: OpClass.NOP,
    Opcode.HALT: OpClass.NOP,
}

#: Opcodes that read or write memory.
MEMORY_OPCODES = frozenset({Opcode.LOAD, Opcode.FLOAD, Opcode.STORE, Opcode.FSTORE})

#: Conditional branch opcodes (their direction depends on a register value).
CONDITIONAL_BRANCHES = frozenset({Opcode.BNZ, Opcode.BZ})

#: Register-to-register move opcodes (the move-elimination candidates).
MOVE_OPCODES = frozenset({Opcode.MOV, Opcode.MOVZX8, Opcode.FMOV})


def op_class(opcode: Opcode) -> OpClass:
    """Return the functional-unit class of ``opcode``."""
    return _OPCLASS[opcode]


def is_load(opcode: Opcode) -> bool:
    """Return ``True`` for load micro-ops."""
    return opcode in (Opcode.LOAD, Opcode.FLOAD)


def is_store(opcode: Opcode) -> bool:
    """Return ``True`` for store micro-ops."""
    return opcode in (Opcode.STORE, Opcode.FSTORE)


def is_branch(opcode: Opcode) -> bool:
    """Return ``True`` for control-flow micro-ops."""
    return _OPCLASS[opcode] is OpClass.BRANCH


def is_conditional_branch(opcode: Opcode) -> bool:
    """Return ``True`` for conditional branches."""
    return opcode in CONDITIONAL_BRANCHES


def is_move(opcode: Opcode) -> bool:
    """Return ``True`` for register-to-register move micro-ops."""
    return opcode in MOVE_OPCODES
