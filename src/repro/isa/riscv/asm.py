"""A two-pass RV32I assembler-lite.

Just enough assembler to write test fixtures and the checked-in sample
binary in readable source form -- not a general-purpose toolchain.

Supported syntax::

    # comment              ; comment
    label:
    .word 0x12345678       # raw data word(s), comma separated
    .zero 16               # n zero bytes (n % 4 == 0)
    add   x1, x2, x3       # R-type (ABI names like a0/sp/ra also accepted)
    addi  a0, a0, -1       # I-type ALU
    lw    a1, 8(sp)        # loads,  imm(base)
    sw    a1, 8(sp)        # stores, imm(base)
    beq   a0, a1, loop     # branches to a label
    jal   ra, func         # jal  (also:  jal func  /  j label)
    jalr  x0, 0(ra)        # jalr
    lui   a2, 0x12345      # U-type, *unshifted* imm20 (as in real assemblers)
    auipc a2, 0            #
    ecall                  # syscall-lite: terminates the program

Pseudo-instructions: ``nop``, ``mv rd, rs``, ``li rd, imm`` (1 or 2 words),
``la rd, label`` (always 2 words: ``lui+addi`` against the absolute
address), ``j label``, ``ret``, ``call label``, ``not``/``neg``/``seqz``/
``snez``, ``beqz``/``bnez rs, label``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.riscv.decoder import encode

__all__ = ["AsmError", "assemble"]

_REG_NAMES = {f"x{i}": i for i in range(32)}
_ABI = ["zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1",
        "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
        "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
        "t3", "t4", "t5", "t6"]
_REG_NAMES.update({name: i for i, name in enumerate(_ABI)})
_REG_NAMES["fp"] = 8


class AsmError(ValueError):
    """Raised on a syntax or range error, with the source line number."""


@dataclass
class _Item:
    """One sized unit of output: an instruction, pseudo-op or data words."""

    lineno: int
    kind: str            # "insn" | "word"
    mnemonic: str = ""
    operands: tuple[str, ...] = ()
    words: tuple[int, ...] = ()
    size: int = 4        # bytes this item occupies (pseudo-ops may expand)


def _reg(token: str, lineno: int) -> int:
    try:
        return _REG_NAMES[token.strip().lower()]
    except KeyError:
        raise AsmError(f"line {lineno}: unknown register {token.strip()!r}") from None


def _int(token: str, lineno: int) -> int:
    try:
        return int(token.strip(), 0)
    except ValueError:
        raise AsmError(f"line {lineno}: bad integer {token.strip()!r}") from None


def _mem_operand(token: str, lineno: int) -> tuple[int, int]:
    """Parse ``imm(reg)`` -> (imm, reg)."""
    token = token.strip()
    if not token.endswith(")") or "(" not in token:
        raise AsmError(f"line {lineno}: expected imm(reg), got {token!r}")
    imm_part, reg_part = token[:-1].split("(", 1)
    imm = _int(imm_part, lineno) if imm_part.strip() else 0
    return imm, _reg(reg_part, lineno)


def _li_words(imm: int) -> int:
    """Number of instructions ``li`` expands to for this immediate."""
    return 1 if -2048 <= imm < 2048 else 2


def _split_hi_lo(value: int) -> tuple[int, int]:
    """Split an absolute 32-bit value into (lui imm20<<12, addi imm12)."""
    value &= 0xFFFFFFFF
    hi = (value + 0x800) & 0xFFFFF000
    lo = ((value - hi) + 0x800) % 0x1000 - 0x800
    return hi, lo


_BRANCHES = {"beq", "bne", "blt", "bge", "bltu", "bgeu"}
_LOADS = {"lb", "lh", "lw", "lbu", "lhu"}
_STORES = {"sb", "sh", "sw"}
_R_OPS = {"add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and"}
_I_OPS = {"addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai"}


def _parse(text: str) -> tuple[list[_Item], dict[str, int]]:
    """Pass 1: split into sized items, record label byte offsets."""
    items: list[_Item] = []
    labels: dict[str, int] = {}
    offset = 0
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].split(";", 1)[0].strip()
        while line:
            head, colon, rest = line.partition(":")
            if colon and " " not in head.strip() and "," not in head:
                label = head.strip()
                if not label or not (label[0].isalpha() or label[0] in "._"):
                    raise AsmError(f"line {lineno}: bad label {label!r}")
                if label in labels:
                    raise AsmError(f"line {lineno}: label {label!r} defined twice")
                labels[label] = offset
                line = rest.strip()
                continue
            break
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = tuple(op.strip() for op in operand_text.split(",")) \
            if operand_text.strip() else ()
        if mnemonic == ".word":
            words = tuple(_int(op, lineno) & 0xFFFFFFFF for op in operands)
            if not words:
                raise AsmError(f"line {lineno}: .word needs at least one value")
            item = _Item(lineno, "word", words=words, size=4 * len(words))
        elif mnemonic == ".zero":
            count = _int(operands[0], lineno) if operands else 0
            if count <= 0 or count % 4:
                raise AsmError(f"line {lineno}: .zero size must be a positive "
                               f"multiple of 4, got {count}")
            item = _Item(lineno, "word", words=(0,) * (count // 4), size=count)
        elif mnemonic == "li":
            if len(operands) != 2:
                raise AsmError(f"line {lineno}: li needs rd, imm")
            item = _Item(lineno, "insn", "li", operands,
                         size=4 * _li_words(_int(operands[1], lineno)))
        elif mnemonic in ("la", "call"):
            item = _Item(lineno, "insn", mnemonic, operands, size=8)
        else:
            item = _Item(lineno, "insn", mnemonic, operands)
        items.append(item)
        offset += item.size
    return items, labels


def _encode_item(item: _Item, pc: int, labels: dict[str, int],
                 base: int) -> list[int]:
    lineno, mnemonic, ops = item.lineno, item.mnemonic, item.operands

    def resolve(token: str) -> int:
        token = token.strip()
        if token in labels:
            return base + labels[token]
        return _int(token, lineno)

    def branch_offset(token: str) -> int:
        return resolve(token) - pc

    try:
        if mnemonic in _R_OPS:
            rd, rs1, rs2 = (_reg(op, lineno) for op in ops)
            return [encode(mnemonic, rd=rd, rs1=rs1, rs2=rs2)]
        if mnemonic in _I_OPS:
            rd, rs1 = _reg(ops[0], lineno), _reg(ops[1], lineno)
            return [encode(mnemonic, rd=rd, rs1=rs1, imm=_int(ops[2], lineno))]
        if mnemonic in _LOADS:
            rd = _reg(ops[0], lineno)
            imm, rs1 = _mem_operand(ops[1], lineno)
            return [encode(mnemonic, rd=rd, rs1=rs1, imm=imm)]
        if mnemonic in _STORES:
            rs2 = _reg(ops[0], lineno)
            imm, rs1 = _mem_operand(ops[1], lineno)
            return [encode(mnemonic, rs1=rs1, rs2=rs2, imm=imm)]
        if mnemonic in _BRANCHES:
            rs1, rs2 = _reg(ops[0], lineno), _reg(ops[1], lineno)
            return [encode(mnemonic, rs1=rs1, rs2=rs2, imm=branch_offset(ops[2]))]
        if mnemonic in ("beqz", "bnez"):
            rs1 = _reg(ops[0], lineno)
            real = "beq" if mnemonic == "beqz" else "bne"
            return [encode(real, rs1=rs1, rs2=0, imm=branch_offset(ops[1]))]
        if mnemonic in ("lui", "auipc"):
            rd = _reg(ops[0], lineno)
            imm20 = _int(ops[1], lineno)
            if not 0 <= imm20 <= 0xFFFFF:
                raise AsmError(f"line {lineno}: {mnemonic} imm20 {imm20:#x} "
                               f"outside [0, 0xFFFFF]")
            return [encode(mnemonic, rd=rd, imm=imm20 << 12)]
        if mnemonic == "jal":
            if len(ops) == 1:
                return [encode("jal", rd=1, imm=branch_offset(ops[0]))]
            return [encode("jal", rd=_reg(ops[0], lineno),
                           imm=branch_offset(ops[1]))]
        if mnemonic == "j":
            return [encode("jal", rd=0, imm=branch_offset(ops[0]))]
        if mnemonic == "jalr":
            if len(ops) == 1:
                return [encode("jalr", rd=1, rs1=_reg(ops[0], lineno))]
            rd = _reg(ops[0], lineno)
            imm, rs1 = _mem_operand(ops[1], lineno)
            return [encode("jalr", rd=rd, rs1=rs1, imm=imm)]
        if mnemonic == "ret":
            return [encode("jalr", rd=0, rs1=1)]
        if mnemonic == "call":
            hi, lo = _split_hi_lo(resolve(ops[0]) - pc)
            return [encode("auipc", rd=1, imm=hi),
                    encode("jalr", rd=1, rs1=1, imm=lo)]
        if mnemonic == "nop":
            return [encode("addi")]
        if mnemonic == "mv":
            return [encode("addi", rd=_reg(ops[0], lineno),
                           rs1=_reg(ops[1], lineno))]
        if mnemonic == "not":
            return [encode("xori", rd=_reg(ops[0], lineno),
                           rs1=_reg(ops[1], lineno), imm=-1)]
        if mnemonic == "neg":
            return [encode("sub", rd=_reg(ops[0], lineno), rs1=0,
                           rs2=_reg(ops[1], lineno))]
        if mnemonic == "seqz":
            return [encode("sltiu", rd=_reg(ops[0], lineno),
                           rs1=_reg(ops[1], lineno), imm=1)]
        if mnemonic == "snez":
            return [encode("sltu", rd=_reg(ops[0], lineno), rs1=0,
                           rs2=_reg(ops[1], lineno))]
        if mnemonic == "li":
            rd, imm = _reg(ops[0], lineno), _int(ops[1], lineno)
            if _li_words(imm) == 1:
                return [encode("addi", rd=rd, imm=imm)]
            hi, lo = _split_hi_lo(imm)
            out = [encode("lui", rd=rd, imm=hi)]
            out.append(encode("addi", rd=rd, rs1=rd, imm=lo))
            return out
        if mnemonic == "la":
            rd = _reg(ops[0], lineno)
            hi, lo = _split_hi_lo(resolve(ops[1]))
            return [encode("lui", rd=rd, imm=hi),
                    encode("addi", rd=rd, rs1=rd, imm=lo)]
        if mnemonic in ("ecall", "ebreak", "fence", "fence.i"):
            return [encode(mnemonic)]
    except AsmError:
        raise
    except (ValueError, IndexError) as exc:
        raise AsmError(f"line {lineno}: {exc}") from exc
    raise AsmError(f"line {lineno}: unknown mnemonic {mnemonic!r}")


def assemble(text: str, base: int = 0x1000) -> bytes:
    """Assemble RV32I source into a little-endian flat binary at ``base``."""
    items, labels = _parse(text)
    blob = bytearray()
    for item in items:
        pc = base + len(blob)
        if item.kind == "word":
            for word in item.words:
                blob += word.to_bytes(4, "little")
            continue
        encoded = _encode_item(item, pc, labels, base)
        expected = item.size // 4
        if len(encoded) != expected:
            raise AsmError(f"line {item.lineno}: {item.mnemonic} expanded to "
                           f"{len(encoded)} words, sized as {expected}")
        for word in encoded:
            blob += word.to_bytes(4, "little")
    return bytes(blob)
