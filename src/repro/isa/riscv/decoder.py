"""RV32I base-ISA instruction decoder (and re-encoder).

Decodes all six RV32I encoding formats (R/I/S/B/U/J) into a
:class:`DecodedInsn` carrying the mnemonic, format, register fields and a
canonical immediate.  The inverse, :func:`encode`, exists so the assembler
and the round-trip property tests share one authoritative field layout.

Immediate conventions (the values stored in ``DecodedInsn.imm``):

* I-type ALU/load/jalr: the sign-extended 12-bit immediate.
* shifts (``slli``/``srli``/``srai``): the 5-bit shift amount.
* S-type: the sign-extended 12-bit store offset.
* B-type / J-type: the sign-extended *byte* offset relative to the branch pc
  (always even; bit 0 is not encoded).
* ``lui`` / ``auipc``: the upper immediate **already shifted**, i.e.
  ``imm20 << 12`` as an unsigned 32-bit value.
* ``ecall``/``ebreak``/``fence``: 0.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DecodeError", "DecodedInsn", "decode", "decode_all", "encode"]

# Major opcodes (bits [6:0]).
_OP_LUI = 0b0110111
_OP_AUIPC = 0b0010111
_OP_JAL = 0b1101111
_OP_JALR = 0b1100111
_OP_BRANCH = 0b1100011
_OP_LOAD = 0b0000011
_OP_STORE = 0b0100011
_OP_IMM = 0b0010011
_OP_OP = 0b0110011
_OP_MISC_MEM = 0b0001111
_OP_SYSTEM = 0b1110011


class DecodeError(ValueError):
    """Raised when a 32-bit word is not a valid RV32I instruction."""


@dataclass(frozen=True)
class DecodedInsn:
    """One decoded RV32I instruction.

    ``rd``/``rs1``/``rs2`` are raw 5-bit register numbers; fields that a
    format does not encode are 0.  ``imm`` follows the module-level
    immediate conventions.  ``raw`` is the original 32-bit word.
    """

    mnemonic: str
    fmt: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    raw: int = 0

    def __str__(self) -> str:
        if self.fmt == "R":
            return f"{self.mnemonic} x{self.rd}, x{self.rs1}, x{self.rs2}"
        if self.mnemonic in ("ecall", "ebreak", "fence", "fence.i"):
            return self.mnemonic
        if self.fmt == "I":
            if self.mnemonic.startswith("l"):
                return f"{self.mnemonic} x{self.rd}, {self.imm}(x{self.rs1})"
            return f"{self.mnemonic} x{self.rd}, x{self.rs1}, {self.imm}"
        if self.fmt == "S":
            return f"{self.mnemonic} x{self.rs2}, {self.imm}(x{self.rs1})"
        if self.fmt == "B":
            return f"{self.mnemonic} x{self.rs1}, x{self.rs2}, pc{self.imm:+d}"
        if self.fmt == "U":
            return f"{self.mnemonic} x{self.rd}, {self.imm:#x}"
        return f"{self.mnemonic} x{self.rd}, pc{self.imm:+d}"


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


# (funct3, funct7) -> mnemonic for the OP major opcode.
_R_TABLE = {
    (0b000, 0b0000000): "add",
    (0b000, 0b0100000): "sub",
    (0b001, 0b0000000): "sll",
    (0b010, 0b0000000): "slt",
    (0b011, 0b0000000): "sltu",
    (0b100, 0b0000000): "xor",
    (0b101, 0b0000000): "srl",
    (0b101, 0b0100000): "sra",
    (0b110, 0b0000000): "or",
    (0b111, 0b0000000): "and",
}

_I_ALU_TABLE = {0b000: "addi", 0b010: "slti", 0b011: "sltiu",
                0b100: "xori", 0b110: "ori", 0b111: "andi"}
_LOAD_TABLE = {0b000: "lb", 0b001: "lh", 0b010: "lw", 0b100: "lbu", 0b101: "lhu"}
_STORE_TABLE = {0b000: "sb", 0b001: "sh", 0b010: "sw"}
_BRANCH_TABLE = {0b000: "beq", 0b001: "bne", 0b100: "blt",
                 0b101: "bge", 0b110: "bltu", 0b111: "bgeu"}


def decode(word: int) -> DecodedInsn:
    """Decode one little-endian 32-bit instruction word."""
    word &= 0xFFFFFFFF
    if word & 0b11 != 0b11:
        raise DecodeError(f"{word:#010x}: compressed/invalid encoding (low bits != 11)")
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode == _OP_LUI:
        return DecodedInsn("lui", "U", rd=rd, imm=(word & 0xFFFFF000), raw=word)
    if opcode == _OP_AUIPC:
        return DecodedInsn("auipc", "U", rd=rd, imm=(word & 0xFFFFF000), raw=word)
    if opcode == _OP_JAL:
        imm = (((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12) \
            | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1)
        return DecodedInsn("jal", "J", rd=rd, imm=_sext(imm, 21), raw=word)
    if opcode == _OP_JALR:
        if funct3 != 0:
            raise DecodeError(f"{word:#010x}: jalr with funct3={funct3}")
        return DecodedInsn("jalr", "I", rd=rd, rs1=rs1,
                           imm=_sext(word >> 20, 12), raw=word)
    if opcode == _OP_BRANCH:
        mnemonic = _BRANCH_TABLE.get(funct3)
        if mnemonic is None:
            raise DecodeError(f"{word:#010x}: branch with funct3={funct3}")
        imm = (((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11) \
            | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1)
        return DecodedInsn(mnemonic, "B", rs1=rs1, rs2=rs2,
                           imm=_sext(imm, 13), raw=word)
    if opcode == _OP_LOAD:
        mnemonic = _LOAD_TABLE.get(funct3)
        if mnemonic is None:
            raise DecodeError(f"{word:#010x}: load with funct3={funct3}")
        return DecodedInsn(mnemonic, "I", rd=rd, rs1=rs1,
                           imm=_sext(word >> 20, 12), raw=word)
    if opcode == _OP_STORE:
        mnemonic = _STORE_TABLE.get(funct3)
        if mnemonic is None:
            raise DecodeError(f"{word:#010x}: store with funct3={funct3}")
        imm = _sext((funct7 << 5) | rd, 12)
        return DecodedInsn(mnemonic, "S", rs1=rs1, rs2=rs2, imm=imm, raw=word)
    if opcode == _OP_IMM:
        if funct3 == 0b001:
            if funct7 != 0:
                raise DecodeError(f"{word:#010x}: slli with funct7={funct7:#04x}")
            return DecodedInsn("slli", "I", rd=rd, rs1=rs1, imm=rs2, raw=word)
        if funct3 == 0b101:
            if funct7 == 0b0000000:
                return DecodedInsn("srli", "I", rd=rd, rs1=rs1, imm=rs2, raw=word)
            if funct7 == 0b0100000:
                return DecodedInsn("srai", "I", rd=rd, rs1=rs1, imm=rs2, raw=word)
            raise DecodeError(f"{word:#010x}: shift with funct7={funct7:#04x}")
        mnemonic = _I_ALU_TABLE[funct3]
        return DecodedInsn(mnemonic, "I", rd=rd, rs1=rs1,
                           imm=_sext(word >> 20, 12), raw=word)
    if opcode == _OP_OP:
        mnemonic = _R_TABLE.get((funct3, funct7))
        if mnemonic is None:
            raise DecodeError(
                f"{word:#010x}: OP with funct3={funct3} funct7={funct7:#04x}")
        return DecodedInsn(mnemonic, "R", rd=rd, rs1=rs1, rs2=rs2, raw=word)
    if opcode == _OP_MISC_MEM:
        if funct3 == 0b000:
            return DecodedInsn("fence", "I", rd=rd, rs1=rs1, raw=word)
        if funct3 == 0b001:
            return DecodedInsn("fence.i", "I", rd=rd, rs1=rs1, raw=word)
        raise DecodeError(f"{word:#010x}: misc-mem with funct3={funct3}")
    if opcode == _OP_SYSTEM:
        if funct3 != 0 or rd != 0 or rs1 != 0:
            raise DecodeError(f"{word:#010x}: unsupported SYSTEM encoding")
        funct12 = word >> 20
        if funct12 == 0:
            return DecodedInsn("ecall", "I", raw=word)
        if funct12 == 1:
            return DecodedInsn("ebreak", "I", raw=word)
        raise DecodeError(f"{word:#010x}: SYSTEM funct12={funct12:#x}")
    raise DecodeError(f"{word:#010x}: unknown major opcode {opcode:#04x}")


def decode_all(blob: bytes) -> list[DecodedInsn | None]:
    """Decode every aligned word of ``blob``; undecodable words become None.

    Real binaries interleave data with text; words that fail to decode are
    kept as ``None`` placeholders so program counters stay dense.
    """
    out: list[DecodedInsn | None] = []
    for i in range(0, len(blob) - len(blob) % 4, 4):
        word = int.from_bytes(blob[i:i + 4], "little")
        try:
            out.append(decode(word))
        except DecodeError:
            out.append(None)
    return out


# -- encoding ------------------------------------------------------------------

_ENC_R = {"add": (0b000, 0b0000000), "sub": (0b000, 0b0100000),
          "sll": (0b001, 0b0000000), "slt": (0b010, 0b0000000),
          "sltu": (0b011, 0b0000000), "xor": (0b100, 0b0000000),
          "srl": (0b101, 0b0000000), "sra": (0b101, 0b0100000),
          "or": (0b110, 0b0000000), "and": (0b111, 0b0000000)}
_ENC_I_ALU = {v: k for k, v in _I_ALU_TABLE.items()}
_ENC_LOAD = {v: k for k, v in _LOAD_TABLE.items()}
_ENC_STORE = {v: k for k, v in _STORE_TABLE.items()}
_ENC_BRANCH = {v: k for k, v in _BRANCH_TABLE.items()}
_ENC_SHIFT = {"slli": (0b001, 0b0000000), "srli": (0b101, 0b0000000),
              "srai": (0b101, 0b0100000)}


def _check_reg(name: str, value: int) -> int:
    if not 0 <= value <= 31:
        raise ValueError(f"{name}={value} out of range for a 5-bit register field")
    return value


def _check_range(mnemonic: str, imm: int, bits: int) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= imm <= hi:
        raise ValueError(f"{mnemonic}: immediate {imm} outside [{lo}, {hi}]")
    return imm & ((1 << bits) - 1)


def encode(mnemonic: str, rd: int = 0, rs1: int = 0, rs2: int = 0,
           imm: int = 0) -> int:
    """Encode one RV32I instruction into its 32-bit word.

    The immediate follows the same conventions as :class:`DecodedInsn`, so
    ``decode(encode(...))`` round-trips exactly.
    """
    rd, rs1, rs2 = _check_reg("rd", rd), _check_reg("rs1", rs1), _check_reg("rs2", rs2)
    if mnemonic in _ENC_R:
        funct3, funct7 = _ENC_R[mnemonic]
        return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
            | (rd << 7) | _OP_OP
    if mnemonic in _ENC_SHIFT:
        funct3, funct7 = _ENC_SHIFT[mnemonic]
        if not 0 <= imm <= 31:
            raise ValueError(f"{mnemonic}: shift amount {imm} outside [0, 31]")
        return (funct7 << 25) | (imm << 20) | (rs1 << 15) | (funct3 << 12) \
            | (rd << 7) | _OP_IMM
    if mnemonic in _ENC_I_ALU:
        imm12 = _check_range(mnemonic, imm, 12)
        return (imm12 << 20) | (rs1 << 15) | (_ENC_I_ALU[mnemonic] << 12) \
            | (rd << 7) | _OP_IMM
    if mnemonic in _ENC_LOAD:
        imm12 = _check_range(mnemonic, imm, 12)
        return (imm12 << 20) | (rs1 << 15) | (_ENC_LOAD[mnemonic] << 12) \
            | (rd << 7) | _OP_LOAD
    if mnemonic in _ENC_STORE:
        imm12 = _check_range(mnemonic, imm, 12)
        return ((imm12 >> 5) << 25) | (rs2 << 20) | (rs1 << 15) \
            | (_ENC_STORE[mnemonic] << 12) | ((imm12 & 0x1F) << 7) | _OP_STORE
    if mnemonic in _ENC_BRANCH:
        if imm % 2:
            raise ValueError(f"{mnemonic}: branch offset {imm} must be even")
        imm13 = _check_range(mnemonic, imm, 13)
        return (((imm13 >> 12) & 1) << 31) | (((imm13 >> 5) & 0x3F) << 25) \
            | (rs2 << 20) | (rs1 << 15) | (_ENC_BRANCH[mnemonic] << 12) \
            | (((imm13 >> 1) & 0xF) << 8) | (((imm13 >> 11) & 1) << 7) | _OP_BRANCH
    if mnemonic in ("lui", "auipc"):
        if imm & 0xFFF or not 0 <= imm <= 0xFFFFF000:
            raise ValueError(f"{mnemonic}: immediate {imm:#x} is not imm20 << 12")
        major = _OP_LUI if mnemonic == "lui" else _OP_AUIPC
        return imm | (rd << 7) | major
    if mnemonic == "jal":
        if imm % 2:
            raise ValueError(f"jal: offset {imm} must be even")
        imm21 = _check_range(mnemonic, imm, 21)
        return (((imm21 >> 20) & 1) << 31) | (((imm21 >> 1) & 0x3FF) << 21) \
            | (((imm21 >> 11) & 1) << 20) | (((imm21 >> 12) & 0xFF) << 12) \
            | (rd << 7) | _OP_JAL
    if mnemonic == "jalr":
        imm12 = _check_range(mnemonic, imm, 12)
        return (imm12 << 20) | (rs1 << 15) | (rd << 7) | _OP_JALR
    if mnemonic == "ecall":
        return _OP_SYSTEM
    if mnemonic == "ebreak":
        return (1 << 20) | _OP_SYSTEM
    if mnemonic == "fence":
        return _OP_MISC_MEM
    if mnemonic == "fence.i":
        return (0b001 << 12) | _OP_MISC_MEM
    raise ValueError(f"unknown RV32I mnemonic {mnemonic!r}")
