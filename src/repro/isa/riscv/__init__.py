"""RISC-V RV32I front end.

A second ISA front end that lets the simulator run *real* programs instead
of only hand-written synthetic micro-op workloads:

* :mod:`repro.isa.riscv.decoder` -- decode (and re-encode) the full RV32I
  base instruction set,
* :mod:`repro.isa.riscv.asm` -- a two-pass assembler-lite for building test
  fixtures and the checked-in sample binary,
* :mod:`repro.isa.riscv.loader` -- flat-binary / ELF-lite loader producing a
  byte-addressed memory image,
* :mod:`repro.isa.riscv.lower` -- the lowering pass that cracks each RV32I
  instruction into the existing micro-op ISA so the functional core, the
  detailed core, the sampling planner and every tracker scheme run decoded
  programs unchanged.

The user-visible entry point is the ``riscv:<path>`` workload family (see
:mod:`repro.workloads.riscv`).
"""

from repro.isa.riscv.decoder import (
    DecodeError,
    DecodedInsn,
    decode,
    decode_all,
    encode,
)
from repro.isa.riscv.asm import AsmError, assemble
from repro.isa.riscv.loader import LoadedBinary, LoaderError, load_binary
from repro.isa.riscv.lower import LoweringError, lower, lower_image

__all__ = [
    "AsmError",
    "DecodeError",
    "DecodedInsn",
    "LoadedBinary",
    "LoaderError",
    "LoweringError",
    "assemble",
    "decode",
    "decode_all",
    "encode",
    "load_binary",
    "lower",
    "lower_image",
]
