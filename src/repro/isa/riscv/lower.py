"""Lowering: RV32I instructions -> the existing micro-op stream.

Each decoded RV32I instruction is *cracked* into a short, deterministic
sequence of micro-ops (the CISC-decode analog), so the functional core,
the detailed core, the sampling planner and every tracker scheme run real
programs completely unchanged.

Register mapping
----------------
The micro-op ISA has 16 integer architectural registers -- pinned by the
paper's x86_64 checkpoint-size argument (Section 4.3.3) and therefore not
negotiable -- while RV32I has 32.  The lowering maps:

* ``x0``       -> ``r0``, kept permanently zero (never written; writes to
  ``x0`` compute into a scratch so side effects such as loads still occur),
* ``x1..x12``  -> ``r1..r12`` directly (covers ra/sp/gp/tp/t0-t2/s0-s1/a0-a2),
* ``x13..x31`` -> a memory-resident *register bank* at :data:`REG_BANK_BASE`
  (one 4-byte slot per register, far above the 32-bit address space), read
  and written through absolute memory operands,
* ``r13/r14/r15`` are lowering scratch registers.

Spilling the upper registers to memory is exactly what an x86_64 compiler
does with RV32's extra registers, so the resulting micro-op mix (extra
loads/stores around high-register pressure) is the realistic one.

Value invariant
---------------
Micro-op registers are 64-bit; lowered code maintains the invariant that
every register and register-bank slot holds a *32-bit-clean* value (upper
32 bits zero).  Operations that can carry into bit 32 (add/sub/shift-left,
sign-extensions) are followed by an ``IANDI 0xFFFFFFFF``.  Signed compares
xor both operands with ``0x8000_0000`` and compare unsigned; ``sra`` widens
to a signed 64-bit value, shifts, and re-masks.

Control flow
------------
Every RV32I pc gets a label on its first micro-op.  Branches compare into a
scratch and emit ``BNZ``/``BZ``; ``jal`` becomes ``JMP`` (rd = x0) or a
link-register write plus ``CALL``; ``jalr x0, 0(rs1)`` (any rs1) becomes
``RET`` -- returns must dynamically match calls, which holds for compiled
call/return code.  Other ``jalr`` forms are *indirect* jumps, which the
micro-op ISA does not model: they raise :class:`LoweringError`.

``ecall``/``ebreak`` lower to ``HALT`` (the syscall-lite exit convention);
``fence``/``fence.i`` lower to ``NOP``; undecodable words lower to ``HALT``
so data interleaved with text is tolerated as long as it is never reached.
Branch targets outside the text segment resolve to a trailing ``HALT``.
"""

from __future__ import annotations

from pathlib import Path

from repro.isa.instructions import Instruction, MemOperand
from repro.isa.opcodes import Opcode
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import ArchReg, int_reg
from repro.isa.riscv.decoder import DecodedInsn, decode_all
from repro.isa.riscv.loader import LoadedBinary, load_binary

__all__ = ["LoweringError", "REG_BANK_BASE", "STACK_TOP", "lower", "lower_image"]

#: Base address of the x13..x31 register bank (far outside the 32-bit space
#: an RV32I program can address, so no program access can alias it).
REG_BANK_BASE = 0x100_0000_0000

#: Default initial stack pointer (grows down; far above typical load bases).
STACK_TOP = 0x0040_0000

_MASK32 = 0xFFFFFFFF
_SIGN32 = 0x8000_0000
_DIRECT_LIMIT = 13  # x1..x12 map to r1..r12

_ZERO = int_reg(0)
_S0, _S1, _S2 = int_reg(13), int_reg(14), int_reg(15)


class LoweringError(ValueError):
    """Raised when a decoded program cannot be expressed in micro-ops."""


def _bank_slot(xreg: int) -> int:
    return REG_BANK_BASE + 4 * xreg


def _pc_label(pc: int) -> str:
    return f"L{pc:08x}"


_EXIT_LABEL = "__exit"


class _Lowerer:
    """Lowers one decoded text segment into a micro-op program."""

    def __init__(self, binary: LoadedBinary, name: str) -> None:
        self.binary = binary
        self.b = ProgramBuilder(name)
        self.decoded = decode_all(binary.text)
        self.text_end = binary.text_base + 4 * len(self.decoded)

    # -- register plumbing -----------------------------------------------------

    def _read(self, xreg: int, scratch: ArchReg) -> ArchReg:
        """Return a micro-op register holding ``x<xreg>`` (may load a bank slot)."""
        if xreg == 0:
            return _ZERO
        if xreg < _DIRECT_LIMIT:
            return int_reg(xreg)
        self.b.load(scratch, offset=_bank_slot(xreg), size=4)
        return scratch

    def _dest(self, xreg: int) -> ArchReg:
        """The register a result for ``x<xreg>`` should be computed into."""
        if xreg == 0:
            return _S2  # computed then discarded: x0 stays zero
        if xreg < _DIRECT_LIMIT:
            return int_reg(xreg)
        return _S2

    def _write_back(self, xreg: int, reg: ArchReg) -> None:
        if xreg >= _DIRECT_LIMIT:
            self.b.store(reg, offset=_bank_slot(xreg), size=4)

    def _mask32(self, reg: ArchReg) -> None:
        self.b.andi(reg, reg, _MASK32)

    # -- addressing ------------------------------------------------------------

    def _address(self, rs1: int, imm: int) -> ArchReg:
        """Materialise ``(x<rs1> + imm) mod 2**32`` for a memory operand."""
        base = self._read(rs1, _S0)
        if imm == 0:
            return base
        self.b.addi(_S0, base, imm)
        self.b.andi(_S0, _S0, _MASK32)
        return _S0

    def _target_label(self, pc: int, offset: int) -> str:
        target = (pc + offset) & _MASK32
        if target % 4 == 0 and self.binary.text_base <= target < self.text_end:
            return _pc_label(target)
        return _EXIT_LABEL

    # -- per-format lowering ---------------------------------------------------

    def _lower_r_type(self, insn: DecodedInsn) -> None:
        b = self.b
        a = self._read(insn.rs1, _S0)
        c = self._read(insn.rs2, _S1)
        d = self._dest(insn.rd)
        m = insn.mnemonic
        if m == "add":
            b.add(d, a, c)
            self._mask32(d)
        elif m == "sub":
            b.sub(d, a, c)
            self._mask32(d)
        elif m == "xor":
            b.xor(d, a, c)
        elif m == "or":
            b.or_(d, a, c)
        elif m == "and":
            b.and_(d, a, c)
        elif m == "sltu":
            b.cmplt(d, a, c)
        elif m == "slt":
            b.movi(_S2, _SIGN32)
            b.xor(_S0, a, _S2)
            b.xor(_S1, c, _S2)
            b.cmplt(d, _S0, _S1)
        elif m == "sll":
            b.andi(_S1, c, 31)
            b.shl(d, a, _S1)
            self._mask32(d)
        elif m == "srl":
            b.andi(_S1, c, 31)
            b.shr(d, a, _S1)
        elif m == "sra":
            b.andi(_S1, c, 31)
            b.movi(_S2, _SIGN32)
            b.xor(_S0, a, _S2)
            b.sub(_S0, _S0, _S2)   # now a sign-extended 64-bit value
            b.shr(_S0, _S0, _S1)
            b.andi(d, _S0, _MASK32)
        else:  # pragma: no cover - decoder emits only the table above
            raise LoweringError(f"unhandled R-type {m}")
        self._write_back(insn.rd, d)

    def _lower_i_alu(self, insn: DecodedInsn) -> None:
        b = self.b
        m, imm = insn.mnemonic, insn.imm
        if m == "addi" and insn.rd == 0 and insn.rs1 == 0:
            b.nop()  # canonical nop (and any addi x0, x0, imm)
            return
        a = self._read(insn.rs1, _S0)
        d = self._dest(insn.rd)
        if m == "addi":
            if insn.rs1 == 0:
                b.movi(d, imm & _MASK32)
            elif imm == 0:
                # Canonical `mv rd, rs`: a full-width move, eligible for move
                # elimination -- this is what makes the tracker-scheme
                # comparison meaningful on compiled code.
                b.mov(d, a)
            else:
                b.addi(d, a, imm)
                self._mask32(d)
        elif m == "andi":
            b.andi(d, a, imm & _MASK32)
        elif m == "xori":
            b.movi(_S1, imm & _MASK32)
            b.xor(d, a, _S1)
        elif m == "ori":
            b.movi(_S1, imm & _MASK32)
            b.or_(d, a, _S1)
        elif m == "sltiu":
            b.movi(_S1, imm & _MASK32)
            b.cmplt(d, a, _S1)
        elif m == "slti":
            b.movi(_S1, _SIGN32)
            b.xor(_S1, a, _S1)
            b.movi(_S2, (imm & _MASK32) ^ _SIGN32)
            b.cmplt(d, _S1, _S2)
        elif m == "slli":
            b.shli(d, a, imm)
            self._mask32(d)
        elif m == "srli":
            b.shri(d, a, imm)
        elif m == "srai":
            b.movi(_S1, _SIGN32)
            b.xor(_S2, a, _S1)
            b.sub(_S2, _S2, _S1)
            b.shri(_S2, _S2, imm)
            b.andi(d, _S2, _MASK32)
        else:  # pragma: no cover
            raise LoweringError(f"unhandled I-type {m}")
        self._write_back(insn.rd, d)

    _LOAD_SPECS = {"lw": (4, None, None), "lbu": (4, 0xFF, None),
                   "lhu": (4, 0xFFFF, None), "lb": (4, 0xFF, 0x80),
                   "lh": (4, 0xFFFF, 0x8000)}

    def _lower_load(self, insn: DecodedInsn) -> None:
        b = self.b
        addr = self._address(insn.rs1, insn.imm)
        d = self._dest(insn.rd)
        _size, mask, sign_bit = self._LOAD_SPECS[insn.mnemonic]
        if mask is None:
            b.load(d, base=addr, size=4)
        elif sign_bit is None:
            b.load(_S1, base=addr, size=4)
            b.andi(d, _S1, mask)
        else:
            b.load(_S1, base=addr, size=4)
            b.andi(_S1, _S1, mask)
            b.movi(_S2, sign_bit)
            b.xor(_S1, _S1, _S2)
            b.sub(_S1, _S1, _S2)
            b.andi(d, _S1, _MASK32)
        self._write_back(insn.rd, d)

    _STORE_MASKS = {"sb": (0xFFFFFF00, 0xFF), "sh": (0xFFFF0000, 0xFFFF)}

    def _lower_store(self, insn: DecodedInsn) -> None:
        b = self.b
        addr = self._address(insn.rs1, insn.imm)
        value = self._read(insn.rs2, _S1)
        if insn.mnemonic == "sw":
            b.store(value, base=addr, size=4)
            return
        # Sub-word store: read-modify-write of the containing word.  Both
        # execution paths crack it the same way, so digests stay identical.
        keep_mask, value_mask = self._STORE_MASKS[insn.mnemonic]
        b.load(_S2, base=addr, size=4)
        b.andi(_S2, _S2, keep_mask)
        b.andi(_S1, value, value_mask)
        b.or_(_S2, _S2, _S1)
        b.store(_S2, base=addr, size=4)

    def _lower_branch(self, insn: DecodedInsn, pc: int) -> None:
        b = self.b
        target = self._target_label(pc, insn.imm)
        a = self._read(insn.rs1, _S0)
        c = self._read(insn.rs2, _S1)
        m = insn.mnemonic
        if m in ("blt", "bge"):
            b.movi(_S2, _SIGN32)
            b.xor(_S0, a, _S2)
            b.xor(_S1, c, _S2)
            b.cmplt(_S2, _S0, _S1)
        elif m in ("bltu", "bgeu"):
            b.cmplt(_S2, a, c)
        else:  # beq / bne
            b.cmpeq(_S2, a, c)
        if m in ("beq", "blt", "bltu"):
            b.bnz(_S2, target)
        else:
            b.bz(_S2, target)

    def _lower_jal(self, insn: DecodedInsn, pc: int) -> None:
        target = self._target_label(pc, insn.imm)
        if insn.rd == 0:
            self.b.jmp(target)
            return
        d = self._dest(insn.rd)
        self.b.movi(d, (pc + 4) & _MASK32)
        self._write_back(insn.rd, d)
        self.b.call(target)

    def _lower_jalr(self, insn: DecodedInsn, pc: int) -> None:
        if insn.rd == 0 and insn.imm == 0:
            # `jalr x0, 0(rs1)` for any rs1: a return.  Correct whenever
            # returns dynamically match calls (true for compiled code).
            self.b.ret()
            return
        raise LoweringError(
            f"pc {pc:#x}: {insn} is an indirect jump; the micro-op ISA has no "
            f"indirect control flow (supported: jal, and jalr x0, 0(rs) as a "
            f"return)")

    # -- driver ----------------------------------------------------------------

    def _lower_one(self, insn: DecodedInsn | None, pc: int) -> None:
        self.b.label(_pc_label(pc))
        if insn is None:
            self.b.halt()  # data or undecodable word: stop if ever reached
            return
        m = insn.mnemonic
        if insn.fmt == "R":
            self._lower_r_type(insn)
        elif m in self._LOAD_SPECS:
            self._lower_load(insn)
        elif insn.fmt == "S":
            self._lower_store(insn)
        elif insn.fmt == "B":
            self._lower_branch(insn, pc)
        elif m == "jal":
            self._lower_jal(insn, pc)
        elif m == "jalr":
            self._lower_jalr(insn, pc)
        elif m in ("lui", "auipc"):
            value = insn.imm if m == "lui" else (pc + insn.imm) & _MASK32
            d = self._dest(insn.rd)
            self.b.movi(d, value)
            self._write_back(insn.rd, d)
        elif m in ("ecall", "ebreak"):
            self.b.halt()
        elif m in ("fence", "fence.i"):
            self.b.nop()
        else:
            self._lower_i_alu(insn)

    def lower(self) -> Program:
        entry = self.binary.entry
        if entry != self.binary.text_base:
            self.b.jmp(_pc_label(entry))
        for index, insn in enumerate(self.decoded):
            self._lower_one(insn, self.binary.text_base + 4 * index)
        self.b.label(_EXIT_LABEL)
        self.b.halt()  # falling off the end (or leaving text) exits cleanly
        return self.b.build()


def lower(binary: LoadedBinary, name: str = "riscv") -> Program:
    """Lower a loaded RV32I binary into a micro-op :class:`Program`."""
    return _Lowerer(binary, name).lower()


def _word_image(byte_image: dict[int, int]) -> dict[int, int]:
    """Fold a byte image into the 8-byte-word image WorkloadImage expects."""
    words: dict[int, int] = {}
    for address, byte in byte_image.items():
        base = address & ~0x7
        words[base] = words.get(base, 0) | (byte & 0xFF) << (8 * (address - base))
    return words


def lower_image(source: str | Path | bytes, name: str = "riscv",
                base: int = 0x1000, stack_top: int = STACK_TOP):
    """Load, decode and lower an RV32I binary into a runnable workload image.

    The memory image contains every loaded segment byte (so absolute data
    references into .text/.rodata read the original bytes) and ``sp`` (x2)
    starts at ``stack_top``.  Returns a
    :class:`~repro.workloads.base.WorkloadImage`.
    """
    # Imported lazily: repro.workloads registers the riscv workload family,
    # which imports this module -- a top-level import would be circular.
    from repro.workloads.base import WorkloadImage

    binary = load_binary(source, base=base)
    program = lower(binary, name=name)
    return WorkloadImage(
        program=program,
        initial_regs={int_reg(2): stack_top},
        initial_memory=_word_image(binary.memory),
    )
