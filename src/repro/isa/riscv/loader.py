"""Flat-binary / ELF-lite loader for RV32I images.

Produces a :class:`LoadedBinary`: the text bytes to decode plus a sparse
byte-addressed memory image holding *every* loaded segment (so pc-relative
and absolute data references into .text/.rodata observe the original bytes).

Two container formats:

* **flat binary** -- the whole file is text, loaded at ``base``
  (default ``0x1000``) with the entry point at ``base``;
* **ELF-lite** -- a 32-bit little-endian ``ET_EXEC`` ELF for ``EM_RISCV``.
  Only program headers are consulted: every ``PT_LOAD`` segment is placed
  at its ``p_vaddr`` (zero-filling up to ``p_memsz``) and the segment
  containing ``e_entry`` is treated as text.  Section headers, relocation
  and dynamic linking are out of scope.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["LoadedBinary", "LoaderError", "load_binary"]

_ELF_MAGIC = b"\x7fELF"
_EM_RISCV = 243


class LoaderError(ValueError):
    """Raised when a binary cannot be loaded."""


@dataclass
class LoadedBinary:
    """A loaded RV32I program image.

    Attributes
    ----------
    text_base:
        Virtual address of the first text byte.
    text:
        The raw bytes to decode as instructions.
    entry:
        Entry-point virtual address (must fall inside text).
    memory:
        Sparse byte image (address -> byte value) of every loaded segment.
    source:
        Where the image came from (path or ``"<bytes>"``), for messages.
    """

    text_base: int
    text: bytes
    entry: int
    memory: dict[int, int] = field(default_factory=dict)
    source: str = "<bytes>"

    def __post_init__(self) -> None:
        if self.text_base % 4 or self.entry % 4:
            raise LoaderError(
                f"{self.source}: text base {self.text_base:#x} and entry "
                f"{self.entry:#x} must be 4-byte aligned")
        if not self.text_base <= self.entry < self.text_base + max(len(self.text), 1):
            raise LoaderError(
                f"{self.source}: entry {self.entry:#x} outside text "
                f"[{self.text_base:#x}, {self.text_base + len(self.text):#x})")


def _load_flat(blob: bytes, base: int, source: str) -> LoadedBinary:
    if not blob:
        raise LoaderError(f"{source}: empty binary")
    if len(blob) % 4:
        raise LoaderError(f"{source}: flat binary length {len(blob)} is not a "
                          f"multiple of 4")
    memory = {base + i: b for i, b in enumerate(blob)}
    return LoadedBinary(text_base=base, text=blob, entry=base,
                        memory=memory, source=source)


def _load_elf(blob: bytes, source: str) -> LoadedBinary:
    if len(blob) < 52:
        raise LoaderError(f"{source}: truncated ELF header")
    ident = blob[:16]
    if ident[4] != 1 or ident[5] != 1:
        raise LoaderError(f"{source}: only ELF32 little-endian is supported")
    (_etype, machine, _version, entry, phoff, _shoff, _flags, _ehsize,
     phentsize, phnum) = struct.unpack_from("<HHIIIIIHHH", blob, 16)
    if machine != _EM_RISCV:
        raise LoaderError(f"{source}: ELF machine {machine} is not RISC-V "
                          f"({_EM_RISCV})")
    if phnum == 0:
        raise LoaderError(f"{source}: ELF has no program headers")
    memory: dict[int, int] = {}
    text_base, text = None, b""
    for i in range(phnum):
        off = phoff + i * phentsize
        if off + 32 > len(blob):
            raise LoaderError(f"{source}: program header {i} out of bounds")
        p_type, p_offset, p_vaddr, _p_paddr, p_filesz, p_memsz, _p_flags, \
            _p_align = struct.unpack_from("<IIIIIIII", blob, off)
        if p_type != 1:  # PT_LOAD
            continue
        if p_offset + p_filesz > len(blob):
            raise LoaderError(f"{source}: PT_LOAD segment {i} exceeds file size")
        data = blob[p_offset:p_offset + p_filesz]
        data += b"\x00" * (p_memsz - p_filesz)
        for j, byte in enumerate(data):
            memory[p_vaddr + j] = byte
        if p_vaddr <= entry < p_vaddr + max(p_memsz, 1):
            text_base, text = p_vaddr, data
    if text_base is None:
        raise LoaderError(f"{source}: no PT_LOAD segment contains the entry "
                          f"point {entry:#x}")
    if len(text) % 4:
        text += b"\x00" * (4 - len(text) % 4)
    return LoadedBinary(text_base=text_base, text=bytes(text), entry=entry,
                        memory=memory, source=source)


def load_binary(source: str | Path | bytes, base: int = 0x1000) -> LoadedBinary:
    """Load an RV32I binary from a path or raw bytes.

    ELF images are recognised by magic; anything else is treated as a flat
    binary placed at ``base``.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise LoaderError(f"cannot read RV32I binary {path}: {exc}") from exc
        name = str(path)
    else:
        blob, name = bytes(source), "<bytes>"
    if blob[:4] == _ELF_MAGIC:
        return _load_elf(blob, name)
    return _load_flat(blob, base, name)
