"""A set-associative branch target buffer.

The BTB supplies the target of taken branches at fetch time.  Table 1 of the
paper uses a 2-way, 4K-entry BTB.  In the trace-driven model a BTB miss on a
taken branch costs a front-end redirect bubble (the target only becomes
known once the branch is decoded), which the pipeline charges as a small
fixed penalty.
"""

from __future__ import annotations


class BranchTargetBuffer:
    """A ``ways``-associative BTB with true-LRU replacement inside each set."""

    def __init__(self, entries: int = 4096, ways: int = 2) -> None:
        if entries <= 0 or ways <= 0:
            raise ValueError("BTB entries and ways must be positive")
        if entries % ways:
            raise ValueError("BTB entries must be a multiple of the associativity")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        # Each set maps pc -> target and keeps insertion-ordered keys for LRU.
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) % self.sets

    def lookup(self, pc: int) -> int | None:
        """Return the predicted target for the branch at ``pc``, or ``None`` on a miss."""
        entry_set = self._sets[self._set_index(pc)]
        target = entry_set.get(pc)
        if target is None:
            self.misses += 1
            return None
        # Refresh LRU position.
        del entry_set[pc]
        entry_set[pc] = target
        self.hits += 1
        return target

    def update(self, pc: int, target: int) -> None:
        """Install or refresh the target of the branch at ``pc``."""
        entry_set = self._sets[self._set_index(pc)]
        if pc in entry_set:
            del entry_set[pc]
        elif len(entry_set) >= self.ways:
            oldest = next(iter(entry_set))
            del entry_set[oldest]
        entry_set[pc] = target

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> list:
        """Serialise every set as ``[pc, target]`` pairs in LRU order (oldest first)."""
        return [[[pc, target] for pc, target in entry_set.items()]
                for entry_set in self._sets]

    def restore_snapshot(self, snapshot: list) -> None:
        """Overwrite the BTB contents with a :meth:`to_snapshot` image."""
        if len(snapshot) != self.sets:
            raise ValueError("BTB snapshot geometry does not match this BTB")
        self._sets = [{pc: target for pc, target in rows} for rows in snapshot]

    def storage_bits(self, target_bits: int = 32, tag_bits: int = 20) -> int:
        """Approximate storage requirement in bits."""
        return self.entries * (target_bits + tag_bits)

    def __repr__(self) -> str:
        return f"BranchTargetBuffer(entries={self.entries}, ways={self.ways})"
