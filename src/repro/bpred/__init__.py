"""Branch prediction substrate: TAGE, BTB and return address stack.

Table 1 of the paper specifies the front end as a TAGE predictor with one
base component plus twelve tagged components (about 15K entries total), a
2-way 4K-entry BTB and a 32-entry return address stack, with a 20-cycle
minimum misprediction penalty.  This package implements all three
structures; the TAGE predictor is parameterisable so that smaller (faster to
simulate) geometries can be used without changing its behaviour.
"""

from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.ras import ReturnAddressStack
from repro.bpred.tage import TageBranchPredictor, TageConfig

__all__ = [
    "TageBranchPredictor",
    "TageConfig",
    "BranchTargetBuffer",
    "ReturnAddressStack",
]
