"""A TAGE conditional branch predictor.

The paper's front end uses a 1+12-component TAGE predictor [Seznec &
Michaud, 2006] with roughly 15K entries and a 20-cycle minimum misprediction
penalty.  The same TAGE machinery is reused (with different payloads) by the
Instruction Distance predictor in :mod:`repro.core.distance`, so this module
keeps the classic prediction/update algorithm:

* the *base* component is a direct-mapped table of bimodal counters;
* each *tagged* component is indexed by a hash of the PC, a geometric number
  of global-history bits and a few path-history bits, and stores a partial
  tag, a 3-bit signed prediction counter and a 2-bit useful counter;
* the longest-history matching component provides the prediction, the next
  longest (or the base) provides the alternate prediction;
* on a misprediction, an entry is allocated in a longer-history component
  whose useful counter is zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.hashing import mix_hash, tag_hash
from repro.common.history import PathHistory, ShiftHistory


@dataclass(frozen=True)
class TageComponentConfig:
    """Geometry of one tagged TAGE component."""

    entries: int
    tag_bits: int
    history_bits: int

    def __post_init__(self) -> None:
        if self.entries < 2 or self.entries & (self.entries - 1):
            raise ValueError(f"component entries must be a power of two >= 2, got {self.entries}")
        if self.tag_bits < 1:
            raise ValueError("tag_bits must be >= 1")
        if self.history_bits < 1:
            raise ValueError("history_bits must be >= 1")


@dataclass(frozen=True)
class TageConfig:
    """Geometry of the whole TAGE predictor."""

    base_entries: int = 4096
    components: tuple[TageComponentConfig, ...] = (
        TageComponentConfig(1024, 9, 4),
        TageComponentConfig(1024, 9, 9),
        TageComponentConfig(1024, 10, 18),
        TageComponentConfig(1024, 10, 35),
        TageComponentConfig(512, 11, 67),
        TageComponentConfig(512, 12, 130),
    )
    path_bits: int = 16
    counter_bits: int = 3
    useful_bits: int = 2
    useful_reset_period: int = 256 * 1024

    @classmethod
    def table1(cls) -> "TageConfig":
        """The 1+12 component configuration of the paper's Table 1 (about 15K entries)."""
        histories = (4, 6, 10, 16, 25, 40, 64, 101, 160, 254, 403, 640)
        components = []
        for rank, history in enumerate(histories):
            entries = 1024 if rank < 8 else 512
            tag_bits = 8 + min(rank, 6)
            components.append(TageComponentConfig(entries, tag_bits, history))
        return cls(base_entries=4096, components=tuple(components))

    @property
    def total_entries(self) -> int:
        """Total number of entries across the base and tagged components."""
        return self.base_entries + sum(component.entries for component in self.components)

    @property
    def max_history_bits(self) -> int:
        """Longest global history length used by any component."""
        return max(component.history_bits for component in self.components)


@dataclass
class _TaggedEntry:
    """One entry of a tagged component."""

    tag: int = 0
    counter: int = 0
    useful: int = 0
    valid: bool = False


@dataclass(frozen=True)
class TagePrediction:
    """The outcome of a TAGE lookup, kept until the branch resolves.

    The pipeline carries this object from fetch to execute so that
    :meth:`TageBranchPredictor.update` can be fed exactly the state used for
    the prediction (indices and tags would otherwise have to be recomputed
    with a stale history).
    """

    taken: bool
    provider: int  # component index, -1 for the base predictor
    provider_index: int
    alt_taken: bool
    alt_provider: int
    alt_index: int
    base_index: int
    indices: tuple[int, ...]
    tags: tuple[int, ...]
    weak: bool


class TageBranchPredictor:
    """TAGE predictor over conditional branch directions."""

    def __init__(self, config: TageConfig | None = None) -> None:
        self.config = config or TageConfig()
        half = 1 << (self.config.counter_bits - 1)
        self._counter_max = (1 << self.config.counter_bits) - 1
        self._counter_weakly_taken = half
        self._useful_max = (1 << self.config.useful_bits) - 1
        self._base = [half] * self.config.base_entries
        self._tables: list[list[_TaggedEntry]] = [
            [_TaggedEntry() for _ in range(component.entries)]
            for component in self.config.components
        ]
        self._lookups = 0
        self._allocation_clock = 0

    # -- prediction ---------------------------------------------------------------

    def predict(self, pc: int, history: ShiftHistory, path: PathHistory) -> TagePrediction:
        """Predict the direction of the conditional branch at ``pc``."""
        config = self.config
        base_index = (pc >> 2) % config.base_entries
        indices: list[int] = []
        tags: list[int] = []
        hits: list[int] = []
        for comp_id, component in enumerate(config.components):
            index_bits = component.entries.bit_length() - 1
            index = mix_hash(pc, history.bits(component.history_bits), component.history_bits,
                             path.bits(config.path_bits), config.path_bits, index_bits)
            tag = tag_hash(pc, history.bits(component.history_bits), component.history_bits,
                           component.tag_bits)
            indices.append(index)
            tags.append(tag)
            entry = self._tables[comp_id][index]
            if entry.valid and entry.tag == tag:
                hits.append(comp_id)

        base_taken = self._base[base_index] >= self._counter_weakly_taken
        if hits:
            provider = hits[-1]
            provider_entry = self._tables[provider][indices[provider]]
            taken = provider_entry.counter >= self._counter_weakly_taken
            weak = provider_entry.counter in (self._counter_weakly_taken - 1,
                                              self._counter_weakly_taken)
            if len(hits) >= 2:
                alt_provider = hits[-2]
                alt_entry = self._tables[alt_provider][indices[alt_provider]]
                alt_taken = alt_entry.counter >= self._counter_weakly_taken
                alt_index = indices[alt_provider]
            else:
                alt_provider = -1
                alt_taken = base_taken
                alt_index = base_index
            # Newly allocated (weak) entries are less trustworthy than the
            # alternate prediction, per the original TAGE policy.
            if weak and not provider_entry.useful:
                taken = alt_taken
        else:
            provider = -1
            taken = base_taken
            alt_provider = -1
            alt_taken = base_taken
            alt_index = base_index
            weak = self._base[base_index] in (self._counter_weakly_taken - 1,
                                              self._counter_weakly_taken)

        self._lookups += 1
        return TagePrediction(
            taken=taken,
            provider=provider,
            provider_index=indices[provider] if provider >= 0 else base_index,
            alt_taken=alt_taken,
            alt_provider=alt_provider,
            alt_index=alt_index,
            base_index=base_index,
            indices=tuple(indices),
            tags=tuple(tags),
            weak=weak,
        )

    # -- update -------------------------------------------------------------------

    def update(self, pc: int, taken: bool, prediction: TagePrediction) -> None:
        """Train the predictor with the resolved outcome of a predicted branch."""
        config = self.config
        mispredicted = prediction.taken != taken

        # Update the provider (or the base table).
        if prediction.provider >= 0:
            entry = self._tables[prediction.provider][prediction.provider_index]
            entry.counter = self._saturate(entry.counter, taken)
            if prediction.taken != prediction.alt_taken:
                if prediction.taken == taken:
                    entry.useful = min(entry.useful + 1, self._useful_max)
                else:
                    entry.useful = max(entry.useful - 1, 0)
            # Also train the base predictor when the provider entry is weak,
            # keeping the bimodal table a useful fallback.
            if prediction.weak:
                self._base[prediction.base_index] = self._saturate(
                    self._base[prediction.base_index], taken)
        else:
            self._base[prediction.base_index] = self._saturate(
                self._base[prediction.base_index], taken)

        # Allocate a new entry in a longer-history component on a misprediction.
        if mispredicted and prediction.provider < len(config.components) - 1:
            self._allocate(prediction, taken)

        # Periodic graceful aging of the useful counters.
        self._allocation_clock += 1
        if self._allocation_clock >= config.useful_reset_period:
            self._allocation_clock = 0
            for table in self._tables:
                for entry in table:
                    entry.useful >>= 1

    def _allocate(self, prediction: TagePrediction, taken: bool) -> None:
        """Allocate an entry in one component with longer history than the provider."""
        start = prediction.provider + 1
        for comp_id in range(start, len(self.config.components)):
            entry = self._tables[comp_id][prediction.indices[comp_id]]
            if not entry.valid or entry.useful == 0:
                entry.valid = True
                entry.tag = prediction.tags[comp_id]
                entry.counter = self._counter_weakly_taken if taken \
                    else self._counter_weakly_taken - 1
                entry.useful = 0
                return
        # No free entry: decay the useful counters on the candidate path so
        # that a later allocation succeeds (standard TAGE behaviour).
        for comp_id in range(start, len(self.config.components)):
            entry = self._tables[comp_id][prediction.indices[comp_id]]
            entry.useful = max(entry.useful - 1, 0)

    def _saturate(self, counter: int, taken: bool) -> int:
        """Move a prediction counter toward the observed outcome."""
        if taken:
            return min(counter + 1, self._counter_max)
        return max(counter - 1, 0)

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> dict:
        """Serialise the predictor's trained state (counters, tags, useful bits).

        Statistics (``lookups``) are deliberately not part of the snapshot:
        snapshots carry *state*, and every detailed window accounts for its
        own events.
        """
        return {
            "base": list(self._base),
            "tables": [[[e.tag, e.counter, e.useful, 1 if e.valid else 0]
                        for e in table] for table in self._tables],
            "allocation_clock": self._allocation_clock,
        }

    def restore_snapshot(self, snapshot: dict) -> None:
        """Overwrite the trained state with a :meth:`to_snapshot` image."""
        if len(snapshot["base"]) != len(self._base) or \
                [len(rows) for rows in snapshot["tables"]] != \
                [len(table) for table in self._tables]:
            raise ValueError("TAGE snapshot geometry does not match this predictor")
        self._base[:] = snapshot["base"]
        for table, rows in zip(self._tables, snapshot["tables"]):
            for entry, (tag, counter, useful, valid) in zip(table, rows):
                entry.tag = tag
                entry.counter = counter
                entry.useful = useful
                entry.valid = bool(valid)
        self._allocation_clock = snapshot["allocation_clock"]

    # -- introspection ------------------------------------------------------------

    @property
    def lookups(self) -> int:
        """Number of predictions made so far."""
        return self._lookups

    def storage_bits(self) -> int:
        """Approximate storage requirement of the predictor in bits."""
        config = self.config
        bits = config.base_entries * config.counter_bits
        for component in config.components:
            entry_bits = component.tag_bits + config.counter_bits + config.useful_bits
            bits += component.entries * entry_bits
        return bits
