"""A return address stack.

Calls push their fall-through address; returns pop the predicted target.
The stack is a fixed-size circular structure, so deep recursion silently
wraps and older entries are lost -- exactly the behaviour that makes real
return address stacks occasionally mispredict.
"""

from __future__ import annotations


class ReturnAddressStack:
    """A fixed-depth return address stack (32 entries in Table 1)."""

    def __init__(self, depth: int = 32) -> None:
        if depth < 1:
            raise ValueError("return address stack depth must be >= 1")
        self.depth = depth
        self._stack: list[int] = []
        self.overflows = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        """Record the fall-through address of a call."""
        if len(self._stack) >= self.depth:
            # The oldest entry is lost, as in a real circular RAS.
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(return_address)

    def pop(self) -> int | None:
        """Predict the target of a return; ``None`` when the stack is empty."""
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def peek(self) -> int | None:
        """Return the top of the stack without popping it."""
        return self._stack[-1] if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)

    def clear(self) -> None:
        """Empty the stack (used on pipeline flushes that discard call context)."""
        self._stack.clear()

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> list[int]:
        """Serialise the stack contents (bottom first)."""
        return list(self._stack)

    def restore_snapshot(self, snapshot: list[int]) -> None:
        """Overwrite the stack with a :meth:`to_snapshot` image."""
        if len(snapshot) > self.depth:
            raise ValueError("RAS snapshot deeper than this stack")
        self._stack[:] = snapshot

    def __repr__(self) -> str:
        return f"ReturnAddressStack(depth={self.depth}, occupancy={len(self._stack)})"
