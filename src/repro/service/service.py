"""The sweep service engine: a job queue over the sweep harness.

:class:`SweepService` multiplexes many concurrent clients onto the
existing scheduler stack (:func:`~repro.experiments.runner.run_sweep`
with a shared :class:`~repro.paper.store.ResultsStore`), independent of
any transport -- :mod:`repro.service.server` is the HTTP skin over it.

Isolation model
---------------
Each submission becomes a :class:`SweepJob` running on a bounded thread
pool.  Per-client **quotas** cap how many active (queued or running)
jobs one client may hold, and a global **queue limit** bounds the
service; both reject at submit time rather than degrade everyone.

All jobs share one results store *path* but each opens its own
:class:`~repro.paper.store.ResultsStore` instance with a unique owner
identity, so the store's cell-granular leases partition overlapping
grids between concurrent jobs: every unique cell simulates exactly once,
later and concurrent requesters read it back (``from_store``), and a
repeat of an already-served sweep costs zero simulation.

Cancellation rides the runner's own drain path: the per-cell progress
callback raises :class:`KeyboardInterrupt` once a job's cancel flag is
set, which makes :func:`~repro.experiments.runner.run_jobs` release the
job's leases and close its store on a line boundary -- exactly what
Ctrl-C does to ``repro sweep --resume``.

Observability: every job carries a :class:`~repro.telemetry.runlog
.RunLogger` whose events (``cell_simulated`` / ``cell_from_store`` /
``sweep_*`` lifecycle, plus everything the runner logs) are both counted
(:attr:`~repro.telemetry.runlog.RunLogger.counters`, surfaced in status
payloads) and published to per-job subscribers for SSE streaming; a
service-wide :class:`~repro.telemetry.metrics.MetricsRegistry` backs
``GET /metrics``.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.experiments.faults import FaultPlan
from repro.experiments.grid import SweepSpec
from repro.experiments.runner import run_sweep
from repro.experiments.scheduler import ReliabilityStats, RetryPolicy
from repro.paper.store import ResultsStore
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runlog import RunLogger

#: Job states; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Watchdog budget for fault-injected jobs (an injected hang must trip a
#: timeout well before :attr:`FaultPlan.hang_seconds`), mirroring the CLI.
_FAULT_TIMEOUT_SECONDS = 20.0


class ServiceError(Exception):
    """Base for submit-time rejections (maps to an HTTP status upstream)."""

    code = "service_error"


class QuotaExceeded(ServiceError):
    """The client already holds its quota of active jobs."""

    code = "quota_exceeded"


class QueueFull(ServiceError):
    """The service-wide active-job limit is reached."""

    code = "queue_full"


class UnknownJob(ServiceError):
    """No job with the requested id."""

    code = "unknown_job"


class _JobLogger(RunLogger):
    """A RunLogger that also publishes every event to the job's stream."""

    def __init__(self, job: "SweepJob") -> None:
        super().__init__()
        self._job = job

    def event(self, event: str, level: str = "info", **fields) -> dict:
        record = super().event(event, level=level, **fields)
        self._job.publish(record)
        return record


class SweepJob:
    """One submitted sweep: state machine, event stream, result."""

    def __init__(self, job_id: str, client: str, spec: SweepSpec,
                 fault_plan: FaultPlan | None = None) -> None:
        self.id = job_id
        self.client = client
        self.spec = spec
        self.fault_plan = fault_plan
        self.state = "queued"
        self.error: str | None = None
        self.report = None  # SweepReport once done
        self.cells_total = spec.job_count()
        self.cells_done = 0
        self.cells_simulated = 0
        self.cells_from_store = 0
        self.cancel_event = threading.Event()
        #: Event stream for SSE: appended under :attr:`cond`, never mutated.
        self.events: list[dict] = []
        self.cond = threading.Condition()
        self.logger = _JobLogger(self)
        self.stats = ReliabilityStats()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def publish(self, record: dict) -> None:
        """Append one event and wake every waiting subscriber."""
        with self.cond:
            self.events.append(dict(record, seq=len(self.events)))
            self.cond.notify_all()

    def status(self) -> dict:
        """JSON-serialisable snapshot (the ``GET /sweeps/{id}`` body)."""
        with self.cond:
            return {
                "id": self.id,
                "client": self.client,
                "state": self.state,
                "cells": {
                    "total": self.cells_total,
                    "done": self.cells_done,
                    "simulated": self.cells_simulated,
                    "from_store": self.cells_from_store,
                },
                "counters": dict(self.logger.counters),
                "events": len(self.events),
                "error": self.error,
            }


class SweepService:
    """The multi-client job queue over :func:`run_sweep` (see module docs)."""

    def __init__(self, store_path, workers: int = 1,
                 cache_dir: str | None = None, max_concurrent: int = 2,
                 quota: int = 2, queue_limit: int = 8,
                 fsync: bool = True, retry: RetryPolicy | None = None) -> None:
        self.store_path = store_path
        self.workers = workers
        self.cache_dir = cache_dir
        self.quota = quota
        self.queue_limit = queue_limit
        self.fsync = fsync
        self.retry = retry
        self.metrics = MetricsRegistry()
        self._jobs: dict[str, SweepJob] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._executor = ThreadPoolExecutor(max_workers=max_concurrent,
                                            thread_name_prefix="sweep")

    # -- submission / lifecycle -----------------------------------------------------

    def active_jobs(self, client: str | None = None) -> list[SweepJob]:
        """Non-terminal jobs, optionally restricted to one client."""
        with self._lock:
            return [job for job in self._jobs.values() if not job.terminal
                    and (client is None or job.client == client)]

    def submit(self, spec: SweepSpec, client: str = "anonymous",
               fault_plan: FaultPlan | None = None) -> SweepJob:
        """Queue one sweep; raises :class:`QuotaExceeded` / :class:`QueueFull`."""
        with self._lock:
            active = [job for job in self._jobs.values() if not job.terminal]
            if len(active) >= self.queue_limit:
                raise QueueFull(
                    f"service is at its limit of {self.queue_limit} active "
                    f"sweep(s); retry once one finishes")
            if sum(job.client == client for job in active) >= self.quota:
                raise QuotaExceeded(
                    f"client {client!r} already holds {self.quota} active "
                    f"sweep(s) (the per-client quota)")
            job = SweepJob(f"sweep-{next(self._ids):04d}", client, spec,
                           fault_plan=fault_plan)
            self._jobs[job.id] = job
        self.metrics.inc("service_sweeps_submitted_total")
        job.logger.event("sweep_queued", id=job.id, client=client,
                         cells=job.cells_total)
        self._executor.submit(self._run, job)
        return job

    def get(self, job_id: str) -> SweepJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(f"no sweep with id {job_id!r}")
        return job

    def jobs(self) -> list[SweepJob]:
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> SweepJob:
        """Cancel a job: immediately when queued, via the drain path when running.

        Terminal jobs are left as they are (cancel is idempotent but never
        rewrites history).  Either way the job's queue slot is freed the
        moment it reaches a terminal state, so quota accounting recovers.
        """
        job = self.get(job_id)
        with self._lock:
            if job.state == "queued":
                job.cancel_event.set()
                self._finish(job, "cancelled")
                return job
        job.cancel_event.set()
        return job

    def shutdown(self) -> None:
        """Cancel everything and stop the worker pool (server teardown)."""
        for job in self.jobs():
            if not job.terminal:
                job.cancel_event.set()
        self._executor.shutdown(wait=True, cancel_futures=True)

    # -- execution ------------------------------------------------------------------

    def _finish(self, job: SweepJob, state: str) -> None:
        """Move a job to a terminal state and emit the terminal event."""
        job.state = state
        self.metrics.inc("service_sweeps_finished_total",
                         labels={"state": state})
        job.logger.event(f"sweep_{state}", id=job.id,
                         cells_done=job.cells_done,
                         cells_simulated=job.cells_simulated,
                         cells_from_store=job.cells_from_store)

    def _run(self, job: SweepJob) -> None:
        with self._lock:
            if job.terminal:  # cancelled while still queued
                return
            job.state = "running"
        job.logger.event("sweep_started", id=job.id)
        store = ResultsStore(self.store_path, owner=f"svc-{job.id}",
                             fsync=self.fsync)

        def progress(completed: int, total: int, job_result) -> None:
            if job.cancel_event.is_set():
                # Rides the runner's Ctrl-C drain: leases released, store
                # closed on a line boundary, sweep exits resumable.
                raise KeyboardInterrupt
            with job.cond:
                job.cells_done += 1
                if job_result.from_store:
                    job.cells_from_store += 1
                else:
                    job.cells_simulated += 1
            name = ("cell_from_store" if job_result.from_store
                    else "cell_simulated")
            job.logger.event(name, job_id=job_result.job.job_id,
                             ok=job_result.ok, completed=completed,
                             total=total)

        timeout = (_FAULT_TIMEOUT_SECONDS if job.fault_plan is not None
                   else None)
        try:
            report = run_sweep(job.spec, workers=self.workers,
                               cache_dir=self.cache_dir, timeout=timeout,
                               progress=progress, store=store,
                               logger=job.logger, fault_plan=job.fault_plan,
                               retry=self.retry, stats=job.stats)
        except KeyboardInterrupt:
            # The runner already released this job's leases and closed the
            # store; only the bookkeeping is left.
            self._finish(job, "cancelled")
            return
        except Exception as exc:  # pragma: no cover - defensive surface
            store.close()
            job.error = f"{type(exc).__name__}: {exc}"
            self._finish(job, "failed")
            return
        store.close()
        job.report = report
        self.metrics.inc("service_cells_simulated_total",
                         amount=job.cells_simulated)
        self.metrics.inc("service_cells_from_store_total",
                         amount=job.cells_from_store)
        self._finish(job, "done")

    # -- read side ------------------------------------------------------------------

    def wait_events(self, job: SweepJob, index: int,
                    timeout: float | None = None) -> tuple[list[dict], int]:
        """Block until the job has events past ``index`` (or is terminal).

        Returns ``(new_events, next_index)``; an empty list means the wait
        timed out or the job is terminal with nothing new -- the SSE loop
        uses the pair of this and :attr:`SweepJob.terminal` to decide when
        the stream is complete.
        """
        with job.cond:
            if index >= len(job.events) and not job.terminal:
                job.cond.wait(timeout)
            events = job.events[index:]
            return events, index + len(events)

    def query_results(self, workload: str | None = None,
                      variant: str | None = None,
                      fingerprint: str | None = None,
                      limit: int | None = None) -> list[dict]:
        """Query the shared results store (see :meth:`ResultsStore.query`)."""
        store = ResultsStore(self.store_path, fsync=False)
        try:
            return store.query(workload=workload, variant=variant,
                               fingerprint=fingerprint, limit=limit)
        finally:
            store.close()

    def metrics_snapshot(self) -> dict:
        """The ``GET /metrics`` payload: registry export plus live gauges."""
        self.metrics.set("service_jobs_active",
                         len(self.active_jobs()), merge="last")
        self.metrics.set("service_jobs_total", len(self.jobs()), merge="last")
        return self.metrics.to_dict()
