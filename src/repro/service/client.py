"""Stdlib HTTP client for the sweep service, plus the CI scripted session.

:class:`ServiceClient` wraps :mod:`http.client` with the service's JSON
conventions (``X-Client-Id``, api-versioned envelopes) and an SSE reader
so callers wait for sweep completion *event-driven* -- the stream ends at
the job's terminal event, no polling loops, no sleeps.

``python -m repro.service.client`` runs the scripted session the CI
service-smoke step drives: health check, submit, stream to completion,
fetch the report bytes, submit-and-cancel a second sweep, metrics -- and
writes a JSONL transcript of every exchange for the uploaded artifact.
"""

from __future__ import annotations

import argparse
import http.client
import json
import socket
import sys
import time
from pathlib import Path

from repro.service import schemas

#: Terminal job states (mirrors repro.service.service without importing
#: the engine -- the client must stay usable against a remote service).
_TERMINAL = {"done", "failed", "cancelled"}


class ServiceError(RuntimeError):
    """A non-2xx response; carries the HTTP status and the error body."""

    def __init__(self, status: int, body) -> None:
        super().__init__(f"HTTP {status}: {body}")
        self.status = status
        self.body = body


class ServiceClient:
    """One client identity talking to one service host/port."""

    def __init__(self, host: str, port: int, client_id: str = "anonymous",
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def request(self, method: str, path: str, payload: dict | None = None,
                raw: bool = False):
        """One request/response; JSON-decoded body (or raw bytes)."""
        connection = self._connection()
        try:
            body = None
            headers = {"X-Client-Id": self.client_id}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
        finally:
            connection.close()
        if response.status >= 400:
            try:
                raise ServiceError(response.status, json.loads(data))
            except json.JSONDecodeError:
                raise ServiceError(response.status, data.decode(errors="replace"))
        return data if raw else json.loads(data)

    # -- endpoint helpers -----------------------------------------------------------

    def health(self) -> dict:
        return self.request("GET", "/health")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def submit(self, spec_dict: dict, faults: dict | None = None) -> dict:
        payload = {"api": schemas.API_VERSION, "spec": spec_dict}
        if faults is not None:
            payload["faults"] = faults
        return self.request("POST", "/sweeps", payload)["sweep"]

    def status(self, sweep_id: str) -> dict:
        return self.request("GET", f"/sweeps/{sweep_id}")["sweep"]

    def cancel(self, sweep_id: str) -> dict:
        return self.request("DELETE", f"/sweeps/{sweep_id}")["sweep"]

    def report_bytes(self, sweep_id: str) -> bytes:
        return self.request("GET", f"/sweeps/{sweep_id}/report", raw=True)

    def results(self, **filters) -> dict:
        query = "&".join(f"{name}={value}" for name, value in filters.items()
                         if value is not None)
        return self.request("GET", "/results" + (f"?{query}" if query else ""))

    def stream(self, sweep_id: str, start: int = 0):
        """Yield the job's SSE events from ``start``; returns at the terminal
        event (the server closes the stream)."""
        connection = self._connection()
        try:
            connection.request("GET", f"/sweeps/{sweep_id}?stream=1&from={start}",
                               headers={"X-Client-Id": self.client_id,
                                        "Accept": "text/event-stream"})
            response = connection.getresponse()
            if response.status != 200:
                raise ServiceError(response.status,
                                   response.read().decode(errors="replace"))
            for line in response:
                line = line.strip()
                if line.startswith(b"data: "):
                    yield json.loads(line[len(b"data: "):])
        finally:
            connection.close()

    def wait(self, sweep_id: str, deadline_seconds: float = 300.0) -> dict:
        """Block (event-driven, via SSE) until the sweep is terminal.

        A terminal-looking event is confirmed against ``GET /sweeps/{id}``
        before returning: the runner's own drain path logs
        ``sweep_cancelled`` momentarily *before* the service marks the job
        terminal, so the stream resumes until the state agrees.  The
        deadline is a failsafe against a server that stops mid-stream.
        """
        deadline = time.monotonic() + deadline_seconds
        start = 0
        while True:
            for event in self.stream(sweep_id, start=start):
                start = event["seq"] + 1
                if event.get("event", "").startswith("sweep_") \
                        and event["event"][len("sweep_"):] in _TERMINAL:
                    status = self.status(sweep_id)
                    if status["state"] in _TERMINAL:
                        return status
            status = self.status(sweep_id)
            if status["state"] in _TERMINAL:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"sweep {sweep_id} not terminal after {deadline_seconds}s")

    def wait_ready(self, deadline_seconds: float = 30.0) -> dict:
        """Retry ``/health`` until the server accepts connections.

        Startup handshake for scripted sessions launching ``repro serve``
        as a separate process (in-process callers use
        :meth:`~repro.service.server.ServiceServer.start`, which is
        already event-driven).
        """
        deadline = time.monotonic() + deadline_seconds
        while True:
            try:
                return self.health()
            except (ConnectionError, socket.timeout, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)


# -- the CI scripted session ---------------------------------------------------------


def _spec_from_args(args: argparse.Namespace) -> dict:
    spec = {"schemes": args.schemes.split(","),
            "workloads": args.workloads.split(","),
            "max_ops": args.max_ops, "seed": args.seed}
    return spec


def main(argv: list[str] | None = None) -> int:
    """Scripted session: health -> submit -> stream -> report -> cancel -> metrics."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client",
        description="scripted client session against a running repro service")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--schemes", default="isrb")
    parser.add_argument("--workloads", default="move_chain,spill_reload")
    parser.add_argument("--max-ops", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--fault-seed", type=int, default=None,
                        help="inject deterministic faults into the submitted "
                             "sweep (the service-path chaos case)")
    parser.add_argument("--fault-rate", type=float, default=1.0)
    parser.add_argument("--report-out", default=None, metavar="SWEEP.json",
                        help="write the finished sweep's report bytes here")
    parser.add_argument("--transcript", default=None, metavar="OUT.jsonl",
                        help="append one JSON line per exchange")
    args = parser.parse_args(argv)

    transcript: list[dict] = []

    def record(step: str, payload) -> None:
        transcript.append({"step": step, "payload": payload})
        print(f"client: {step}", file=sys.stderr)

    def save_transcript() -> None:
        if args.transcript:
            Path(args.transcript).write_text(
                "".join(json.dumps(entry, sort_keys=True, default=str) + "\n"
                        for entry in transcript))

    client = ServiceClient(args.host, args.port, client_id="ci-session")
    try:
        record("health", client.wait_ready())
        faults = None
        if args.fault_seed is not None:
            faults = {"seed": args.fault_seed, "rate": args.fault_rate}
        sweep = client.submit(_spec_from_args(args), faults=faults)
        record("submit", sweep)
        status = client.wait(sweep["id"])
        record("wait", status)
        if status["state"] != "done":
            print(f"error: sweep ended {status['state']}: {status['error']}",
                  file=sys.stderr)
            save_transcript()
            return 1
        report = client.report_bytes(sweep["id"])
        record("report", {"bytes": len(report)})
        if args.report_out:
            Path(args.report_out).write_bytes(report)
        rows = client.results(workload=args.workloads.split(",")[0])
        record("results", {"count": rows["count"]})
        if rows["count"] == 0:
            print("error: /results returned no rows for a finished sweep",
                  file=sys.stderr)
            save_transcript()
            return 1
        # Second job: submit then cancel straight away; a cancelled job
        # must free its queue slot (asserted against /metrics below).
        second = client.submit(_spec_from_args(args))
        record("submit_second", second)
        cancelled = client.cancel(second["id"])
        record("cancel", cancelled)
        final = client.wait(second["id"])
        record("cancel_final", final)
        if final["state"] not in ("cancelled", "done"):
            print(f"error: cancelled sweep ended {final['state']}",
                  file=sys.stderr)
            save_transcript()
            return 1
        metrics = client.metrics()
        record("metrics", metrics)
        names = {metric["name"] for metric in metrics["metrics"]["metrics"]}
        if "service_sweeps_submitted_total" not in names:
            print("error: metrics snapshot is missing service counters",
                  file=sys.stderr)
            save_transcript()
            return 1
        active = [metric for metric in metrics["metrics"]["metrics"]
                  if metric["name"] == "service_jobs_active"]
        if active and active[0]["value"] != 0:
            print(f"error: {active[0]['value']} job(s) still active after the "
                  "session (cancel did not free its slot)", file=sys.stderr)
            save_transcript()
            return 1
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        save_transcript()
        return 1
    save_transcript()
    print("client session: every step passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
