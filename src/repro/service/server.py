"""Hand-rolled asyncio HTTP/1.1 front-end over :class:`SweepService`.

Stdlib only: :func:`asyncio.start_server` plus a small request parser --
no ``http.server``, no third-party framework.  The event loop owns the
sockets; every blocking service call (waiting on job events, querying
the store) is pushed to the default executor so one slow sweep never
stalls another client's request.

Routes (all JSON, ``api``-versioned; see :mod:`repro.service.schemas`)::

    GET    /health              liveness + version
    GET    /metrics             MetricsRegistry snapshot
    POST   /sweeps              submit a sweep (202) -- 400/429/503 on reject
    GET    /sweeps              every job's status snapshot
    GET    /sweeps/{id}         one job's status; ?stream=1 or an
                                ``Accept: text/event-stream`` header
                                upgrades to SSE over the job's RunLogger
                                events (ends at the terminal event)
    GET    /sweeps/{id}/report  the finished sweep.json bytes (409 until done)
    DELETE /sweeps/{id}         cancel (idempotent)
    GET    /results             query the shared results store by
                                ?workload= / ?variant= / ?fingerprint= / ?limit=

Client identity for quota accounting comes from the ``X-Client-Id``
header (default ``anonymous``) -- the isolation boundary is cooperative
quotas, not authentication.

:class:`ServiceServer` runs the loop in a daemon thread with an
event-driven readiness handshake (:meth:`ServiceServer.start` returns
only once the port is bound), which is what both the tests and
``repro serve`` build on.
"""

from __future__ import annotations

import asyncio
import json
import threading
from urllib.parse import parse_qs, urlsplit

import repro
from repro.service import schemas
from repro.service.service import (QueueFull, QuotaExceeded, SweepService,
                                   UnknownJob)

#: Request-head and body size caps.
_MAX_HEAD_BYTES = 32 * 1024
#: Poll ceiling for one SSE executor wait; purely an upper bound on how
#: long shutdown can lag -- events themselves wake the wait immediately.
_SSE_WAIT_SECONDS = 0.5


class _BadRequest(Exception):
    """Malformed HTTP surfaced as a 400 before routing."""


def _suppress_connection_errors():
    import contextlib

    return contextlib.suppress(ConnectionError, OSError, RuntimeError)


def _response_bytes(status: int, body: bytes, content_type: str,
                    extra: dict | None = None) -> bytes:
    reasons = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
               405: "Method Not Allowed", 409: "Conflict",
               413: "Payload Too Large", 429: "Too Many Requests",
               500: "Internal Server Error", 503: "Service Unavailable"}
    head = [f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}"]
    for name, value in (extra or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode() + body


def _json_response(status: int, payload: dict) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return _response_bytes(status, body, "application/json")


def _error_response(status: int, code: str, message: str) -> bytes:
    return _json_response(status, schemas.error_body(code, message))


class ServiceServer:
    """The asyncio HTTP server, runnable inline or on a daemon thread."""

    def __init__(self, service: SweepService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port  # replaced by the bound port once started
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._stopping = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_async: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle ------------------------------------------------------------------

    async def serve(self, ready=None) -> None:
        """Bind and serve until :meth:`stop` (or cancellation).

        ``ready`` is an optional callback invoked with the bound port
        once the socket is listening (the CLI prints its readiness line
        from it).
        """
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        try:
            server = await asyncio.start_server(self._handle_connection,
                                                self.host, self.port)
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        if ready is not None:
            ready(self.port)
        async with server:
            await self._stop_async.wait()
        self._stopping = True
        # Close lingering keep-alive/SSE connections so their handler
        # tasks exit cleanly before the loop tears down.
        for writer in list(self._writers):
            with _suppress_connection_errors():
                writer.close()
        await asyncio.sleep(0)

    def start(self) -> "ServiceServer":
        """Run :meth:`serve` on a daemon thread; returns once the port is bound."""
        self._thread = threading.Thread(target=lambda: asyncio.run(self.serve()),
                                        name="repro-serve", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Stop the loop, the thread and the service's worker pool."""
        self._stopping = True
        if self._loop is not None and self._stop_async is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_async.set)
            except RuntimeError:
                pass  # loop already closed (bind failure or double stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.shutdown()

    # -- connection handling --------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while not self._stopping:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    writer.write(_error_response(400, "bad_request", str(exc)))
                    await writer.drain()
                    break
                if request is None:  # client closed the connection
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                streamed = await self._dispatch(method, path, headers, body,
                                                writer)
                if streamed or not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; None on clean EOF, :class:`_BadRequest` on junk."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _BadRequest("truncated request head") from exc
        except asyncio.LimitOverrunError as exc:
            raise _BadRequest("request head too large") from exc
        if len(head) > _MAX_HEAD_BYTES:
            raise _BadRequest("request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"malformed request line {lines[0]!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequest(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError as exc:
                raise _BadRequest("malformed Content-Length") from exc
            if length < 0:
                raise _BadRequest("malformed Content-Length")
            if length > schemas.MAX_BODY_BYTES:
                raise _BadRequest("request body too large")
            body = await reader.readexactly(length)
        return method, path, headers, body

    # -- routing --------------------------------------------------------------------

    async def _dispatch(self, method: str, target: str, headers: dict,
                        body: bytes, writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns True when the response was streamed."""
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = {name: values[-1]
                 for name, values in parse_qs(url.query).items()}
        self.service.metrics.inc("service_requests_total",
                                 labels={"route": f"{method} {path}"})
        try:
            response = await self._route(method, path, query, headers, body,
                                         writer)
        except (QuotaExceeded, QueueFull) as exc:
            status = 429 if isinstance(exc, QuotaExceeded) else 503
            response = _error_response(status, exc.code, str(exc))
        except UnknownJob as exc:
            response = _error_response(404, exc.code, str(exc))
        except schemas.SchemaError as exc:
            response = _error_response(400, exc.code, str(exc))
        except Exception as exc:  # pragma: no cover - defensive surface
            response = _error_response(500, "internal_error",
                                       f"{type(exc).__name__}: {exc}")
        if response is None:
            return True  # streamed (SSE); connection closes
        writer.write(response)
        await writer.drain()
        return False

    async def _route(self, method: str, path: str, query: dict,
                     headers: dict, body: bytes,
                     writer: asyncio.StreamWriter) -> bytes | None:
        client = headers.get("x-client-id", "anonymous")
        if path == "/health":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return _json_response(200, schemas.envelope(
                status="ok", version=repro.__version__))
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return _json_response(200, schemas.envelope(
                metrics=self.service.metrics_snapshot()))
        if path == "/results":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return await self._get_results(query)
        if path == "/sweeps":
            if method == "POST":
                spec, fault_plan = schemas.parse_submission(body)
                job = self.service.submit(spec, client=client,
                                          fault_plan=fault_plan)
                return _json_response(202, schemas.envelope(sweep=job.status()))
            if method == "GET":
                return _json_response(200, schemas.envelope(
                    sweeps=[job.status() for job in self.service.jobs()]))
            return self._method_not_allowed(method, path)
        if path.startswith("/sweeps/"):
            rest = path[len("/sweeps/"):]
            job_id, _, tail = rest.partition("/")
            job = self.service.get(job_id)
            if tail == "report":
                if method != "GET":
                    return self._method_not_allowed(method, path)
                if job.state != "done" or job.report is None:
                    return _error_response(
                        409, "not_finished",
                        f"sweep {job.id} is {job.state}; the report exists "
                        f"only once it is done")
                # Raw report bytes: identical to the sweep.json a direct
                # `repro sweep` of the same spec writes (the CI smoke
                # byte-compares the two).
                return _response_bytes(
                    200, (job.report.to_json() + "\n").encode(),
                    "application/json")
            if tail:
                raise UnknownJob(f"no such endpoint /sweeps/{job_id}/{tail}")
            if method == "DELETE":
                job = self.service.cancel(job_id)
                return _json_response(200, schemas.envelope(sweep=job.status()))
            if method != "GET":
                return self._method_not_allowed(method, path)
            wants_stream = (query.get("stream") == "1"
                            or "text/event-stream" in headers.get("accept", ""))
            if wants_stream:
                await self._stream_events(job, query, writer)
                return None
            return _json_response(200, schemas.envelope(sweep=job.status()))
        return _error_response(404, "not_found", f"no route for {path}")

    @staticmethod
    def _method_not_allowed(method: str, path: str) -> bytes:
        return _error_response(405, "method_not_allowed",
                               f"{method} is not supported on {path}")

    async def _get_results(self, query: dict) -> bytes:
        limit = None
        if "limit" in query:
            try:
                limit = int(query["limit"])
            except ValueError as exc:
                raise schemas.SchemaError(
                    "invalid_query", "limit must be an integer") from exc
        unknown = sorted(set(query) - {"workload", "variant", "fingerprint",
                                       "limit"})
        if unknown:
            raise schemas.SchemaError("invalid_query",
                                      f"unknown query parameter(s) {unknown}")
        loop = asyncio.get_running_loop()
        rows = await loop.run_in_executor(
            None, lambda: self.service.query_results(
                workload=query.get("workload"), variant=query.get("variant"),
                fingerprint=query.get("fingerprint"), limit=limit))
        return _json_response(200, schemas.envelope(count=len(rows),
                                                    results=rows))

    async def _stream_events(self, job, query: dict,
                             writer: asyncio.StreamWriter) -> None:
        """SSE: every job event as one ``data:`` frame, ending when terminal.

        Event-driven end to end -- the executor wait wakes on the job's
        condition variable the moment an event is published; the bounded
        wait timeout only bounds shutdown latency.
        """
        try:
            index = int(query.get("from", "0"))
        except ValueError as exc:
            raise schemas.SchemaError("invalid_query",
                                      "from must be an integer") from exc
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        loop = asyncio.get_running_loop()
        while not self._stopping:
            events, index = await loop.run_in_executor(
                None, self.service.wait_events, job, index, _SSE_WAIT_SECONDS)
            for event in events:
                frame = f"data: {json.dumps(event, sort_keys=True)}\n\n"
                writer.write(frame.encode())
            if events:
                await writer.drain()
            with job.cond:
                drained = index >= len(job.events)
            if job.terminal and drained:
                break
