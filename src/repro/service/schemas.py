"""Versioned JSON wire schemas shared by the service and the CLI.

Everything that crosses the HTTP boundary -- sweep submissions, job
status snapshots, results-store query rows, error bodies -- goes through
this module, so the service, the :mod:`repro.service.client` helper and
``repro sweep --spec FILE`` all speak one dialect.  Every payload carries
``"api": API_VERSION``; a submission with a different version is rejected
up front (:class:`SchemaError` with code ``unsupported_api_version``)
instead of being half-understood.

The spec schema is deliberately the *declarative* subset of
:class:`~repro.experiments.grid.SweepSpec`: every scalar/tuple field
round-trips, while ``base_config`` stays server-side (clients describe
experiments, not machines -- the Table-1 base config is part of the
service contract).  Unknown keys are errors, not warnings: a misspelled
``"max_opss"`` must not silently run a default-length sweep.

>>> spec = spec_from_dict({"schemes": ["isrb"], "max_ops": 4000})
>>> spec.max_ops
4000
>>> spec_from_dict(spec_to_dict(spec)) == spec
True
"""

from __future__ import annotations

import json

from repro.experiments.faults import FAULT_KINDS, FaultPlan
from repro.experiments.grid import SweepSpec

#: Wire-format version; bumped on any incompatible payload change.
API_VERSION = 1

#: Submission body size cap (a sweep spec is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20


class SchemaError(ValueError):
    """A payload that does not conform to the wire schema.

    ``code`` is a stable machine-readable discriminator (surfaced in the
    HTTP error body); the string message is for humans.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


#: SweepSpec fields a submission may set: name -> (element type, is tuple).
_SPEC_FIELDS: dict[str, tuple[type | tuple, bool]] = {
    "schemes": (str, True),
    "workloads": (str, True),
    "move_elim": (bool, True),
    "smb": (bool, True),
    "entries": ((int, type(None)), True),
    "counter_bits": ((int, type(None)), True),
    "max_ops": (int, False),
    "seed": (int, False),
    "sample_period": ((int, type(None)), False),
    "sample_window": (int, False),
    "sample_warmup": (int, False),
    "sample_cooldown": (int, False),
    "sample_tolerance": ((int, float, type(None)), False),
    "sample_min_windows": (int, False),
    "sample_max_windows": (int, False),
}


def spec_to_dict(spec: SweepSpec) -> dict:
    """The wire form of a spec (tuples become lists; ``base_config`` stays out)."""
    out: dict = {}
    for name, (_types, is_tuple) in _SPEC_FIELDS.items():
        value = getattr(spec, name)
        out[name] = list(value) if is_tuple else value
    return out


def _check_type(name: str, value, types) -> None:
    # bool is an int subclass; an int field must still reject True/False.
    allowed = types if isinstance(types, tuple) else (types,)
    if bool not in allowed and isinstance(value, bool):
        raise SchemaError("invalid_field", f"field {name!r}: expected "
                          f"a number, got a boolean")
    if not isinstance(value, allowed):
        names = "/".join(t.__name__ for t in allowed)
        raise SchemaError("invalid_field",
                          f"field {name!r}: expected {names}, "
                          f"got {type(value).__name__}")


def spec_from_dict(data) -> SweepSpec:
    """Validate a wire-form spec into a :class:`SweepSpec`.

    Unknown keys, wrong types and values :class:`SweepSpec` itself rejects
    (unknown schemes/workloads, bad sampling geometry) all surface as
    :class:`SchemaError`.
    """
    if not isinstance(data, dict):
        raise SchemaError("invalid_spec", "spec must be a JSON object")
    unknown = sorted(set(data) - set(_SPEC_FIELDS))
    if unknown:
        raise SchemaError("unknown_field",
                          f"unknown spec field(s) {unknown}; known: "
                          f"{sorted(_SPEC_FIELDS)}")
    kwargs: dict = {}
    for name, value in data.items():
        types, is_tuple = _SPEC_FIELDS[name]
        if is_tuple:
            if not isinstance(value, (list, tuple)):
                raise SchemaError("invalid_field",
                                  f"field {name!r}: expected a list")
            for item in value:
                _check_type(f"{name}[]", item, types)
            kwargs[name] = tuple(value)
        else:
            _check_type(name, value, types)
            kwargs[name] = value
    try:
        return SweepSpec(**kwargs)
    except ValueError as exc:
        raise SchemaError("invalid_spec", str(exc)) from exc


def faults_from_dict(data) -> FaultPlan:
    """Validate a submission's optional ``"faults"`` block into a plan."""
    if not isinstance(data, dict):
        raise SchemaError("invalid_faults", "faults must be a JSON object")
    unknown = sorted(set(data) - {"seed", "rate", "kinds"})
    if unknown:
        raise SchemaError("unknown_field",
                          f"unknown faults field(s) {unknown}")
    if "seed" not in data:
        raise SchemaError("invalid_faults", "faults.seed is required")
    _check_type("faults.seed", data["seed"], int)
    kwargs: dict = {"seed": data["seed"]}
    if "rate" in data:
        _check_type("faults.rate", data["rate"], (int, float))
        kwargs["rate"] = float(data["rate"])
    if "kinds" in data:
        kinds = data["kinds"]
        if not isinstance(kinds, (list, tuple)):
            raise SchemaError("invalid_faults", "faults.kinds must be a list")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise SchemaError("invalid_faults",
                                  f"unknown fault kind {kind!r}; known: "
                                  f"{list(FAULT_KINDS)}")
        kwargs["kinds"] = tuple(kinds)
    try:
        return FaultPlan(**kwargs)
    except ValueError as exc:
        raise SchemaError("invalid_faults", str(exc)) from exc


def parse_submission(body: bytes) -> tuple[SweepSpec, FaultPlan | None]:
    """Parse and validate one ``POST /sweeps`` body.

    The envelope is ``{"api": 1, "spec": {...}, "faults": {...}?}``;
    returns the validated ``(spec, fault_plan)`` pair.
    """
    try:
        data = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SchemaError("malformed_json",
                          f"request body is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise SchemaError("invalid_submission",
                          "submission must be a JSON object")
    if data.get("api") != API_VERSION:
        raise SchemaError(
            "unsupported_api_version",
            f"api version {data.get('api')!r} is not supported "
            f"(this service speaks api {API_VERSION})")
    unknown = sorted(set(data) - {"api", "spec", "faults"})
    if unknown:
        raise SchemaError("unknown_field",
                          f"unknown submission field(s) {unknown}")
    if "spec" not in data:
        raise SchemaError("invalid_submission", "submission needs a 'spec'")
    spec = spec_from_dict(data["spec"])
    fault_plan = None
    if data.get("faults") is not None:
        fault_plan = faults_from_dict(data["faults"])
    return spec, fault_plan


def envelope(**fields) -> dict:
    """A response body stamped with the wire-format version."""
    return {"api": API_VERSION, **fields}


def error_body(code: str, message: str) -> dict:
    """The error envelope every non-2xx JSON response uses."""
    return envelope(error={"code": code, "message": message})
