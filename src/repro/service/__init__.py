"""Simulation-as-a-service: an async REST front-end over the sweep harness.

The package splits transport from policy:

* :mod:`repro.service.schemas` -- the api-versioned JSON wire format,
  shared with the CLI (``repro sweep --spec FILE`` reads the same spec
  documents ``POST /sweeps`` accepts);
* :mod:`repro.service.service` -- :class:`SweepService`, the
  transport-agnostic job queue with per-client quotas, shared
  results-store caching and drain-path cancellation;
* :mod:`repro.service.server` -- :class:`ServiceServer`, the stdlib
  asyncio HTTP/1.1 + SSE skin (``repro serve`` runs it);
* :mod:`repro.service.client` -- a stdlib client plus the scripted
  session CI drives against a live server.

The wire format round-trips the declarative sweep surface:

>>> from repro import SweepSpec
>>> from repro.service import spec_from_dict, spec_to_dict
>>> spec = SweepSpec(schemes=("isrb",), max_ops=4_000)
>>> spec_from_dict(spec_to_dict(spec)) == spec
True
>>> spec_from_dict({"max_opss": 1})  # doctest: +IGNORE_EXCEPTION_DETAIL
Traceback (most recent call last):
    ...
repro.service.schemas.SchemaError: unknown spec field(s) ['max_opss']; ...

See ``docs/service.md`` for the HTTP API reference.
"""

from repro.service.schemas import (API_VERSION, SchemaError, parse_submission,
                                   spec_from_dict, spec_to_dict)
from repro.service.service import (QueueFull, QuotaExceeded, SweepJob,
                                   SweepService, UnknownJob)
from repro.service.server import ServiceServer

__all__ = [
    "API_VERSION",
    "SchemaError",
    "parse_submission",
    "spec_from_dict",
    "spec_to_dict",
    "QueueFull",
    "QuotaExceeded",
    "SweepJob",
    "SweepService",
    "UnknownJob",
    "ServiceServer",
]
