"""Append-only on-disk store of completed simulation results.

A paper-figure grid is hundreds of ``(workload, config)`` cells, each worth
seconds to minutes of simulation.  :class:`ResultsStore` makes the grid
*resumable*: every finished cell is appended to a JSONL file the moment it
completes, and a restarted run skips every cell the store already holds.
``repro paper`` and ``repro sweep --resume`` both run on top of it.

Keying
------
A cell is identified by :func:`job_key`: the trace key ``(workload,
max_ops, seed)``, the report variant, the sampling-geometry fingerprint and
a fingerprint of the *entire* :class:`~repro.pipeline.config.CoreConfig`
(which subsumes :meth:`~repro.pipeline.config.CoreConfig.warm_signature`).
Two jobs that could ever simulate differently therefore never share a key:
a PRF-sizing sweep reuses variant names across sizing points, but each
sizing point hashes to a different config fingerprint.

Durability model
----------------
The store is a plain append-only JSONL file, one completed cell per line,
flushed after every append.  Loading tolerates arbitrary corruption: a torn
final line (the process was killed mid-append), garbage bytes, stale
versions and unreadable files are all skipped -- the affected cells simply
re-simulate on the next run, which the determinism tests prove yields a
byte-identical artifact.  Duplicate keys keep the *last* record so a
re-recorded cell wins.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.pipeline.result import SimulationResult

#: Bumped whenever the record layout changes; stale lines are ignored (the
#: cells re-simulate) instead of being misread.
STORE_FORMAT_VERSION = 1


def job_key(job) -> str:
    """Stable identity of one sweep cell (see the module docstring).

    ``job`` is any object with the :class:`~repro.experiments.grid.Job`
    surface: ``workload``, ``max_ops``, ``seed``, ``variant``, ``config``
    and ``sampling``.  The key is human-readable up front (trace key and
    variant for debugging a store file by eye) and exact at the back (full
    config and sampling fingerprints).
    """
    config_fp = hashlib.sha256(repr(job.config).encode()).hexdigest()[:16]
    if job.sampling is None:
        sampling_fp = "full"
    else:
        # SamplingConfig.__repr__ follows an omit-default rule (error-budget
        # knobs appear only when set), so keys recorded before those knobs
        # existed stay byte-identical and pre-existing stores resume with
        # zero cells re-simulated.
        sampling_fp = "s" + hashlib.sha256(
            repr(job.sampling).encode()).hexdigest()[:12]
    return (f"{job.workload}|ops{job.max_ops}|seed{job.seed}|{job.variant}"
            f"|w{job.config.warm_signature()}|c{config_fp}|{sampling_fp}")


@dataclass
class StoreStats:
    """Accounting for one :class:`ResultsStore` (reported by ``repro paper``)."""

    hits: int = 0
    misses: int = 0
    appended: int = 0
    corrupt_lines: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "appended": self.appended, "corrupt_lines": self.corrupt_lines}


class ResultsStore:
    """Append-only JSONL store of completed ``(job, SimulationResult)`` cells.

    The store is safe to share across the many :func:`~repro.experiments
    .runner.run_sweep` calls of one figure grid (one open handle, one
    in-memory index) and across *processes over time* (every run reloads
    the file).  It is **not** a concurrency primitive: results are always
    appended from the sweep parent process, never from pool workers.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.stats = StoreStats()
        self._index: dict[str, dict] | None = None
        self._handle = None

    # -- loading --------------------------------------------------------------------

    def _load(self) -> dict[str, dict]:
        """Parse the store file into the key index, skipping corrupt lines."""
        if self._index is not None:
            return self._index
        index: dict[str, dict] = {}
        try:
            text = self.path.read_text(errors="replace")
        except FileNotFoundError:
            self._index = index
            return index
        except OSError:
            # Unreadable store: behave as empty, the run re-simulates.
            self.stats.corrupt_lines += 1
            self._index = index
            return index
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.stats.corrupt_lines += 1
                continue
            if (not isinstance(record, dict)
                    or record.get("v") != STORE_FORMAT_VERSION
                    or not isinstance(record.get("key"), str)
                    or not isinstance(record.get("result"), dict)):
                self.stats.corrupt_lines += 1
                continue
            index[record["key"]] = record["result"]
        self._index = index
        return index

    def __len__(self) -> int:
        return len(self._load())

    # -- lookup / append ------------------------------------------------------------

    def has(self, job) -> bool:
        """Whether a record for ``job`` exists.

        Unlike :meth:`get` this neither deserialises nor touches
        :attr:`stats` -- it is the planning probe the sweep runner uses to
        decide which traces/plans still need warming.
        """
        return job_key(job) in self._load()

    def get(self, job) -> SimulationResult | None:
        """The stored result for ``job``, or ``None`` (cell must run)."""
        payload = self._load().get(job_key(job))
        if payload is None:
            self.stats.misses += 1
            return None
        try:
            result = SimulationResult.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            # A record whose body does not deserialize is corruption too.
            self.stats.corrupt_lines += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def record(self, job, result: SimulationResult, meta: dict | None = None) -> None:
        """Append one completed cell and flush it to disk immediately.

        The flush is what makes a killed grid resumable: every cell that
        finished before the kill is recoverable, at worst the one being
        appended is lost as a torn line (and silently re-simulated).

        ``meta`` carries observability-only record metadata (wall-time,
        worker identity): it is written to the store line but never read
        back into results -- :meth:`get` deserialises only ``result`` --
        so it cannot leak into the deterministic report artifacts.
        """
        key = job_key(job)
        payload = result.to_dict()
        record = {"v": STORE_FORMAT_VERSION, "key": key,
                  "job_id": getattr(job, "job_id", ""),
                  "result": payload}
        if meta:
            record["meta"] = dict(meta)
        line = json.dumps(record, sort_keys=True)
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # A pre-existing file that does not end in a newline (torn
            # final append, foreign corruption) must not swallow the first
            # fresh record by concatenation -- start it on its own line.
            needs_newline = False
            try:
                with self.path.open("rb") as existing:
                    existing.seek(0, 2)
                    if existing.tell() > 0:
                        existing.seek(-1, 2)
                        needs_newline = existing.read(1) != b"\n"
            except OSError:
                pass
            self._handle = self.path.open("a")
            if needs_newline:
                self._handle.write("\n")
        self._handle.write(line + "\n")
        self._handle.flush()
        self._load()[key] = payload
        self.stats.appended += 1

    def close(self) -> None:
        """Close the append handle (the store remains usable; it reopens)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
