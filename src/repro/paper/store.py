"""Append-only on-disk store of completed simulation results.

A paper-figure grid is hundreds of ``(workload, config)`` cells, each worth
seconds to minutes of simulation.  :class:`ResultsStore` makes the grid
*resumable*: every finished cell is appended to a JSONL file the moment it
completes, and a restarted run skips every cell the store already holds.
``repro paper`` and ``repro sweep --resume`` both run on top of it.

Keying
------
A cell is identified by :func:`job_key`: the trace key ``(workload,
max_ops, seed)``, the report variant, the sampling-geometry fingerprint and
a fingerprint of the *entire* :class:`~repro.pipeline.config.CoreConfig`
(which subsumes :meth:`~repro.pipeline.config.CoreConfig.warm_signature`).
Two jobs that could ever simulate differently therefore never share a key:
a PRF-sizing sweep reuses variant names across sizing points, but each
sizing point hashes to a different config fingerprint.

Durability model
----------------
The store is a plain append-only JSONL file, one completed cell per line,
flushed **and fsynced** after every append (``fsync=False`` opts out for
throwaway stores), so a completed cell survives both a killed process and
a lost page cache.  Appends keep an atomic-append discipline: every record
is one ``write()`` of a full newline-terminated line, and opening the
store for appending first *repairs* a torn tail (a final line without its
newline, i.e. a record killed mid-append) by truncating it -- the affected
cell simply re-simulates, and the file converges to the same bytes a clean
run would have written.  Loading additionally tolerates arbitrary interior
corruption: garbage bytes, stale versions and unreadable files are all
skipped.  Duplicate keys keep the *last* record so a re-recorded cell wins.

Leases (multi-process coordination)
-----------------------------------
The store doubles as the coordination substrate for concurrent runs over
one grid: cell-granular **leases** live in a sidecar JSONL file
(``<store>.leases``) as idempotent appends -- ``claim`` / ``heartbeat`` /
``release`` records folded in file order, last live claim wins, leases
expire after their TTL so a crashed owner's cells are *reclaimed* by any
surviving run.  Two ``repro sweep --resume`` processes on one store
partition the pending cells instead of duplicating them; the results file
itself stays pure (lease traffic never touches it), which is what keeps
fault-free and fault-injected stores byte-comparable after
:meth:`ResultsStore.compact`.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.pipeline.result import SimulationResult

#: Bumped whenever the record layout changes; stale lines are ignored (the
#: cells re-simulate) instead of being misread.
STORE_FORMAT_VERSION = 1

#: Version tag on every lease-file line; foreign lines are ignored.
LEASE_FORMAT_VERSION = 1

#: Default seconds before an unrefreshed lease is considered stale.
DEFAULT_LEASE_TTL = 300.0


class TornWriteError(OSError):
    """A store append was torn mid-line (only raised by fault injection)."""


def job_key(job) -> str:
    """Stable identity of one sweep cell (see the module docstring).

    ``job`` is any object with the :class:`~repro.experiments.grid.Job`
    surface: ``workload``, ``max_ops``, ``seed``, ``variant``, ``config``
    and ``sampling``.  The key is human-readable up front (trace key and
    variant for debugging a store file by eye) and exact at the back (full
    config and sampling fingerprints).
    """
    config_fp = hashlib.sha256(repr(job.config).encode()).hexdigest()[:16]
    if job.sampling is None:
        sampling_fp = "full"
    else:
        # SamplingConfig.__repr__ follows an omit-default rule (error-budget
        # knobs appear only when set), so keys recorded before those knobs
        # existed stay byte-identical and pre-existing stores resume with
        # zero cells re-simulated.
        sampling_fp = "s" + hashlib.sha256(
            repr(job.sampling).encode()).hexdigest()[:12]
    return (f"{job.workload}|ops{job.max_ops}|seed{job.seed}|{job.variant}"
            f"|w{job.config.warm_signature()}|c{config_fp}|{sampling_fp}")


def parse_key(key: str) -> dict | None:
    """Split a :func:`job_key` back into its queryable components.

    Returns ``{"workload", "max_ops", "seed", "variant", "warm",
    "config", "sampling"}`` or ``None`` for a key this version cannot
    parse.  The reverse of the key layout documented above; a workload
    name containing ``|`` (never produced by the registry) would make the
    split ambiguous, so the fixed six-field tail is anchored at the end.

    >>> parse_key("move_chain|ops800|seed1|isrb_me|wabc|cdef|full")["variant"]
    'isrb_me'
    """
    parts = key.split("|")
    if len(parts) < 7:
        return None
    workload = "|".join(parts[:-6])
    ops, seed, variant, warm, config, sampling = parts[-6:]
    if not (ops.startswith("ops") and seed.startswith("seed")
            and warm.startswith("w") and config.startswith("c")):
        return None
    try:
        return {"workload": workload, "max_ops": int(ops[3:]),
                "seed": int(seed[4:]), "variant": variant,
                "warm": warm[1:], "config": config[1:],
                "sampling": sampling}
    except ValueError:
        return None


@dataclass
class StoreStats:
    """Accounting for one :class:`ResultsStore` (reported by ``repro paper``)."""

    hits: int = 0
    misses: int = 0
    appended: int = 0
    corrupt_lines: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "appended": self.appended, "corrupt_lines": self.corrupt_lines}


class ResultsStore:
    """Append-only JSONL store of completed ``(job, SimulationResult)`` cells.

    The store is safe to share across the many :func:`~repro.experiments
    .runner.run_sweep` calls of one figure grid (one open handle, one
    in-memory index) and across *processes over time* (every run reloads
    the file).  Concurrent processes coordinate through cell leases (see
    the module docstring); results are still only appended by each sweep's
    parent process, never by pool workers.
    """

    def __init__(self, path: str | Path, fsync: bool = True,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 owner: str | None = None, clock=time.time) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.lease_ttl = lease_ttl
        #: Unique identity of this run for lease ownership (never compared
        #: across runs, so it may -- must -- be nondeterministic).
        self.owner = owner or (f"{socket.gethostname()}-{os.getpid()}"
                               f"-{uuid.uuid4().hex[:8]}")
        self._clock = clock
        self.stats = StoreStats()
        self._index: dict[str, dict] | None = None
        self._handle = None
        #: Keys this store instance currently holds a lease on.
        self.owned_leases: set[str] = set()
        self._last_heartbeat = self._clock()

    @property
    def lease_path(self) -> Path:
        return self.path.with_name(self.path.name + ".leases")

    # -- loading --------------------------------------------------------------------

    def _load(self) -> dict[str, dict]:
        """Parse the store file into the key index, skipping corrupt lines."""
        if self._index is not None:
            return self._index
        index: dict[str, dict] = {}
        try:
            text = self.path.read_text(errors="replace")
        except FileNotFoundError:
            self._index = index
            return index
        except OSError:
            # Unreadable store: behave as empty, the run re-simulates.
            self.stats.corrupt_lines += 1
            self._index = index
            return index
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.stats.corrupt_lines += 1
                continue
            if (not isinstance(record, dict)
                    or record.get("v") != STORE_FORMAT_VERSION
                    or not isinstance(record.get("key"), str)
                    or not isinstance(record.get("result"), dict)):
                self.stats.corrupt_lines += 1
                continue
            index[record["key"]] = record["result"]
        self._index = index
        return index

    def reload(self) -> None:
        """Drop the in-memory index so the next lookup re-reads the file.

        The concurrent-resume poll loop uses this to observe cells another
        process finished after we first loaded.
        """
        self._index = None

    def __len__(self) -> int:
        return len(self._load())

    # -- lookup / append ------------------------------------------------------------

    def has(self, job) -> bool:
        """Whether a record for ``job`` exists.

        Unlike :meth:`get` this neither deserialises nor touches
        :attr:`stats` -- it is the planning probe the sweep runner uses to
        decide which traces/plans still need warming.
        """
        return job_key(job) in self._load()

    def get(self, job) -> SimulationResult | None:
        """The stored result for ``job``, or ``None`` (cell must run)."""
        payload = self._load().get(job_key(job))
        if payload is None:
            self.stats.misses += 1
            return None
        try:
            result = SimulationResult.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            # A record whose body does not deserialize is corruption too.
            self.stats.corrupt_lines += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def _serialize(self, job, result: SimulationResult,
                   meta: dict | None = None) -> tuple[str, dict, str]:
        key = job_key(job)
        payload = result.to_dict()
        record = {"v": STORE_FORMAT_VERSION, "key": key,
                  "job_id": getattr(job, "job_id", ""),
                  "result": payload}
        if meta:
            record["meta"] = dict(meta)
        return key, payload, json.dumps(record, sort_keys=True)

    def _open_for_append(self) -> None:
        if self._handle is not None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic-append discipline: a pre-existing file must end on a line
        # boundary before we append.  A missing trailing newline is by
        # construction a torn final append (this store only ever writes
        # whole lines), so repair it -- the torn cell re-simulates and the
        # file converges to the bytes a clean run would have written.
        self.repair()
        self._handle = self.path.open("a")

    def record(self, job, result: SimulationResult, meta: dict | None = None) -> None:
        """Append one completed cell, flush and fsync it to disk immediately.

        The flush-and-fsync is what makes a killed grid resumable: every
        cell that finished before the kill is recoverable, at worst the one
        being appended is lost as a torn line (truncated and re-simulated
        on the next run).

        ``meta`` carries observability-only record metadata (wall-time,
        worker identity): it is written to the store line but never read
        back into results -- :meth:`get` deserialises only ``result`` --
        so it cannot leak into the deterministic report artifacts
        (:meth:`compact` drops it entirely).
        """
        key, payload, line = self._serialize(job, result, meta)
        self._open_for_append()
        self._handle.write(line + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._load()[key] = payload
        self.stats.appended += 1

    def record_torn(self, job, result: SimulationResult,
                    meta: dict | None = None) -> None:
        """Fault-injection hook: tear the append mid-line and raise.

        Writes only the first half of the record line (no newline), syncs
        it so the torn bytes really reach the file, and raises
        :class:`TornWriteError` -- exactly what a power cut mid-append
        leaves behind.  The caller recovers with :meth:`repair` +
        :meth:`record`; the chaos tests pin that the repaired store is
        byte-identical to one that never tore.
        """
        _key, _payload, line = self._serialize(job, result, meta)
        self._open_for_append()
        self._handle.write(line[:max(len(line) // 2, 1)])
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        raise TornWriteError(f"store append torn mid-line for {job.job_id}")

    def repair(self) -> int:
        """Truncate a torn (newline-less) tail; returns bytes removed.

        Safe by the append discipline: complete records always end in a
        newline, so trailing bytes without one are a torn append, never a
        finished cell.  Interior corruption is *not* rewritten here --
        loading skips it and :meth:`compact` cleans it.
        """
        had_handle = self._handle is not None
        if had_handle:
            self._handle.close()
            self._handle = None
        removed = 0
        try:
            with self.path.open("rb+") as handle:
                handle.seek(0, 2)
                size = handle.tell()
                if size:
                    handle.seek(-1, 2)
                    if handle.read(1) != b"\n":
                        data = None
                        handle.seek(0)
                        data = handle.read()
                        keep = data.rfind(b"\n") + 1  # 0 when no newline at all
                        handle.truncate(keep)
                        removed = size - keep
        except OSError:
            return 0
        if had_handle:
            self._handle = self.path.open("a")
        return removed

    def close(self) -> None:
        """Close the append handle (the store remains usable; it reopens)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- leases ---------------------------------------------------------------------

    def _append_lease(self, op: str, key: str, ttl: float | None = None) -> None:
        line = json.dumps({"lv": LEASE_FORMAT_VERSION, "op": op, "key": key,
                           "owner": self.owner, "t": round(self._clock(), 3),
                           "ttl": ttl if ttl is not None else self.lease_ttl},
                          sort_keys=True)
        self.lease_path.parent.mkdir(parents=True, exist_ok=True)
        with self.lease_path.open("a") as handle:
            handle.write(line + "\n")

    def _lease_state(self) -> dict[str, dict]:
        """Fold the lease file: key -> last-winning {owner, expires, t, ttl}.

        Fold rules (idempotent appends, file order): a ``claim`` always
        installs its owner (last claim wins -- the tie-break for racing
        claimants); ``heartbeat`` refreshes expiry only when its owner
        still holds the lease; ``release`` clears it only for the holder.
        """
        state: dict[str, dict] = {}
        try:
            text = self.lease_path.read_text(errors="replace")
        except OSError:
            return state
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (not isinstance(entry, dict)
                    or entry.get("lv") != LEASE_FORMAT_VERSION):
                continue
            op, key, owner = entry.get("op"), entry.get("key"), entry.get("owner")
            if not isinstance(key, str) or not isinstance(owner, str):
                continue
            try:
                t, ttl = float(entry.get("t", 0.0)), float(entry.get("ttl", 0.0))
            except (TypeError, ValueError):
                continue
            current = state.get(key)
            if op == "claim":
                state[key] = {"owner": owner, "t": t, "ttl": ttl,
                              "expires": t + ttl}
            elif op == "heartbeat" and current and current["owner"] == owner:
                current.update(t=t, ttl=ttl, expires=t + ttl)
            elif op == "release" and current and current["owner"] == owner:
                del state[key]
        return state

    def lease_holder(self, job) -> dict | None:
        """The live lease on ``job`` (``{"owner", "expires", ...}``) or None."""
        entry = self._lease_state().get(job_key(job))
        if entry is None or entry["expires"] <= self._clock():
            return None
        return entry

    def claim(self, job, ttl: float | None = None) -> str | None:
        """Try to lease ``job`` for this run; None when another run holds it.

        Returns ``"fresh"`` (nobody held it), ``"reclaimed"`` (a stale
        lease was taken over) or ``None``.  Claiming is check -> append ->
        verify: after appending our claim the file is re-read, and the
        *last* claim line wins, so two racing claimants agree on a single
        winner without any locking.
        """
        key = job_key(job)
        now = self._clock()
        current = self._lease_state().get(key)
        stale = current is not None and current["expires"] <= now
        if current is not None and current["owner"] != self.owner and not stale:
            return None
        self._append_lease("claim", key, ttl)
        winner = self._lease_state().get(key)
        if winner is None or winner["owner"] != self.owner:
            return None  # a racing claimant appended after us and won
        self.owned_leases.add(key)
        return "reclaimed" if stale and current["owner"] != self.owner else "fresh"

    def heartbeat_owned(self, min_interval: float | None = None) -> int:
        """Refresh every owned lease; returns how many were refreshed.

        ``min_interval`` (default ``ttl / 4``) rate-limits refreshes so the
        per-cell delivery path can call this unconditionally.
        """
        interval = min_interval if min_interval is not None else self.lease_ttl / 4
        now = self._clock()
        if not self.owned_leases or now - self._last_heartbeat < interval:
            return 0
        self._last_heartbeat = now
        for key in sorted(self.owned_leases):
            self._append_lease("heartbeat", key)
        return len(self.owned_leases)

    def release(self, job) -> None:
        """Release this run's lease on ``job`` (no-op when not held)."""
        key = job_key(job)
        if key in self.owned_leases:
            self.owned_leases.discard(key)
            self._append_lease("release", key)

    def release_owned(self) -> int:
        """Release every lease this run still holds (cancellation path)."""
        released = 0
        for key in sorted(self.owned_leases):
            self._append_lease("release", key)
            released += 1
        self.owned_leases.clear()
        return released

    # -- read-side queries (the service's ``GET /results``) ---------------------------

    def query(self, workload: str | None = None, variant: str | None = None,
              fingerprint: str | None = None,
              limit: int | None = None) -> list[dict]:
        """Stored cells matching the filters, sorted by key.

        ``workload`` and ``variant`` match exactly; ``fingerprint`` is a
        prefix match on the config fingerprint (so a full 16-hex
        fingerprint and a shortened one both work).  Each row carries the
        parsed key components plus the raw result payload; keys this
        store version cannot parse (foreign writers) are skipped.  Purely
        read-side: never touches leases or :attr:`stats`.
        """
        self.reload()
        rows: list[dict] = []
        for key in sorted(self._load()):
            parsed = parse_key(key)
            if parsed is None:
                continue
            if workload is not None and parsed["workload"] != workload:
                continue
            if variant is not None and parsed["variant"] != variant:
                continue
            if fingerprint is not None \
                    and not parsed["config"].startswith(fingerprint):
                continue
            rows.append({"key": key, **parsed,
                         "result": self._load()[key]})
            if limit is not None and len(rows) >= limit:
                break
        return rows

    # -- maintenance (``repro store``) ------------------------------------------------

    def verify(self) -> dict:
        """Integrity report of the store and lease files (read-only).

        Counts well-formed records, duplicate keys, corrupt lines and a
        torn tail on the results file, plus live/stale/total leases.
        """
        report = {"path": str(self.path), "file_bytes": 0, "lines": 0,
                  "records": 0, "unique_keys": 0, "duplicate_keys": 0,
                  "corrupt_lines": 0, "torn_tail": False,
                  "leases_live": 0, "leases_stale": 0, "lease_lines": 0}
        try:
            raw = self.path.read_bytes()
        except OSError:
            raw = b""
        report["file_bytes"] = len(raw)
        report["torn_tail"] = bool(raw) and not raw.endswith(b"\n")
        keys: dict[str, int] = {}
        for line in raw.decode(errors="replace").splitlines():
            if not line.strip():
                continue
            report["lines"] += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                report["corrupt_lines"] += 1
                continue
            if (not isinstance(record, dict)
                    or record.get("v") != STORE_FORMAT_VERSION
                    or not isinstance(record.get("key"), str)
                    or not isinstance(record.get("result"), dict)):
                report["corrupt_lines"] += 1
                continue
            report["records"] += 1
            keys[record["key"]] = keys.get(record["key"], 0) + 1
        report["unique_keys"] = len(keys)
        report["duplicate_keys"] = sum(count - 1 for count in keys.values())
        try:
            report["lease_lines"] = sum(
                1 for line in self.lease_path.read_text(errors="replace")
                .splitlines() if line.strip())
        except OSError:
            pass
        now = self._clock()
        for entry in self._lease_state().values():
            if entry["expires"] > now:
                report["leases_live"] += 1
            else:
                report["leases_stale"] += 1
        return report

    def compact(self, keep_meta: bool = False) -> dict:
        """Rewrite the store in canonical form; returns what was dropped.

        Canonical form: the last record per key, sorted by key, one
        ``json.dumps(..., sort_keys=True)`` line each, observability
        ``meta`` stripped (unless ``keep_meta``).  Torn tails, interior
        garbage and duplicates disappear -- two stores holding the same
        results compact to **byte-identical files** regardless of append
        order, faults survived or meta recorded, which is the form the
        chaos gates compare.  The rewrite is atomic (temp file +
        ``os.replace``); the lease sidecar is pruned to live leases only.
        """
        before = self.verify()
        records: dict[str, dict] = {}
        try:
            text = self.path.read_text(errors="replace")
        except OSError:
            text = ""
        for line in text.splitlines():
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (not isinstance(record, dict)
                    or record.get("v") != STORE_FORMAT_VERSION
                    or not isinstance(record.get("key"), str)
                    or not isinstance(record.get("result"), dict)):
                continue
            if not keep_meta:
                record.pop("meta", None)
            records[record["key"]] = record
        self.close()
        if records or self.path.exists():
            tmp = self.path.with_name(self.path.name + ".compact.tmp")
            with tmp.open("w") as handle:
                for key in sorted(records):
                    handle.write(json.dumps(records[key], sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        # Prune the lease sidecar: live claims survive (re-emitted with
        # their original timestamps, so expiry is unchanged), everything
        # released or expired is dropped.
        now = self._clock()
        live = {key: entry for key, entry in self._lease_state().items()
                if entry["expires"] > now}
        if self.lease_path.exists():
            tmp = self.lease_path.with_name(self.lease_path.name + ".compact.tmp")
            with tmp.open("w") as handle:
                for key in sorted(live):
                    entry = live[key]
                    handle.write(json.dumps(
                        {"lv": LEASE_FORMAT_VERSION, "op": "claim", "key": key,
                         "owner": entry["owner"], "t": entry["t"],
                         "ttl": entry["ttl"]}, sort_keys=True) + "\n")
            os.replace(tmp, self.lease_path)
        self.reload()
        return {"records_kept": len(records),
                "duplicates_dropped": before["duplicate_keys"],
                "corrupt_dropped": before["corrupt_lines"],
                "torn_tail_dropped": before["torn_tail"],
                "leases_kept": len(live),
                "lease_lines_dropped": before["lease_lines"] - len(live)}
