"""Rendering of figure data into the ``artifacts/paper/`` deliverable.

:func:`render_figures` turns a list of :class:`~repro.paper.figures
.FigureData` objects into the three-part artifact the pipeline ships:

* one SVG chart per figure (``figure7.svg`` ...), drawn by
  :mod:`repro.paper.charts`;
* ``figures.json`` -- the machine-readable data behind every chart (series,
  categories, claim verdicts), so a reader can diff the reproduction
  against the paper numerically;
* ``REPORT.md`` -- the narrated report: each figure embedded, its data as a
  markdown table (the accessibility/table view of every chart), and a
  commentary section comparing the reproduced trends against the paper's
  claims, with an explicit verdict per claim.

Everything written here is a pure function of the simulation results -- no
wall-clock times, no hostnames, no dates -- so re-rendering from the
results store is byte-identical, which the determinism tests enforce.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.paper.charts import bar_chart, line_chart
from repro.paper.figures import FigureData

#: Bumped when the figures.json layout changes.
FIGURES_FORMAT_VERSION = 1

_VERDICT_BADGES = {"holds": "**reproduced**", "diverges": "**diverges**",
                   "inconclusive": "inconclusive"}


def render_chart(data: FigureData) -> str:
    """The SVG document for one figure."""
    if data.chart == "bar":
        return bar_chart(f"Figure {data.figure}: {data.title}",
                         data.categories, data.series, y_label=data.y_label)
    return line_chart(f"Figure {data.figure}: {data.title}", data.x_values,
                      data.series, x_label=data.x_label, y_label=data.y_label)


def figure_table(data: FigureData) -> str:
    """The figure's data as a GitHub-markdown table (the chart's table view)."""
    header = [data.x_label] + [name for name, _ in data.series]
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join(["---"] * len(header)) + "|"]
    for index, category in enumerate(data.categories):
        row = [category if category != "geomean" else "**geomean**"]
        for _, values in data.series:
            value = values[index] if index < len(values) else None
            if value is None:
                row.append("-")
            elif category == "geomean":
                row.append(f"**{value:.3f}**")
            else:
                row.append(f"{value:.3f}")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def figure_section(data: FigureData) -> str:
    """One figure's REPORT.md section: chart, table, commentary, verdicts."""
    lines = [f"## Figure {data.figure} — {data.title}", ""]
    lines.append(f"![Figure {data.figure}]({data.slug}.svg)")
    lines.append("")
    lines.append(data.description)
    lines.append("")
    lines.append(figure_table(data))
    lines.append("")
    lines.append(f"**The paper's claim.** {data.paper_claim}")
    lines.append("")
    if data.claims:
        lines.append("**Checks against the claim:**")
        lines.append("")
        for claim in data.claims:
            badge = _VERDICT_BADGES.get(claim.verdict, claim.verdict)
            lines.append(f"- {badge} — {claim.claim} Observed: "
                         f"{claim.observed}.")
        lines.append("")
    else:
        lines.append("*No claim checks could run (missing data).*")
        lines.append("")
    if data.failures:
        lines.append(f"**{len(data.failures)} cell(s) failed** and are "
                     "missing from the figure: "
                     + ", ".join(f["job_id"] for f in data.failures))
        lines.append("")
    return "\n".join(lines)


def report_markdown(figures: list[FigureData], mode: str,
                    cells: int | None = None) -> str:
    """The full REPORT.md text (deterministic: no wall times or dates)."""
    lines = [
        "# Paper-figure reproduction report",
        "",
        'Reproduction of the evaluation figures of *"Cost Effective Physical '
        'Register Sharing"* (Perais & Seznec, HPCA 2016) on the synthetic '
        "workload suite. Every speedup is the cycle-count ratio of the "
        "no-sharing Table-1 baseline to the named configuration on the "
        "identical dynamic trace; geomeans are over the workloads shown.",
        "",
        f"- mode: **{mode}**" + ("" if mode == "full" else
                                 " (reduced grid — trends, not headline numbers)"),
    ]
    if cells is not None:
        lines.append(f"- grid cells: {cells}")
    lines.append("- data: [`figures.json`](figures.json) (machine-readable "
                 "series and claim verdicts behind every chart)")
    lines.append("")
    for data in figures:
        lines.append(figure_section(data))
    lines.append("---")
    lines.append("")
    lines.append("Regenerate with `python -m repro paper` (add `--smoke` for "
                 "the reduced grid). Completed cells live in the results "
                 "store next to this report; a re-run only simulates what "
                 "is missing.")
    return "\n".join(lines) + "\n"


def figures_json(figures: list[FigureData], mode: str) -> str:
    """The machine-readable ``figures.json`` document."""
    payload = {
        "version": FIGURES_FORMAT_VERSION,
        "paper": "conf_hpca_PeraisS16",
        "mode": mode,
        "figures": [data.to_dict() for data in figures],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_figures(figures: list[FigureData], out_dir: str | Path,
                   mode: str, cells: int | None = None) -> dict[str, Path]:
    """Write every artifact under ``out_dir``; returns the paths written."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}
    for data in figures:
        path = out / f"{data.slug}.svg"
        path.write_text(render_chart(data) + "\n")
        paths[data.slug] = path
    paths["figures_json"] = out / "figures.json"
    paths["figures_json"].write_text(figures_json(figures, mode))
    paths["report"] = out / "REPORT.md"
    paths["report"].write_text(report_markdown(figures, mode, cells=cells))
    return paths
