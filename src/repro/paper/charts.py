"""Zero-dependency SVG charts for the paper-figure pipeline.

Pure-python renderers for the two chart forms the figures need: a grouped
bar chart (speedup per workload per scheme, Figure 7) and a line chart
(sensitivity curves, Figures 8 and 9).  The output is a standalone SVG
document string -- no matplotlib, no numpy, nothing outside the standard
library -- styled to one quiet system: thin marks, a 4px-rounded data end
anchored square at the baseline, 2px surface gaps between touching bars,
2px lines with surface-ringed markers, hairline gridlines, a legend
whenever there are two or more series, and text always in ink colors
(identity is carried by the colored mark beside it, never by coloring the
text).  Every mark carries a native ``<title>`` tooltip.

Speedup charts use the *baseline* (ratio 1.0) as the bar anchor: bars grow
up for speedups and down for slowdowns, which is the honest geometry for a
ratio-over-baseline measure (a zero-anchored bar would compress the entire
story into the top few pixels).
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape

#: Categorical series colors (light mode), assigned in fixed slot order --
#: never cycled, never reordered per chart.
PALETTE: tuple[str, ...] = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)

SURFACE = "#fcfcfb"
INK = "#0b0b0b"
INK_SECONDARY = "#52514e"
INK_MUTED = "#898781"
GRIDLINE = "#e1e0d9"
AXIS = "#c3c2b7"
FONT = 'font-family="system-ui, -apple-system, &quot;Segoe UI&quot;, sans-serif"'


def series_color(index: int) -> str:
    """Palette slot for series ``index`` (fixed order; >8 series is a design
    error upstream -- fold or facet before rendering)."""
    return PALETTE[index % len(PALETTE)]


def _nice_ticks(lo: float, hi: float, target: int = 5) -> list[float]:
    """Clean tick positions covering [lo, hi] (1/2/5 ladder)."""
    if hi <= lo:
        hi = lo + 1.0
    raw_step = (hi - lo) / max(target, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    step = next(m * magnitude for m in (1, 2, 5, 10) if m * magnitude >= raw_step)
    first = math.floor(lo / step) * step
    ticks = []
    value = first
    while value <= hi + step * 1e-9:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _fmt(value: float, step: float) -> str:
    """Tick label with just enough decimals for the step size."""
    decimals = max(0, -math.floor(math.log10(step))) if step < 1 else 0
    return f"{value:.{decimals}f}"


def _text(x: float, y: float, content: str, *, size: int = 11,
          color: str = INK_SECONDARY, anchor: str = "middle",
          weight: str = "normal", transform: str = "") -> str:
    extra = f' transform="{transform}"' if transform else ""
    return (f'<text x="{x:.1f}" y="{y:.1f}" {FONT} font-size="{size}" '
            f'font-weight="{weight}" fill="{color}" '
            f'text-anchor="{anchor}"{extra}>{escape(content)}</text>')


def _legend(series_names: list[str], x: float, y: float) -> list[str]:
    """One legend row: colored swatch + name per series, text in ink."""
    parts = []
    offset = x
    for index, name in enumerate(series_names):
        parts.append(f'<rect x="{offset:.1f}" y="{y - 8:.1f}" width="10" '
                     f'height="10" rx="2" fill="{series_color(index)}"/>')
        parts.append(_text(offset + 14, y + 1, name, anchor="start"))
        offset += 14 + 7 * len(name) + 18
    return parts


def _frame(width: int, height: int, title: str, body: list[str]) -> str:
    head = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{escape(title, {chr(34): "&quot;"})}">',
        f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>',
        _text(16, 24, title, size=14, color=INK, weight="600", anchor="start"),
    ]
    return "\n".join(head + body + ["</svg>"])


def _y_scale(values: list[float], top: float, bottom: float, anchor: float):
    """Y scale and clean ticks covering the data plus the ``anchor`` line."""
    lo = min(values + [anchor])
    hi = max(values + [anchor])
    pad = max((hi - lo) * 0.12, 0.01)
    ticks = _nice_ticks(lo - pad, hi + pad)
    lo, hi = ticks[0], ticks[-1]

    def scale(value: float) -> float:
        return bottom - (value - lo) / (hi - lo) * (bottom - top)

    return scale, ticks


def _grid_and_axis(scale, ticks, left: float, right: float,
                   anchor: float | None = None) -> list[str]:
    parts = []
    step = ticks[1] - ticks[0] if len(ticks) > 1 else 1.0
    for tick in ticks:
        y = scale(tick)
        color = AXIS if anchor is not None and abs(tick - anchor) < 1e-9 \
            else GRIDLINE
        parts.append(f'<line x1="{left:.1f}" y1="{y:.1f}" x2="{right:.1f}" '
                     f'y2="{y:.1f}" stroke="{color}" stroke-width="1"/>')
        parts.append(_text(left - 6, y + 3.5, _fmt(tick, step),
                           color=INK_MUTED, anchor="end", size=10))
    return parts


def bar_chart(title: str, categories: list[str],
              series: list[tuple[str, list[float | None]]],
              *, y_label: str, anchor: float = 1.0,
              emphasize_last_category: bool = True) -> str:
    """Grouped bar chart; bars grow from the ``anchor`` value (1.0 = baseline).

    ``series`` is ``[(name, values)]`` with one value (or ``None`` for a
    missing cell) per category.  The last category is treated as the
    summary group (geomean) and gets direct value labels -- selective
    labeling, the rest is carried by the axis and tooltips.
    """
    n_series = max(len(series), 1)
    bar_w = max(5, min(24, int(180 / n_series)))
    group_w = n_series * (bar_w + 2) + 18
    left, top = 56, 58
    bottom_pad = 64
    # Wide enough for the data *and* for the title/legend rows (7.6px/char
    # approximates the 14px title; labels are never allowed to overflow).
    width = max(left + group_w * len(categories) + 20,
                32 + int(7.6 * len(title)),
                56 + sum(32 + 7 * len(name) for name, _ in series))
    height = 380
    bottom = height - bottom_pad
    flat = [v for _, values in series for v in values if v is not None]
    scale, ticks = _y_scale(flat or [anchor], top, bottom, anchor)
    body = _grid_and_axis(scale, ticks, left, width - 12, anchor)
    body.extend(_legend([name for name, _ in series], left, 42))
    body.append(_text(16, 42, y_label, color=INK_MUTED, anchor="start",
                      size=10, transform=""))
    y_anchor = scale(anchor)
    for cat_index, category in enumerate(categories):
        group_x = left + cat_index * group_w + 9
        is_summary = emphasize_last_category and cat_index == len(categories) - 1
        for series_index, (name, values) in enumerate(series):
            value = values[cat_index] if cat_index < len(values) else None
            if value is None:
                continue
            x = group_x + series_index * (bar_w + 2)
            y_val = scale(value)
            h = abs(y_anchor - y_val)
            r = min(4.0, h)
            if h < 0.75:  # value == anchor: a hairline tick, not a bar
                bar = (f'<line x1="{x:.1f}" y1="{y_anchor:.1f}" '
                       f'x2="{x + bar_w:.1f}" y2="{y_anchor:.1f}" '
                       f'stroke="{series_color(series_index)}" stroke-width="1.5"/>')
            elif value >= anchor:
                bar = (f'<path d="M{x:.1f},{y_anchor:.1f} L{x:.1f},{y_val + r:.1f} '
                       f'Q{x:.1f},{y_val:.1f} {x + r:.1f},{y_val:.1f} '
                       f'L{x + bar_w - r:.1f},{y_val:.1f} '
                       f'Q{x + bar_w:.1f},{y_val:.1f} {x + bar_w:.1f},{y_val + r:.1f} '
                       f'L{x + bar_w:.1f},{y_anchor:.1f} Z" '
                       f'fill="{series_color(series_index)}">')
            else:
                bar = (f'<path d="M{x:.1f},{y_anchor:.1f} L{x:.1f},{y_val - r:.1f} '
                       f'Q{x:.1f},{y_val:.1f} {x + r:.1f},{y_val:.1f} '
                       f'L{x + bar_w - r:.1f},{y_val:.1f} '
                       f'Q{x + bar_w:.1f},{y_val:.1f} {x + bar_w:.1f},{y_val - r:.1f} '
                       f'L{x + bar_w:.1f},{y_anchor:.1f} Z" '
                       f'fill="{series_color(series_index)}">')
            tooltip = f"<title>{escape(f'{name} / {category}: {value:.3f}x')}</title>"
            if bar.endswith(">") and not bar.endswith("/>"):
                body.append(bar + tooltip + "</path>")
            else:
                body.append(bar)
            if is_summary:
                body.append(_text(x + bar_w / 2, min(y_val, y_anchor) - 5,
                                  f"{value:.2f}", size=9, color=INK))
        label_x = group_x + (group_w - 18) / 2
        body.append(_text(label_x, bottom + 14, category, size=10,
                          color=INK_MUTED if not is_summary else INK,
                          anchor="end",
                          transform=f"rotate(-35 {label_x:.1f} {bottom + 14:.1f})"))
    return _frame(width, height, title, body)


def line_chart(title: str, x_values: list[int],
               series: list[tuple[str, list[float | None]]],
               *, x_label: str, y_label: str, anchor: float = 1.0) -> str:
    """Line chart over an ordered axis (PRF size, tracker entries).

    Points are equally spaced (the axes here are doubling ladders, where
    equal spacing reads better than a linear squash); 2px lines, >=8px
    markers with a 2px surface ring, direct end labels when they do not
    collide, legend always.
    """
    left, top, right_pad = 56, 58, 96
    width = max(640, 32 + int(7.6 * len(title)),
                56 + sum(32 + 7 * len(name) for name, _ in series))
    height = 360
    bottom = height - 48
    right = width - right_pad
    flat = [v for _, values in series for v in values if v is not None]
    scale, ticks = _y_scale(flat or [anchor], top, bottom, anchor)
    body = _grid_and_axis(scale, ticks, left, right + 18, anchor)
    body.extend(_legend([name for name, _ in series], left, 42))

    def x_pos(index: int) -> float:
        if len(x_values) == 1:
            return (left + right) / 2
        return left + index / (len(x_values) - 1) * (right - left)

    for index, x_value in enumerate(x_values):
        body.append(_text(x_pos(index), bottom + 18, str(x_value), size=10,
                          color=INK_MUTED))
    body.append(_text((left + right) / 2, height - 8, x_label, size=10,
                      color=INK_MUTED))
    body.append(_text(16, 42, y_label, color=INK_MUTED, anchor="start", size=10))

    end_labels: list[tuple[float, int, str]] = []
    for series_index, (name, values) in enumerate(series):
        color = series_color(series_index)
        points = [(x_pos(i), scale(v), x_values[i], v)
                  for i, v in enumerate(values) if v is not None]
        if not points:
            continue
        if len(points) > 1:
            path = " ".join(f"{'M' if i == 0 else 'L'}{x:.1f},{y:.1f}"
                            for i, (x, y, _, _) in enumerate(points))
            body.append(f'<path d="{path}" fill="none" stroke="{color}" '
                        'stroke-width="2" stroke-linecap="round" '
                        'stroke-linejoin="round"/>')
        for x, y, xv, v in points:
            body.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4.5" fill="{color}" '
                f'stroke="{SURFACE}" stroke-width="2">'
                f"<title>{escape(f'{name} @ {xv}: {v:.3f}x')}</title></circle>")
        end_labels.append((points[-1][1], series_index, name))

    # Direct end labels, skipped when they would collide (the legend and
    # tooltips still carry identity -- never stack detached labels).
    end_labels.sort()
    last_y = -1e9
    for y, series_index, name in end_labels:
        if y - last_y < 12:
            continue
        last_y = y
        body.append(_text(right + 24, y + 3.5, name, anchor="start", size=10,
                          color=INK_SECONDARY))
        body.append(f'<circle cx="{right + 18:.1f}" cy="{y:.1f}" r="3.5" '
                    f'fill="{series_color(series_index)}"/>')
    return _frame(width, height, title, body)


#: Pipeline-segment names and palette slots for the timeline chart, in
#: lifecycle order.  Each segment spans two stage cycle marks from a
#: :meth:`repro.telemetry.trace.PipelineTracer.timeline` row.
TIMELINE_SEGMENTS: tuple[tuple[str, str, str], ...] = (
    ("frontend", "fetch", "rename"),
    ("queue", "rename", "issue"),
    ("execute", "issue", "writeback"),
    ("retire", "writeback", "commit"),
)


def timeline_chart(title: str, rows: list[dict], *, max_rows: int = 64) -> str:
    """Pipeline-timeline (Gantt) SVG for traced instruction lifecycles.

    ``rows`` is :meth:`~repro.telemetry.trace.PipelineTracer.timeline`
    output: one row per (seq, attempt) lifecycle with the cycle each stage
    was reached.  Each occupied segment -- frontend (fetch to rename),
    queue (rename to issue), execute (issue to writeback), retire
    (writeback to commit) -- renders as a colored span on the row; a
    squashed lifecycle ends in a red cap at its squash cycle.  Only the
    first ``max_rows`` rows are drawn (the caller windows the trace).
    """
    rows = [row for row in rows if row.get("fetch") is not None][:max_rows]
    if not rows:
        return _frame(420, 120, title,
                      [_text(16, 64, "no traced instructions", size=12,
                             color=INK_MUTED, anchor="start")])

    def _end_cycle(row: dict) -> int:
        marks = [row.get(stage) for stage in
                 ("fetch", "rename", "issue", "writeback", "commit")]
        marks.append(row.get("squash_cycle"))
        return max(mark for mark in marks if mark is not None)

    first_cycle = min(row["fetch"] for row in rows)
    last_cycle = max(_end_cycle(row) for row in rows)
    if last_cycle <= first_cycle:
        last_cycle = first_cycle + 1

    row_height, row_gap = 12, 4
    left, right_pad, top, bottom_pad = 132, 24, 44, 48
    width = 960
    right = width - right_pad
    height = top + len(rows) * (row_height + row_gap) + bottom_pad

    span = last_cycle - first_cycle

    def x_pos(cycle: float) -> float:
        return left + (cycle - first_cycle) / span * (right - left)

    body: list[str] = []
    # Vertical cycle gridlines and axis labels.
    ticks = _nice_ticks(first_cycle, last_cycle)
    step = ticks[1] - ticks[0] if len(ticks) > 1 else 1.0
    plot_bottom = top + len(rows) * (row_height + row_gap)
    for tick in ticks:
        if tick < first_cycle or tick > last_cycle:
            continue
        x = x_pos(tick)
        body.append(f'<line x1="{x:.1f}" y1="{top - 6:.1f}" x2="{x:.1f}" '
                    f'y2="{plot_bottom:.1f}" stroke="{GRIDLINE}" '
                    'stroke-width="1"/>')
        body.append(_text(x, plot_bottom + 14, _fmt(tick, step),
                          color=INK_MUTED, size=10))
    body.append(_text((left + right) / 2, plot_bottom + 30, "cycle",
                      color=INK_SECONDARY, size=11))

    segment_names = [name for name, _, _ in TIMELINE_SEGMENTS]
    for index, row in enumerate(rows):
        y = top + index * (row_height + row_gap)
        mid = y + row_height / 2
        label = f"{row.get('op', '')}#{row['seq']}"
        if row.get("attempt"):
            label += f".{row['attempt']}"
        body.append(_text(left - 8, mid + 3.5, label, anchor="end", size=10,
                          color=INK_SECONDARY))
        end_of_life = row.get("squash_cycle")
        for slot, (name, begin_stage, end_stage) in enumerate(TIMELINE_SEGMENTS):
            begin = row.get(begin_stage)
            if begin is None:
                continue
            end = row.get(end_stage)
            if end is None:
                end = end_of_life if end_of_life is not None else begin
            x0, x1 = x_pos(begin), x_pos(max(end, begin))
            tip = f"{label} {name}: cycle {begin}-{end}"
            body.append(
                f'<rect x="{x0:.1f}" y="{y:.1f}" '
                f'width="{max(x1 - x0, 2.0):.1f}" height="{row_height}" '
                f'rx="2" fill="{series_color(slot)}">'
                f"<title>{escape(tip)}</title></rect>")
        if row.get("squashed"):
            x = x_pos(end_of_life if end_of_life is not None else row["fetch"])
            tip = f"{label} squashed at cycle {end_of_life}"
            body.append(
                f'<rect x="{x - 1.5:.1f}" y="{y - 1:.1f}" width="3" '
                f'height="{row_height + 2}" fill="{PALETTE[7]}">'
                f"<title>{escape(tip)}</title></rect>")

    body.extend(_legend(segment_names, left, 34))
    return _frame(width, height, title, body)
