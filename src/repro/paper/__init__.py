"""Paper-figure reproduction pipeline (``repro paper``).

This subsystem turns sweep results into the deliverable the paper actually
presents: analogues of its Figures 7--9 as SVG charts, markdown tables and
a narrated ``REPORT.md``, produced resumably from an append-only results
store.  The pieces:

* :mod:`repro.paper.figures` -- declarative :class:`FigureSpec` grids
  (scheme comparison, PRF-size sensitivity, tracker-capacity sensitivity)
  that expand into ordinary :class:`~repro.experiments.grid.SweepSpec`
  slices and fold reports back into renderable figure data with automated
  checks of the paper's claims;
* :mod:`repro.paper.store` -- :class:`ResultsStore`, the append-only JSONL
  store that makes grids resumable at cell granularity (also behind
  ``repro sweep --resume``);
* :mod:`repro.paper.charts` -- zero-dependency SVG bar/line renderers;
* :mod:`repro.paper.render` -- ``figures.json`` + ``REPORT.md`` emission;
* :mod:`repro.paper.cli` -- :func:`run_paper`, the driver behind
  ``python -m repro paper [--figure 7|8|9] [--smoke] [--sample-period N]``.

A worked example, smoke-sized (the full grids just take longer)::

    >>> from repro.paper import FIGURES
    >>> spec = FIGURES["9"]
    >>> [s.label for s in spec.slices(smoke=True)]
    ['main']
    >>> spec.slices(smoke=True)[0].spec.job_count()
    12

and the store's contract in one breath -- record once, hit forever:

    >>> from repro.paper import ResultsStore, job_key
    >>> from repro.experiments.grid import SweepSpec
    >>> job = SweepSpec(workloads=("move_chain",), max_ops=500).expand()[0]
    >>> job_key(job).split("|")[:4]
    ['move_chain', 'ops500', 'seed1', 'baseline']
    >>> import tempfile, os
    >>> store = ResultsStore(os.path.join(tempfile.mkdtemp(), "r.jsonl"))
    >>> store.get(job) is None  # nothing recorded yet -> the cell must run
    True
"""

from repro.paper.charts import bar_chart, line_chart
from repro.paper.cli import ALL_FIGURES, PaperRunSummary, run_paper
from repro.paper.figures import FIGURES, FigureData, FigureSpec, GridSlice
from repro.paper.render import render_figures
from repro.paper.store import ResultsStore, job_key

__all__ = [
    "ALL_FIGURES",
    "FIGURES",
    "FigureData",
    "FigureSpec",
    "GridSlice",
    "PaperRunSummary",
    "ResultsStore",
    "bar_chart",
    "job_key",
    "line_chart",
    "render_figures",
    "run_paper",
]
