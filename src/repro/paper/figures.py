"""Declarative figure presets for the paper's evaluation figures.

The paper's results section is three figure families: speedup over the
no-sharing baseline per tracker scheme across the workload suite
(Figure 7), sensitivity of that speedup to the physical-register-file size
(Figure 8), and sensitivity to the ISRB capacity (Figure 9).  A
:class:`FigureSpec` describes one such family declaratively and expands it
into :class:`GridSlice` objects -- each slice a plain
:class:`~repro.experiments.grid.SweepSpec` the existing harness runs --
then folds the finished :class:`~repro.experiments.report.SweepReport`
objects back into a :class:`FigureData` ready for rendering, including the
automated checks of the paper's qualitative claims.

A doctest-sized look at the shape::

    >>> from repro.paper.figures import FIGURES
    >>> sorted(FIGURES)
    ['7', '8', '9']
    >>> slices = FIGURES["7"].slices(smoke=True)
    >>> [(s.label, s.spec.job_count()) for s in slices]
    [('main', 12)]
    >>> FIGURES["8"].slices(smoke=True)[0].spec.base_config.num_int_pregs
    128
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.grid import SCHEME_PRESETS, SweepSpec
from repro.experiments.report import SweepReport, geomean
from repro.pipeline.config import CoreConfig
from repro.workloads import DEFAULT_SUITE

#: Trace length per cell: the full grids match the sweep default, the smoke
#: grid shrinks cells so the whole three-figure run stays under the CI
#: budget (the acceptance bar is two minutes end to end).
FULL_MAX_OPS = 20_000
SMOKE_MAX_OPS = 3_000

#: The >=1M micro-op workloads only tractable under two-speed sampling;
#: Figure 7 runs them as a separate sampled slice in full mode.
LONG_WORKLOADS: tuple[str, ...] = ("long_phase_mix", "long_stride_drift")
LONG_MAX_OPS = 1_000_000
LONG_SAMPLE_PERIOD = 50_000


def scheme_variant_name(scheme: str, base: CoreConfig,
                        entries: int | None = None) -> str:
    """The report-column name a scheme produces under a figure grid.

    Mirrors :meth:`SweepSpec.variant_configs`: preset sizing, move
    elimination and SMB on.  ``entries`` overrides the preset only for
    capacity-limited ("sizeable") schemes, exactly as the ``entries`` sweep
    axis does.
    """
    preset = SCHEME_PRESETS[scheme]
    use_entries = entries if (entries is not None and preset["sizeable"]) \
        else preset["entries"]
    config = (base.with_tracker(scheme=preset["scheme"], entries=use_entries,
                                counter_bits=preset["counter_bits"])
              .with_move_elimination().with_smb())
    return config.variant_name()


@dataclass(frozen=True)
class GridSlice:
    """One independently runnable slab of a figure grid.

    ``x_value`` is the coordinate the slice contributes on a line figure's
    x axis (the PRF size of a Figure-8 slice); bar figures and single-slice
    grids leave it ``None``.
    """

    figure: str
    label: str
    spec: SweepSpec
    x_value: int | None = None


@dataclass
class Claim:
    """One automated check of a qualitative claim from the paper."""

    claim: str
    observed: str
    verdict: str  # "holds" | "diverges" | "inconclusive"

    def to_dict(self) -> dict:
        return {"claim": self.claim, "observed": self.observed,
                "verdict": self.verdict}


@dataclass
class FigureData:
    """Everything the renderer needs for one figure (chart + table + prose)."""

    figure: str
    slug: str
    title: str
    chart: str  # "bar" | "line"
    x_label: str
    y_label: str
    description: str
    paper_claim: str
    categories: list[str] = field(default_factory=list)
    x_values: list[int] = field(default_factory=list)
    series: list[tuple[str, list[float | None]]] = field(default_factory=list)
    claims: list[Claim] = field(default_factory=list)
    failures: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serialisable form (the ``figures.json`` entry)."""
        return {
            "figure": self.figure,
            "slug": self.slug,
            "title": self.title,
            "chart": self.chart,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "description": self.description,
            "paper_claim": self.paper_claim,
            "categories": list(self.categories),
            "x_values": list(self.x_values),
            "series": [{"name": name, "values": list(values)}
                       for name, values in self.series],
            "claims": [claim.to_dict() for claim in self.claims],
            "failures": list(self.failures),
            "svg": f"{self.slug}.svg",
        }


@dataclass(frozen=True)
class FigureSpec:
    """Declarative description of one paper figure's evaluation grid."""

    figure: str
    slug: str
    title: str
    chart: str
    x_label: str
    y_label: str
    description: str
    paper_claim: str
    schemes: tuple[str, ...]
    smoke_schemes: tuple[str, ...]
    workloads: tuple[str, ...]
    smoke_workloads: tuple[str, ...]
    #: Figure-8 axis: per-class physical-register-file sizes; empty = fixed.
    prf_sizes: tuple[int, ...] = ()
    smoke_prf_sizes: tuple[int, ...] = ()
    #: Figure-9 axis: tracker capacities swept on sizeable schemes.
    entries_axis: tuple[int, ...] = ()
    smoke_entries_axis: tuple[int, ...] = ()
    #: Figure-7 extra: run the >=1M-op workloads as a sampled slice.
    long_slice: bool = False

    # -- expansion ------------------------------------------------------------------

    def _axis(self, full, smoke_axis, smoke):
        return smoke_axis if smoke else full

    def slices(self, smoke: bool = False, sample_period: int | None = None,
               seed: int = 1,
               ipc_tolerance: float | None = None) -> list[GridSlice]:
        """Expand into runnable grid slices (each one a ``SweepSpec``).

        ``sample_period`` switches *every* slice to two-speed sampled
        simulation (the long Figure-7 slice is always sampled);
        ``ipc_tolerance`` instead lets the error-budget planner pick the
        cheapest faithful geometry per cell; ``smoke`` swaps in the
        reduced axes.
        """
        schemes = self._axis(self.schemes, self.smoke_schemes, smoke)
        workloads = self._axis(self.workloads, self.smoke_workloads, smoke)
        max_ops = SMOKE_MAX_OPS if smoke else FULL_MAX_OPS
        sampling_kwargs = {}
        if sample_period is not None:
            sampling_kwargs["sample_period"] = sample_period
        if ipc_tolerance is not None:
            sampling_kwargs["sample_tolerance"] = ipc_tolerance
        slices: list[GridSlice] = []
        if self.prf_sizes:
            for prf in self._axis(self.prf_sizes, self.smoke_prf_sizes, smoke):
                base = CoreConfig().replace(num_int_pregs=prf, num_fp_pregs=prf)
                slices.append(GridSlice(
                    figure=self.figure, label=f"prf{prf}", x_value=prf,
                    spec=SweepSpec(schemes=schemes, workloads=workloads,
                                   max_ops=max_ops, seed=seed, base_config=base,
                                   **sampling_kwargs)))
            return slices
        entries_axis = self._axis(self.entries_axis, self.smoke_entries_axis,
                                  smoke)
        slices.append(GridSlice(
            figure=self.figure, label="main",
            spec=SweepSpec(schemes=schemes, workloads=workloads,
                           max_ops=max_ops, seed=seed, entries=entries_axis,
                           **sampling_kwargs)))
        if self.long_slice and not smoke:
            slices.append(GridSlice(
                figure=self.figure, label="long",
                spec=SweepSpec(schemes=schemes, workloads=LONG_WORKLOADS,
                               max_ops=LONG_MAX_OPS, seed=seed,
                               sample_period=sample_period or LONG_SAMPLE_PERIOD,
                               sample_tolerance=ipc_tolerance)))
        return slices

    # -- folding results back into figure data ----------------------------------------

    def extract(self, reports: dict[str, SweepReport],
                smoke: bool = False) -> FigureData:
        """Fold per-slice sweep reports into renderable figure data.

        ``reports`` maps :attr:`GridSlice.label` to the finished report of
        that slice; slices that never ran (interrupted grid) may be absent
        and simply leave holes (``None`` cells) that the renderer and the
        claim checks treat as missing data.
        """
        data = FigureData(
            figure=self.figure, slug=self.slug, title=self.title,
            chart=self.chart, x_label=self.x_label, y_label=self.y_label,
            description=self.description, paper_claim=self.paper_claim)
        for report in reports.values():
            data.failures.extend(report.failures)
        if self.figure == "7":
            self._extract_fig7(data, reports, smoke)
        elif self.figure == "8":
            self._extract_fig8(data, reports, smoke)
        else:
            self._extract_fig9(data, reports, smoke)
        return data

    def _series_schemes(self, smoke: bool) -> tuple[str, ...]:
        return self._axis(self.schemes, self.smoke_schemes, smoke)

    def _extract_fig7(self, data: FigureData, reports, smoke: bool) -> None:
        base = CoreConfig()
        schemes = self._series_schemes(smoke)
        workloads: list[str] = []
        for label in ("main", "long"):
            if label in reports:
                workloads.extend(reports[label].workloads)
        data.categories = workloads + ["geomean"]
        speedups: dict[str, dict[str, float]] = {}
        for label in ("main", "long"):
            if label in reports:
                speedups.update(reports[label].speedups)
        means: dict[str, float] = {}
        for scheme in schemes:
            variant = scheme_variant_name(scheme, base)
            values = [speedups.get(workload, {}).get(variant)
                      for workload in workloads]
            cells = [value for value in values if value is not None]
            mean = geomean(cells) if cells else None
            means[scheme] = mean
            data.series.append((scheme, values + [mean]))
        # Claim 1: sharing never hurts.
        complete = {s: m for s, m in means.items() if m is not None}
        if complete:
            worst = min(complete, key=complete.get)
            data.claims.append(Claim(
                claim="Register sharing never degrades performance: every "
                      "scheme's geomean speedup over the no-sharing baseline "
                      "is at least 1.0.",
                observed=f"minimum geomean speedup {complete[worst]:.3f} "
                         f"({worst})",
                verdict="holds" if complete[worst] >= 0.999 else "diverges"))
        # Claim 2: the bounded ISRB tracks the unlimited scheme closely.
        isrb = complete.get("isrb")
        unlimited = complete.get("unlimited")
        if isrb is not None and unlimited is not None:
            if unlimited <= 1.005:
                verdict, observed = "inconclusive", (
                    f"unlimited sharing itself gains only "
                    f"{(unlimited - 1) * 100:.2f}% on this grid")
            else:
                fraction = (isrb - 1) / (unlimited - 1)
                observed = (f"ISRB geomean {isrb:.3f} vs unlimited "
                            f"{unlimited:.3f} ({fraction * 100:.0f}% of the "
                            "unlimited gain)")
                verdict = "holds" if fraction >= 0.90 else "diverges"
            data.claims.append(Claim(
                claim="A 32-entry, 3-bit ISRB captures nearly all of the "
                      "benefit of unbounded sharing tracking.",
                observed=observed, verdict=verdict))

    def _extract_fig8(self, data: FigureData, reports, smoke: bool) -> None:
        prf_sizes = sorted(self._axis(self.prf_sizes, self.smoke_prf_sizes,
                                      smoke))
        schemes = self._series_schemes(smoke)
        data.x_values = list(prf_sizes)
        data.categories = [str(prf) for prf in prf_sizes]
        series_means: dict[str, list[float | None]] = {}
        for scheme in schemes:
            values: list[float | None] = []
            for prf in prf_sizes:
                report = reports.get(f"prf{prf}")
                if report is None:
                    values.append(None)
                    continue
                base = CoreConfig().replace(num_int_pregs=prf, num_fp_pregs=prf)
                variant = scheme_variant_name(scheme, base)
                values.append(report.geomean_speedups().get(variant))
            series_means[scheme] = values
            data.series.append((scheme, values))
        # Claim 1: the benefit grows as the PRF shrinks.
        isrb = series_means.get("isrb", [])
        known = [(prf, value) for prf, value in zip(prf_sizes, isrb)
                 if value is not None]
        if len(known) >= 2:
            smallest, largest = known[0], known[-1]
            observed = (f"ISRB geomean speedup {smallest[1]:.3f} at "
                        f"{smallest[0]} regs/class vs {largest[1]:.3f} at "
                        f"{largest[0]}")
            verdict = "holds" if smallest[1] >= largest[1] + 0.002 else "diverges"
            data.claims.append(Claim(
                claim="Sharing matters more under register pressure: the "
                      "speedup over the same-size baseline grows as the PRF "
                      "shrinks.", observed=observed, verdict=verdict))
        # Claim 2: sharing lets a smaller PRF stand in for a bigger one.
        small_prf, big_prf = prf_sizes[0], prf_sizes[-1]
        small_report = reports.get(f"prf{small_prf}")
        big_report = reports.get(f"prf{big_prf}")
        if small_report is not None and big_report is not None:
            small_base = CoreConfig().replace(num_int_pregs=small_prf,
                                              num_fp_pregs=small_prf)
            variant = scheme_variant_name("isrb", small_base)
            ratios = []
            for workload in big_report.workloads:
                shared = small_report.ipc.get(workload, {}).get(variant)
                unshared = big_report.ipc.get(workload, {}).get("baseline")
                if shared and unshared:
                    ratios.append(shared / unshared)
            if ratios:
                ratio = geomean(ratios)
                data.claims.append(Claim(
                    claim="With ISRB sharing, a reduced PRF sustains most of "
                          "the IPC of a much larger PRF without sharing.",
                    observed=(f"{small_prf} regs/class with ISRB reaches "
                              f"{ratio * 100:.1f}% of the {big_prf}-reg "
                              "no-sharing IPC (geomean)"),
                    verdict="holds" if ratio >= 0.95 else "diverges"))

    def _extract_fig9(self, data: FigureData, reports, smoke: bool) -> None:
        report = reports.get("main")
        entries_axis = sorted(self._axis(self.entries_axis,
                                         self.smoke_entries_axis, smoke))
        schemes = self._series_schemes(smoke)
        data.x_values = list(entries_axis)
        data.categories = [str(entries) for entries in entries_axis]
        if report is None:
            return
        base = CoreConfig()
        means = report.geomean_speedups()
        sized = [s for s in schemes if SCHEME_PRESETS[s]["sizeable"]]
        flat = [s for s in schemes if not SCHEME_PRESETS[s]["sizeable"]]
        series_means: dict[str, list[float | None]] = {}
        for scheme in sized:
            values = [means.get(scheme_variant_name(scheme, base, entries=n))
                      for n in entries_axis]
            series_means[scheme] = values
            data.series.append((scheme, values))
        for scheme in flat:
            value = means.get(scheme_variant_name(scheme, base))
            data.series.append((scheme, [value] * len(entries_axis)))
            series_means[scheme] = [value] * len(entries_axis)
        # Claim 1: capacity saturates around the paper's 32-entry point.
        isrb = dict(zip(entries_axis, series_means.get("isrb", [])))
        unlimited = (series_means.get("unlimited") or [None])[0]
        isrb32 = isrb.get(32)
        if isrb32 is not None and unlimited is not None:
            if unlimited <= 1.005:
                observed = (f"unlimited tracking itself gains only "
                            f"{(unlimited - 1) * 100:.2f}% on this grid")
                verdict = "inconclusive"
            else:
                fraction = (isrb32 - 1) / (unlimited - 1)
                observed = (f"32-entry ISRB geomean {isrb32:.3f} vs unlimited "
                            f"{unlimited:.3f} ({fraction * 100:.0f}% of the "
                            "unlimited gain)")
                verdict = "holds" if fraction >= 0.90 else "diverges"
            data.claims.append(Claim(
                claim="ISRB capacity saturates: 32 entries capture nearly "
                      "all of the benefit of unlimited tracking.",
                observed=observed, verdict=verdict))
        # Claim 2: below saturation, capacity still buys performance.
        known = [(n, v) for n, v in sorted(isrb.items()) if v is not None]
        if len(known) >= 2:
            first, last = known[0], known[-1]
            data.claims.append(Claim(
                claim="Below saturation, more ISRB entries buy more "
                      "performance.",
                observed=(f"ISRB geomean speedup {first[1]:.3f} at "
                          f"{first[0]} entries vs {last[1]:.3f} at {last[0]}"),
                verdict="holds" if last[1] >= first[1] - 0.002 else "diverges"))


#: The three figure families of the paper's results section, keyed by the
#: figure number ``repro paper --figure`` accepts.
FIGURES: dict[str, FigureSpec] = {
    "7": FigureSpec(
        figure="7", slug="figure7", chart="bar",
        title="Speedup over the no-sharing baseline, per tracker scheme",
        x_label="workload", y_label="speedup over baseline (x)",
        description=(
            "Every tracker scheme runs with move elimination and speculative "
            "memory bypassing enabled on the Table-1 machine; each bar is "
            "that scheme's cycle-count speedup over the no-sharing baseline "
            "on one workload, with a geometric-mean group on the right. The "
            "long workloads run under two-speed sampling in full mode."),
        paper_claim=(
            "Physical register sharing turns move elimination and SMB into "
            "consistent wins, and the bounded ISRB matches unbounded "
            "tracking."),
        schemes=("isrb", "refcount_checkpoint", "rda", "mit", "unlimited"),
        smoke_schemes=("isrb", "refcount_checkpoint", "unlimited"),
        workloads=tuple(w for w in DEFAULT_SUITE if w not in LONG_WORKLOADS),
        smoke_workloads=("move_chain", "spill_reload", "branchy"),
        long_slice=True,
    ),
    "8": FigureSpec(
        figure="8", slug="figure8", chart="line",
        title="Sensitivity to physical-register-file size",
        x_label="physical registers per class", y_label="geomean speedup (x)",
        description=(
            "The same machine with the per-class physical register file "
            "resized; each point is the geomean speedup of a scheme over the "
            "no-sharing baseline *at that PRF size*, so the curve shows how "
            "much sharing matters as register pressure rises."),
        paper_claim=(
            "Sharing is most valuable when registers are scarce: the smaller "
            "the PRF, the larger the speedup, letting a shared smaller PRF "
            "stand in for a bigger conventional one."),
        schemes=("isrb", "unlimited"),
        smoke_schemes=("isrb", "unlimited"),
        workloads=("move_chain", "spill_reload", "partial_moves", "stack_args",
                   "deep_recursion", "fp_moves", "fp_recurrence", "hash_update"),
        smoke_workloads=("move_chain", "spill_reload", "fp_moves"),
        prf_sizes=(96, 128, 192, 256),
        smoke_prf_sizes=(128, 256),
    ),
    "9": FigureSpec(
        figure="9", slug="figure9", chart="line",
        title="Sensitivity to tracker capacity (ISRB entries)",
        x_label="tracker entries", y_label="geomean speedup (x)",
        description=(
            "Capacity-limited trackers swept across their entry count on the "
            "Table-1 machine, with the unlimited tracker as the flat upper "
            "reference; each point is the geomean speedup over the "
            "no-sharing baseline."),
        paper_claim=(
            "A 32-entry ISRB is enough: performance saturates well below "
            "unbounded capacity, which is what makes the scheme cheap."),
        schemes=("isrb", "rda", "mit", "unlimited"),
        smoke_schemes=("isrb", "unlimited"),
        workloads=("move_chain", "partial_moves", "spill_reload", "fp_moves",
                   "load_load", "stream_reduce", "hash_update", "list_traverse"),
        smoke_workloads=("move_chain", "partial_moves", "spill_reload"),
        entries_axis=(8, 16, 32, 64),
        smoke_entries_axis=(8, 32),
    ),
}
