"""The ``repro paper`` pipeline driver.

:func:`run_paper` is the one-call entry point behind ``python -m repro
paper``: expand the requested :class:`~repro.paper.figures.FigureSpec`
grids into sweep slices, run every slice through the existing harness
(worker pool, checkpoint farm for sampled slices) on top of a shared
:class:`~repro.paper.store.ResultsStore`, fold the reports into figure
data, and render ``artifacts/paper/``.

Because every completed cell is in the store, the pipeline is resumable at
cell granularity: a killed run restarts where it stopped, and a re-run
after deleting rendered artifacts re-renders them from the store without
simulating anything (``PaperRunSummary.simulated == 0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.runner import ProgressCallback, run_sweep
from repro.paper.figures import FIGURES, FigureData
from repro.paper.render import render_figures
from repro.paper.store import ResultsStore

#: Figure keys in presentation order.
ALL_FIGURES: tuple[str, ...] = ("7", "8", "9")


@dataclass
class PaperRunSummary:
    """What one ``repro paper`` invocation did (printed by the CLI)."""

    mode: str
    figures: list[str]
    total_cells: int = 0
    simulated: int = 0
    from_store: int = 0
    failures: int = 0
    out_dir: Path = Path("artifacts/paper")
    store_path: Path = Path("artifacts/paper/store/results.jsonl")
    paths: dict[str, Path] = field(default_factory=dict)
    figure_data: list[FigureData] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"mode      : {self.mode}",
            f"figures   : {', '.join(self.figures)}",
            f"cells     : {self.total_cells} "
            f"({self.simulated} simulated, {self.from_store} from store)",
            f"artifacts : {self.out_dir}",
            f"store     : {self.store_path}",
        ]
        if self.failures:
            lines.append(f"FAILURES  : {self.failures} cell(s) -- see REPORT.md")
        return "\n".join(lines)


def run_paper(figures: tuple[str, ...] | None = None, smoke: bool = False,
              sample_period: int | None = None,
              ipc_tolerance: float | None = None,
              out_dir: str | Path = "artifacts/paper", workers: int = 1,
              seed: int = 1, timeout: float | None = None,
              progress: ProgressCallback | None = None,
              slice_progress=None,
              store_path: str | Path | None = None,
              logger=None) -> PaperRunSummary:
    """Run the figure grids (resumably) and render the paper artifact.

    ``figures`` selects a subset of :data:`ALL_FIGURES`; ``smoke`` runs the
    reduced grids (the CI target: well under two minutes end to end);
    ``sample_period`` switches every slice to two-speed sampled simulation,
    while ``ipc_tolerance`` switches them to error-budget sampling (the
    planner grows each cell's window count until the IPC 95% CI relative
    half-width is within the tolerance).
    ``slice_progress(figure, label, job_count)`` is called before each grid
    slice starts; ``progress`` is the usual per-job callback.

    Results land in ``store_path`` (default ``<out_dir>/store/results.jsonl``)
    as they complete, so interrupting and restarting never repeats finished
    cells -- and deleting rendered figures re-renders them from the store
    alone.

    ``logger`` (a :class:`~repro.telemetry.runlog.RunLogger`) times the
    sweep phases plus the figure ``render`` phase and surfaces per-cell
    failures as warning events; artifacts are identical without it.
    """
    wanted = list(dict.fromkeys(figures or ALL_FIGURES))
    unknown = [key for key in wanted if key not in FIGURES]
    if unknown:
        raise ValueError(f"unknown figure(s) {unknown}; known: "
                         f"{', '.join(ALL_FIGURES)}")
    out = Path(out_dir)
    store_file = Path(store_path) if store_path is not None \
        else out / "store" / "results.jsonl"
    summary = PaperRunSummary(mode="smoke" if smoke else "full",
                              figures=wanted, out_dir=out,
                              store_path=store_file)

    def _counting_progress(completed: int, total: int, job_result) -> None:
        if job_result.from_store:
            summary.from_store += 1
        else:
            summary.simulated += 1
        if progress is not None:
            progress(completed, total, job_result)

    with ResultsStore(store_file) as store:
        for key in wanted:
            spec = FIGURES[key]
            reports = {}
            for grid_slice in spec.slices(smoke=smoke,
                                          sample_period=sample_period,
                                          seed=seed,
                                          ipc_tolerance=ipc_tolerance):
                job_count = grid_slice.spec.job_count()
                summary.total_cells += job_count
                if slice_progress is not None:
                    slice_progress(key, grid_slice.label, job_count)
                report = run_sweep(grid_slice.spec, workers=workers,
                                   cache_dir=None, timeout=timeout,
                                   progress=_counting_progress, store=store,
                                   logger=logger)
                reports[grid_slice.label] = report
                summary.failures += len(report.failures)
            summary.figure_data.append(spec.extract(reports, smoke=smoke))

    if logger is not None:
        with logger.phase("render", figures=len(summary.figure_data)):
            summary.paths = render_figures(summary.figure_data, out,
                                           mode=summary.mode,
                                           cells=summary.total_cells)
    else:
        summary.paths = render_figures(summary.figure_data, out,
                                       mode=summary.mode,
                                       cells=summary.total_cells)
    return summary
