"""Structured run observability: JSONL logs, phase timers, live progress.

The long-running layers (``repro sweep``, ``repro paper``) used to be
silent between per-job lines: no phase attribution (how long did trace
building take versus simulation versus rendering?), no rate or ETA, and
failures scrolled past as one-word statuses.  This module supplies the
three missing pieces:

* :class:`RunLogger` -- structured events as JSON lines (one file per
  run), with ``warning`` severity for surfaced failures and a
  :meth:`RunLogger.phase` context manager that times named phases
  (``trace_build``, ``plan``, ``execute``, ``render``) into
  :attr:`RunLogger.phase_seconds`;
* :class:`ProgressReporter` -- a live ``completed/total`` line with
  cells-per-second and ETA, fed by the runner's existing progress
  callback;
* both keep wall-clock readings strictly *outside* the deterministic
  report artifacts: timings go to the log file, stderr and ResultsStore
  record *metadata* only, never into ``sweep.json`` / ``figures.json``
  (the determinism tests pin those bytes).

Clocks are injectable so the tests drive them deterministically.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path


class RunLogger:
    """Append structured events to a JSONL file and/or a text stream.

    ``path=None`` keeps the logger purely in-memory (events are still
    collected and phases timed); ``stream`` (default ``None``) receives
    one-line renderings of warning-and-above events so failures are
    visible without tailing the log file.
    """

    def __init__(self, path: str | Path | None = None, stream=None,
                 clock=time.perf_counter, wall_clock=time.time) -> None:
        self.path = Path(path) if path is not None else None
        self.stream = stream
        self._clock = clock
        self._wall_clock = wall_clock
        self._handle = None
        self.events: list[dict] = []
        #: Accumulated seconds per named phase (see :meth:`phase`).
        self.phase_seconds: dict[str, float] = {}
        self.warnings: list[dict] = []
        #: Occurrences per event name -- the cheap aggregate view the
        #: reliability machinery reads back (how many ``job_retry`` /
        #: ``worker_crash`` / ``lease_reclaimed`` events this run saw)
        #: without rescanning :attr:`events`.
        self.counters: dict[str, int] = {}

    # -- events ---------------------------------------------------------------------

    def event(self, event: str, level: str = "info", **fields) -> dict:
        """Record one structured event (and flush it to the log file)."""
        record = {"t": round(self._wall_clock(), 6), "level": level,
                  "event": event}
        record.update(fields)
        self.events.append(record)
        self.counters[event] = self.counters.get(event, 0) + 1
        if level in ("warning", "error"):
            self.warnings.append(record)
            if self.stream is not None:
                detail = " ".join(f"{key}={value}" for key, value in fields.items())
                print(f"{level.upper()}: {event} {detail}".rstrip(),
                      file=self.stream)
        if self.path is not None:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a")
            self._handle.write(json.dumps(record, sort_keys=True,
                                          default=str) + "\n")
            self._handle.flush()
        return record

    def warning(self, event: str, **fields) -> dict:
        """Record a warning event (always surfaced on the stream)."""
        return self.event(event, level="warning", **fields)

    # -- phase timers ---------------------------------------------------------------

    def phase(self, name: str, **fields) -> "_Phase":
        """Context manager timing one named phase.

        Elapsed seconds accumulate in :attr:`phase_seconds` (re-entering a
        name adds to its total) and a ``phase_end`` event records the
        duration.
        """
        return _Phase(self, name, fields)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLogger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Phase:
    def __init__(self, logger: RunLogger, name: str, fields: dict) -> None:
        self._logger = logger
        self._name = name
        self._fields = fields
        self._start = 0.0

    def __enter__(self) -> "_Phase":
        self._start = self._logger._clock()
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        elapsed = self._logger._clock() - self._start
        seconds = self._logger.phase_seconds
        seconds[self._name] = seconds.get(self._name, 0.0) + elapsed
        self._logger.event("phase_end", phase=self._name,
                           seconds=round(elapsed, 6),
                           ok=exc_type is None, **self._fields)


def format_eta(seconds: float) -> str:
    """``M:SS`` / ``H:MM:SS`` rendering of a duration estimate."""
    total = max(int(round(seconds)), 0)
    hours, rest = divmod(total, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class ProgressReporter:
    """Live ``[completed/total]`` progress with rate and ETA.

    Designed to sit behind the runner's ``progress(completed, total,
    job_result)`` callback (:meth:`job_progress`); cells resumed from a
    results store count toward completion but not toward the simulation
    rate, so the ETA reflects actual simulating speed.  A fresh counting
    epoch starts whenever ``completed`` resets (the paper pipeline runs
    many sweep slices through one reporter).
    """

    def __init__(self, stream=None, label: str = "cells",
                 clock=time.perf_counter) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self._clock = clock
        self._epoch_start: float | None = None
        self._last_completed = 0
        self._simulated = 0

    def job_progress(self, completed: int, total: int, job_result) -> None:
        """Adapter matching :data:`repro.experiments.runner.ProgressCallback`."""
        from_store = getattr(job_result, "from_store", False)
        status = "ok" if job_result.ok else "FAILED"
        if from_store:
            status = "stored"
        result = getattr(job_result, "result", None)
        ipc = f" ipc={result.ipc:.2f}" if result is not None else ""
        job = getattr(job_result, "job", None)
        job_id = getattr(job, "job_id", "?")
        elapsed = getattr(job_result, "elapsed", 0.0)
        self.update(completed, total, simulated=not from_store,
                    detail=f"{job_id:48s} {status}{ipc} ({elapsed:.1f}s)")

    def update(self, completed: int, total: int, simulated: bool = True,
               detail: str = "") -> None:
        """Print one progress line; rate/ETA appear once measurable."""
        now = self._clock()
        if completed <= self._last_completed or self._epoch_start is None:
            self._epoch_start = now
            self._simulated = 0
        self._last_completed = completed
        if simulated:
            self._simulated += 1
        pace = ""
        window = now - self._epoch_start
        if self._simulated > 1 and window > 0:
            rate = self._simulated / window
            remaining = max(total - completed, 0)
            pace = (f"  {rate:5.1f} {self.label}/s"
                    f"  ETA {format_eta(remaining / rate)}")
        print(f"[{completed}/{total}]{pace}  {detail}".rstrip(),
              file=self.stream)
