"""Unified metrics registry: one schema for every statistic the repo emits.

Before this module, each layer kept its own ad-hoc stat dictionary -- the
core's ``counters`` dict, the sampling aggregator's suffix-driven merge
rules, the sweep runner's cache accounting -- and every consumer had to
know which keys are additive event counts, which are occupancy peaks and
which are ratios that must never be summed.  :class:`MetricsRegistry`
makes that contract explicit: every metric carries a *kind* (counter,
gauge or histogram) and a *merge* policy (sum, max, last, mean), and the
registry knows how to combine two registries accordingly.

The merge policies reproduce the sampling aggregator's rules exactly
(bit-identically -- float accumulation order is preserved), so
:func:`repro.pipeline.sampling._aggregate_stats` is now a thin wrapper
over :meth:`MetricsRegistry.merge`.  :func:`classify_stat` is the single
home of the suffix conventions those rules rely on.

Exports are schema-versioned (:data:`METRICS_SCHEMA_VERSION`):
:meth:`MetricsRegistry.to_dict` round-trips through
:meth:`MetricsRegistry.from_dict`, and :meth:`MetricsRegistry.as_stats`
degrades to the flat ``dict[str, float]`` the report artifacts already
store, so nothing downstream changes shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Bumped whenever the exported metric record layout changes.
METRICS_SCHEMA_VERSION = 1

#: Valid metric kinds.
KINDS = ("counter", "gauge", "histogram")

#: Valid merge policies and what they mean when combining two registries:
#: ``sum`` adds (event counters), ``max`` keeps the larger (occupancy
#: peaks), ``last`` keeps the newer (configuration constants), ``mean``
#: averages every observed sample (rates and fractions).
MERGES = ("sum", "max", "last", "mean")

#: Stat-key suffix conventions shared with the sampling aggregator: keys
#: matching these are per-window measurements that must not be summed.
MEAN_SUFFIXES = ("_rate", "_fraction", "_mean_distance")
CONSTANT_SUFFIXES = ("storage_bits", "checkpoint_bits", "_code")

#: Why an adaptive (error-budget) sampled run stopped opening windows,
#: encoded as the ``sampling_stop_reason_code`` stat: a fixed geometry never
#: iterates, ``tolerance`` means the CI half-width target was met,
#: ``ceiling`` means the window budget ran out first, and ``halted`` means
#: the program ended before the budget did.
SAMPLING_STOP_REASONS: dict[str, int] = {
    "fixed": 0, "tolerance": 1, "ceiling": 2, "halted": 3,
}


def sampling_stop_reason(code: float) -> str:
    """The stop-reason name behind a ``sampling_stop_reason_code`` stat."""
    for name, value in SAMPLING_STOP_REASONS.items():
        if value == int(code):
            return name
    return "unknown"

#: Default histogram bucket upper bounds (cycles); the last bucket is
#: implicit +inf.
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


def classify_stat(key: str) -> tuple[str, str]:
    """``(kind, merge)`` for one flat stat key, by the repo's conventions.

    * ``*peak_occupancy*`` -- a high-water mark: gauge, merged by ``max``;
    * ``*storage_bits`` / ``*checkpoint_bits`` -- a configuration
      constant: gauge, merged by ``last``;
    * ``*_rate`` / ``*_fraction`` / ``*_mean_distance`` -- a derived
      per-window measurement: gauge, merged by ``mean``;
    * everything else -- an additive event counter, merged by ``sum``.
    """
    if "peak_occupancy" in key:
        return "gauge", "max"
    if key.endswith(CONSTANT_SUFFIXES):
        return "gauge", "last"
    if key.endswith(MEAN_SUFFIXES):
        return "gauge", "mean"
    return "counter", "sum"


def _label_key(name: str, labels: dict | None) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Metric:
    """One named metric: its declaration plus its current value(s).

    ``samples`` is only populated for ``merge == "mean"`` metrics (the
    mean is re-derived over every observed sample, exactly as the
    sampling aggregator always did) and for histograms (bucket counts).
    """

    name: str
    kind: str = "counter"
    merge: str = "sum"
    value: float = 0
    labels: dict = field(default_factory=dict)
    samples: list = field(default_factory=list)
    buckets: tuple = ()
    bucket_counts: list = field(default_factory=list)
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown metric kind {self.kind!r}; one of {KINDS}")
        if self.merge not in MERGES:
            raise ValueError(f"unknown merge policy {self.merge!r}; one of {MERGES}")
        if self.kind == "histogram" and not self.bucket_counts:
            self.buckets = tuple(self.buckets or DEFAULT_BUCKETS)
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    # -- views ----------------------------------------------------------------------

    @property
    def current(self) -> float:
        """The scalar value of this metric (mean metrics derive it)."""
        if self.merge == "mean" and self.samples:
            return sum(self.samples) / len(self.samples)
        return self.value

    def observe(self, value: float) -> None:
        """Record one histogram sample into its bucket (and the sum/count)."""
        if self.kind != "histogram":
            raise ValueError(f"{self.name} is a {self.kind}, not a histogram")
        self.value += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                break
        else:
            self.bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        """Histogram sample count (0 for scalar metrics)."""
        return sum(self.bucket_counts) if self.kind == "histogram" else 0

    def to_dict(self) -> dict:
        data: dict = {"name": self.name, "kind": self.kind, "merge": self.merge,
                      "value": self.value}
        if self.labels:
            data["labels"] = dict(self.labels)
        if self.merge == "mean":
            data["samples"] = list(self.samples)
        if self.kind == "histogram":
            data["buckets"] = list(self.buckets)
            data["bucket_counts"] = list(self.bucket_counts)
        if self.help:
            data["help"] = self.help
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Metric":
        return cls(
            name=data["name"],
            kind=data.get("kind", "counter"),
            merge=data.get("merge", "sum"),
            value=data.get("value", 0),
            labels=dict(data.get("labels", {})),
            samples=list(data.get("samples", [])),
            buckets=tuple(data.get("buckets", ())),
            bucket_counts=list(data.get("bucket_counts", [])),
            help=data.get("help", ""),
        )


class MetricsRegistry:
    """A named collection of metrics with declared merge semantics.

    Insertion-ordered (so :meth:`as_stats` reproduces the key order of the
    dictionaries it absorbs) and deterministic: no wall-clock state, no
    host identity -- two registries built from the same inputs are equal,
    which is what lets registry exports live inside byte-identical report
    artifacts.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # -- declaration / update -------------------------------------------------------

    def _declare(self, name: str, kind: str, merge: str, labels: dict | None,
                 help: str, buckets: tuple = ()) -> Metric:
        key = _label_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = Metric(name=name, kind=kind, merge=merge,
                            labels=dict(labels or {}), help=help, buckets=buckets)
            self._metrics[key] = metric
        elif metric.kind != kind or metric.merge != merge:
            raise ValueError(
                f"metric {key!r} re-declared as {kind}/{merge} "
                f"(was {metric.kind}/{metric.merge})")
        return metric

    def inc(self, name: str, amount: float = 1, labels: dict | None = None,
            help: str = "") -> None:
        """Add ``amount`` to a counter (declared on first use)."""
        metric = self._declare(name, "counter", "sum", labels, help)
        metric.value += amount

    def set(self, name: str, value: float, merge: str = "last",
            labels: dict | None = None, help: str = "") -> None:
        """Set a gauge; ``merge`` declares how cross-window combination works."""
        metric = self._declare(name, "gauge", merge, labels, help)
        if merge == "mean":
            metric.samples.append(value)
        else:
            metric.value = value

    def observe(self, name: str, value: float, labels: dict | None = None,
                buckets: tuple = (), help: str = "") -> None:
        """Record one sample into a histogram (declared on first use)."""
        metric = self._declare(name, "histogram", "sum", labels, help,
                               buckets=buckets)
        metric.observe(value)

    def put(self, key: str, value: float) -> None:
        """Absorb one flat stat under the conventions of :func:`classify_stat`."""
        kind, merge = classify_stat(key)
        if kind == "counter":
            self.inc(key, value)
        else:
            self.set(key, value, merge=merge)

    # -- access ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    def get(self, key: str) -> Metric | None:
        """The :class:`Metric` under flat key ``key`` (``None`` if absent)."""
        return self._metrics.get(key)

    def value(self, key: str, default: float = 0) -> float:
        """Scalar value of one metric (mean metrics derive it)."""
        metric = self._metrics.get(key)
        return default if metric is None else metric.current

    def metrics(self) -> list[Metric]:
        """All metrics, in insertion order."""
        return list(self._metrics.values())

    # -- merge ----------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry under each metric's policy.

        Float accumulation order is "self first, then other" per metric,
        matching a left-to-right fold over windows -- the sampling
        aggregator depends on that for bit-identical totals.  Returns
        ``self`` for chaining.
        """
        for key, theirs in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                self._metrics[key] = Metric.from_dict(theirs.to_dict())
                continue
            if mine.kind != theirs.kind or mine.merge != theirs.merge:
                raise ValueError(
                    f"cannot merge metric {key!r}: {theirs.kind}/{theirs.merge} "
                    f"into {mine.kind}/{mine.merge}")
            if mine.kind == "histogram":
                if mine.buckets != theirs.buckets:
                    raise ValueError(f"histogram {key!r} bucket bounds differ")
                mine.value += theirs.value
                for index, count in enumerate(theirs.bucket_counts):
                    mine.bucket_counts[index] += count
            elif mine.merge == "sum":
                mine.value = mine.value + theirs.value
            elif mine.merge == "max":
                mine.value = max(mine.value, theirs.value)
            elif mine.merge == "last":
                mine.value = theirs.value
            else:  # mean
                mine.samples.extend(theirs.samples)
        return self

    # -- import / export ------------------------------------------------------------

    @classmethod
    def from_stats(cls, stats: dict, skip: tuple = ()) -> "MetricsRegistry":
        """Absorb a flat stat dictionary, classifying each key by convention."""
        registry = cls()
        for key, value in stats.items():
            if key in skip:
                continue
            registry.put(key, value)
        return registry

    def as_stats(self) -> dict:
        """Flatten to the ``dict[str, number]`` shape the artifacts store.

        Histograms are excluded (a flat dict cannot carry buckets; use
        :meth:`to_dict` for the full export).
        """
        return {key: metric.current for key, metric in self._metrics.items()
                if metric.kind != "histogram"}

    def to_dict(self) -> dict:
        """Schema-versioned export of every metric, in insertion order."""
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "metrics": [metric.to_dict() for metric in self._metrics.values()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        schema = data.get("schema")
        if schema != METRICS_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported metrics schema {schema!r} "
                f"(this build reads {METRICS_SCHEMA_VERSION})")
        registry = cls()
        for record in data.get("metrics", []):
            metric = Metric.from_dict(record)
            registry._metrics[_label_key(metric.name, metric.labels)] = metric
        return registry

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metric(s))"
