"""Telemetry: unified metrics, pipeline event tracing, run observability.

Three cooperating pieces (see ``docs/observability.md``):

* :class:`MetricsRegistry` -- counters / gauges / histograms with labels
  and declared merge semantics, behind one schema-versioned export; the
  single home of the stat-classification conventions the sampling
  aggregator relies on;
* :class:`PipelineTracer` / :class:`TraceConfig` -- opt-in
  per-instruction lifecycle tracing on the cycle-level core, exporting
  JSONL, Chrome trace-event JSON (Perfetto) and the Kanata pipeline
  -viewer format.  Off by default with near-zero overhead and
  bit-identical results (pinned by ``tests/test_telemetry.py``);
* :class:`RunLogger` / :class:`ProgressReporter` -- structured JSONL run
  logs, named phase timers and live ``completed/total`` progress with
  ETA for the long-running sweep and paper pipelines.

A worked example -- registries merge under each metric's declared policy
(counters add, peaks take the max, rates average), exactly the rules the
sampling aggregator applies across detailed windows::

    >>> from repro.telemetry import MetricsRegistry
    >>> first = MetricsRegistry.from_stats(
    ...     {"commits": 100, "rob_peak_occupancy": 60, "mem_l1d_miss_rate": 0.10})
    >>> second = MetricsRegistry.from_stats(
    ...     {"commits": 50, "rob_peak_occupancy": 48, "mem_l1d_miss_rate": 0.30})
    >>> merged = first.merge(second)
    >>> merged.as_stats()["commits"]
    150
    >>> merged.as_stats()["rob_peak_occupancy"]
    60
    >>> round(merged.as_stats()["mem_l1d_miss_rate"], 3)
    0.2
    >>> restored = MetricsRegistry.from_dict(merged.to_dict())
    >>> restored.as_stats() == merged.as_stats()
    True
"""

from repro.telemetry.metrics import (
    METRICS_SCHEMA_VERSION,
    Metric,
    MetricsRegistry,
    classify_stat,
)
from repro.telemetry.runlog import ProgressReporter, RunLogger, format_eta
from repro.telemetry.trace import (
    EVENT_REQUIRED_FIELDS,
    STAGES,
    TRACE_SCHEMA_VERSION,
    PipelineTracer,
    TraceConfig,
)

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "Metric",
    "MetricsRegistry",
    "classify_stat",
    "TRACE_SCHEMA_VERSION",
    "STAGES",
    "EVENT_REQUIRED_FIELDS",
    "PipelineTracer",
    "TraceConfig",
    "RunLogger",
    "ProgressReporter",
    "format_eta",
]
