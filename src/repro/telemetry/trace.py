"""Opt-in per-instruction pipeline event tracing.

:class:`PipelineTracer` records the lifecycle of every micro-op inside a
bounded sequence window -- fetch, rename, dispatch, issue, writeback,
commit and squash -- with the renaming outcome (destination / overwritten
/ source physical registers, move elimination, memory bypassing) and the
register-sharing scheme annotated on each event.  The core calls the
``on_*`` hooks behind ``if tracer is not None`` guards, so the tracing-off
path costs one local ``None`` test per stage (see DESIGN.md's
zero-overhead invariant) and results are bit-identical either way: the
tracer only ever *reads* pipeline state.

Three export formats, all derived from the same event list:

* :meth:`PipelineTracer.to_jsonl` -- one JSON event per line behind a
  schema-versioned header (:data:`TRACE_SCHEMA_VERSION`), for ad-hoc
  ``jq``/pandas analysis;
* :meth:`PipelineTracer.to_chrome_trace` -- Chrome trace-event JSON
  (``{"traceEvents": [...]}``) loadable in Perfetto / ``chrome://tracing``,
  one complete ("X") slice per occupied pipeline segment with the
  annotations in ``args``;
* :meth:`PipelineTracer.to_kanata` -- the Kanata text format understood by
  the Konata pipeline viewer (stage lanes F/D/X/P per instruction).

:meth:`PipelineTracer.timeline` feeds the SVG renderer
(:func:`repro.paper.charts.timeline_chart`) behind ``repro trace``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.telemetry.metrics import MetricsRegistry

#: Bumped whenever the JSONL event layout changes.
TRACE_SCHEMA_VERSION = 1

#: Every stage name an event may carry, in pipeline order.
STAGES = ("fetch", "rename", "dispatch", "issue", "execute", "writeback",
          "commit", "squash")

#: Fields present on every event.
EVENT_REQUIRED_FIELDS = ("seq", "attempt", "stage", "cycle")


@dataclass(frozen=True)
class TraceConfig:
    """Which micro-ops to trace (a bounded sequence window).

    Lives on :attr:`repro.pipeline.config.CoreConfig.trace`; ``None``
    there (the default) means no tracer is constructed at all.  ``start``
    and ``limit`` bound the traced window by *sequence number* (trace
    order), which is stable across schemes -- the same window can be
    compared under different trackers.  ``max_events`` is a hard cap on
    recorded events (re-fetches after squashes can revisit the window), so
    a pathological squash storm cannot exhaust memory.
    """

    start: int = 0
    limit: int = 256
    max_events: int = 100_000

    def __post_init__(self) -> None:
        if self.start < 0 or self.limit < 1 or self.max_events < 1:
            raise ValueError("trace window must have start >= 0, "
                             "limit >= 1 and max_events >= 1")

    @property
    def end(self) -> int:
        """One past the last traced sequence number."""
        return self.start + self.limit


class PipelineTracer:
    """Event recorder for one :meth:`~repro.pipeline.core.Core.run`.

    One instance per run, created by the core when
    ``config.trace is not None``; the core guarantees the hooks are only
    reached for micro-ops, never for wall-clock state, so the recording is
    deterministic.
    """

    def __init__(self, config: TraceConfig, workload: str = "",
                 scheme: str = "", config_label: str = "") -> None:
        self.config = config
        self.workload = workload
        self.scheme = scheme
        self.config_label = config_label
        self.events: list[dict] = []
        self.truncated = False
        self._start = config.start
        self._end = config.end
        self._max_events = config.max_events
        #: Squash generation per traced seq: a re-fetched micro-op starts a
        #: new lifecycle attempt instead of corrupting the squashed one.
        self._attempts: dict[int, int] = {}

    # -- recording hooks (called from the core's stage loops) -----------------------

    def wants(self, seq: int) -> bool:
        """Whether ``seq`` falls inside the traced window."""
        return self._start <= seq < self._end

    def _emit(self, seq: int, stage: str, cycle: int, **fields) -> None:
        if len(self.events) >= self._max_events:
            self.truncated = True
            return
        event = {"seq": seq, "attempt": self._attempts.get(seq, 0),
                 "stage": stage, "cycle": cycle}
        event.update(fields)
        self.events.append(event)

    def on_fetch(self, entry, cycle: int) -> None:
        seq = entry.seq
        if not (self._start <= seq < self._end):
            return
        op = entry.op
        self._emit(seq, "fetch", cycle, pc=op.pc, op=op.opcode.value)

    def on_rename(self, entry, cycle: int) -> None:
        seq = entry.seq
        if not (self._start <= seq < self._end):
            return
        self._emit(seq, "rename", cycle,
                   dest_preg=entry.dest_preg, old_preg=entry.old_preg,
                   src_pregs=list(entry.src_pregs),
                   allocated=entry.allocated, eliminated=entry.eliminated,
                   bypassed=entry.bypassed, scheme=self.scheme)
        # Rename and dispatch are one pipeline stage in this model; the
        # dispatch event carries the scheduling outcome (an eliminated move
        # or NOP completes at rename and never enters the issue queue).
        self._emit(seq, "dispatch", cycle,
                   needs_execution=entry.needs_execution,
                   waiting_sources=entry.wait_count)

    def on_issue(self, entry, cycle: int) -> None:
        seq = entry.seq
        if not (self._start <= seq < self._end):
            return
        self._emit(seq, "issue", cycle)
        self._emit(seq, "execute", cycle,
                   latency=entry.complete_cycle - cycle)

    def on_writeback(self, entry, cycle: int) -> None:
        seq = entry.seq
        if not (self._start <= seq < self._end):
            return
        self._emit(seq, "writeback", cycle, dest_preg=entry.dest_preg)

    def on_commit(self, entry, cycle: int) -> None:
        seq = entry.seq
        if not (self._start <= seq < self._end):
            return
        self._emit(seq, "commit", cycle,
                   eliminated=entry.eliminated, bypassed=entry.bypassed)

    def on_squash(self, entries, cycle: int, reason: str) -> None:
        """Record a squash for every in-window entry and open a new attempt."""
        for entry in entries:
            seq = entry.seq
            if not (self._start <= seq < self._end):
                continue
            self._emit(seq, "squash", cycle, reason=reason)
            self._attempts[seq] = self._attempts.get(seq, 0) + 1

    # -- derived views --------------------------------------------------------------

    def timeline(self) -> list[dict]:
        """Per-lifecycle rows: stage cycle marks for every (seq, attempt).

        Each row carries ``seq``, ``attempt``, ``pc``, ``op``, the cycle of
        every stage it reached (``None`` for stages it never reached --
        e.g. an eliminated move never issues) and ``squashed``.  Rows are
        ordered by first event (fetch order).
        """
        rows: dict[tuple[int, int], dict] = {}
        for event in self.events:
            key = (event["seq"], event["attempt"])
            row = rows.get(key)
            if row is None:
                row = rows[key] = {
                    "seq": event["seq"], "attempt": event["attempt"],
                    "pc": None, "op": "", "fetch": None, "rename": None,
                    "issue": None, "writeback": None, "commit": None,
                    "squashed": False, "eliminated": False, "bypassed": False,
                }
            stage = event["stage"]
            if stage == "fetch":
                row["pc"] = event.get("pc")
                row["op"] = event.get("op", "")
                row["fetch"] = event["cycle"]
            elif stage == "rename":
                row["rename"] = event["cycle"]
                row["eliminated"] = event.get("eliminated", False)
                row["bypassed"] = event.get("bypassed", False)
            elif stage == "issue":
                row["issue"] = event["cycle"]
            elif stage == "writeback":
                row["writeback"] = event["cycle"]
            elif stage == "commit":
                row["commit"] = event["cycle"]
            elif stage == "squash":
                row["squashed"] = True
                row["squash_cycle"] = event["cycle"]
        return list(rows.values())

    def summary(self) -> MetricsRegistry:
        """Registry of traced-window aggregates (deterministic, no wall times)."""
        registry = MetricsRegistry()
        registry.inc("traced_events", len(self.events),
                     help="events recorded inside the trace window")
        rows = self.timeline()
        registry.inc("traced_instructions", len(rows),
                     help="distinct (seq, attempt) lifecycles traced")
        for row in rows:
            if row["squashed"]:
                registry.inc("traced_squashes")
            if row["commit"] is not None and row["fetch"] is not None:
                registry.observe("traced_fetch_to_commit_cycles",
                                 row["commit"] - row["fetch"],
                                 help="per-instruction fetch-to-commit latency")
        return registry

    # -- exports --------------------------------------------------------------------

    def header(self) -> dict:
        """The JSONL header record (schema version + run identity)."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "workload": self.workload,
            "scheme": self.scheme,
            "config": self.config_label,
            "window": {"start": self.config.start, "limit": self.config.limit},
            "events": len(self.events),
            "truncated": self.truncated,
        }

    def to_jsonl(self) -> str:
        """Header line + one JSON object per event."""
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(json.dumps(event, sort_keys=True) for event in self.events)
        return "\n".join(lines) + "\n"

    def to_chrome_trace(self, lanes: int = 16) -> dict:
        """Chrome trace-event JSON (Perfetto / ``chrome://tracing``).

        Each lifecycle contributes one complete ("X") slice per occupied
        pipeline segment -- frontend (fetch->rename), queue
        (rename->issue), execute (issue->writeback), retire
        (writeback->commit) -- on one of ``lanes`` threads so concurrent
        instructions render side by side.  ``ts``/``dur`` are in simulated
        cycles (the viewer's "microseconds" are cycles here).  Squashes
        appear as instant ("i") events.
        """
        trace_events: list[dict] = [
            {"ph": "M", "pid": 1, "name": "process_name",
             "args": {"name": f"{self.workload} [{self.scheme or 'core'}]"}},
        ]
        for lane in range(lanes):
            trace_events.append({"ph": "M", "pid": 1, "tid": lane,
                                 "name": "thread_name",
                                 "args": {"name": f"lane {lane}"}})
        segments = (("frontend", "fetch", "rename"),
                    ("queue", "rename", "issue"),
                    ("execute", "issue", "writeback"),
                    ("retire", "writeback", "commit"))
        for index, row in enumerate(self.timeline()):
            tid = index % lanes
            label = f"{row['op']}#{row['seq']}"
            args = {"seq": row["seq"], "attempt": row["attempt"],
                    "pc": row["pc"], "eliminated": row["eliminated"],
                    "bypassed": row["bypassed"], "scheme": self.scheme}
            end_of_life = row.get("squash_cycle")
            for name, begin_stage, end_stage in segments:
                begin = row.get(begin_stage)
                if begin is None:
                    continue
                end = row.get(end_stage)
                if end is None:
                    end = end_of_life if end_of_life is not None else begin
                trace_events.append({
                    "name": f"{name} {label}", "cat": name, "ph": "X",
                    "pid": 1, "tid": tid, "ts": begin,
                    "dur": max(end - begin, 0), "args": args,
                })
            if row["squashed"]:
                trace_events.append({
                    "name": f"squash {label}", "cat": "squash", "ph": "i",
                    "pid": 1, "tid": tid, "s": "t",
                    "ts": end_of_life if end_of_life is not None else 0,
                    "args": args,
                })
        return {"traceEvents": trace_events,
                "displayTimeUnit": "ns",
                "otherData": self.header()}

    def to_kanata(self) -> str:
        """The Kanata pipeline-viewer text format (Konata loads it).

        Stage lanes: ``F`` frontend (fetch->rename), ``D`` dispatch/queue
        (rename->issue), ``X`` execute (issue->writeback), ``P``
        post-writeback (writeback->commit).  Committed lifecycles retire
        with type 0, squashed ones with type 1.
        """
        rows = self.timeline()
        if not rows:
            return "Kanata\t0004\nC=\t0\n"
        # (cycle, order, text) command stream; order keeps same-cycle
        # commands in a stable begin-before-end-before-retire sequence.
        commands: list[tuple[int, int, str]] = []
        retire_id = 0
        for uid, row in enumerate(rows):
            fetch = row["fetch"]
            if fetch is None:
                continue
            label = f"{row['op']} pc={row['pc']:#x}" if row["pc"] is not None \
                else row["op"]
            commands.append((fetch, 0, f"I\t{uid}\t{row['seq']}\t0"))
            commands.append((fetch, 1, f"L\t{uid}\t0\t{label}"))
            commands.append((fetch, 2, f"S\t{uid}\t0\tF"))
            boundaries = (("F", "D", row["rename"]),
                          ("D", "X", row["issue"]),
                          ("X", "P", row["writeback"]))
            open_stage = "F"
            for prev, nxt, cycle in boundaries:
                if cycle is None:
                    continue
                commands.append((cycle, 3, f"E\t{uid}\t0\t{prev}"))
                commands.append((cycle, 4, f"S\t{uid}\t0\t{nxt}"))
                open_stage = nxt
            if row["commit"] is not None:
                retire_id += 1
                commands.append((row["commit"], 5, f"E\t{uid}\t0\t{open_stage}"))
                commands.append((row["commit"], 6, f"R\t{uid}\t{retire_id}\t0"))
            elif row["squashed"]:
                cycle = row.get("squash_cycle", fetch)
                retire_id += 1
                commands.append((cycle, 5, f"E\t{uid}\t0\t{open_stage}"))
                commands.append((cycle, 6, f"R\t{uid}\t{retire_id}\t1"))
        commands.sort(key=lambda item: (item[0], item[1]))
        first_cycle = commands[0][0]
        lines = ["Kanata\t0004", f"C=\t{first_cycle}"]
        current = first_cycle
        for cycle, _, text in commands:
            if cycle != current:
                lines.append(f"C\t{cycle - current}")
                current = cycle
            lines.append(text)
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (f"PipelineTracer(window=[{self._start}, {self._end}), "
                f"events={len(self.events)})")
