"""An open-page DDR3-like main-memory latency model.

Table 1 specifies a single-channel DDR3-1600 part (11-11-11 timings, 2
ranks, 8 banks per rank, 8KB row buffer) with a minimum read latency of 75
core cycles and a maximum of 185 cycles.  This model captures the dominant
effect at that abstraction level: row-buffer hits pay the minimum latency,
row-buffer conflicts pay extra activation/precharge latency, and a busy
bank adds queueing delay.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramConfig:
    """Latency parameters of the main memory model (in core cycles)."""

    min_latency: int = 75
    row_miss_penalty: int = 55
    max_latency: int = 185
    ranks: int = 2
    banks_per_rank: int = 8
    row_bytes: int = 8192
    bank_busy_cycles: int = 24

    def __post_init__(self) -> None:
        if self.min_latency <= 0 or self.max_latency < self.min_latency:
            raise ValueError("invalid DRAM latency bounds")
        if self.ranks <= 0 or self.banks_per_rank <= 0 or self.row_bytes <= 0:
            raise ValueError("DRAM geometry values must be positive")


class DramModel:
    """Per-bank open-row tracking with queueing delay for busy banks."""

    def __init__(self, config: DramConfig | None = None) -> None:
        self.config = config or DramConfig()
        banks = self.config.ranks * self.config.banks_per_rank
        self._open_row: list[int | None] = [None] * banks
        self._bank_free_at: list[int] = [0] * banks
        self.accesses = 0
        self.row_hits = 0
        self.row_conflicts = 0

    def _locate(self, address: int) -> tuple[int, int]:
        row = address // self.config.row_bytes
        bank = row % (self.config.ranks * self.config.banks_per_rank)
        return bank, row

    def access(self, address: int, now: int) -> int:
        """Return the latency of an access issued at cycle ``now``."""
        self.accesses += 1
        config = self.config
        bank, row = self._locate(address)
        latency = config.min_latency
        if self._open_row[bank] is None or self._open_row[bank] != row:
            if self._open_row[bank] is not None:
                self.row_conflicts += 1
            latency += config.row_miss_penalty
        else:
            self.row_hits += 1
        # Queueing behind an earlier access to the same bank.
        if self._bank_free_at[bank] > now:
            latency += self._bank_free_at[bank] - now
        latency = min(latency, config.max_latency)
        self._open_row[bank] = row
        self._bank_free_at[bank] = now + config.bank_busy_cycles
        return latency

    def next_ready_cycle(self, now: int) -> int | None:
        """Earliest cycle after ``now`` at which a busy bank frees up.

        A next-ready-time query for the event-driven core loop: bank-busy
        expiry only changes the *latency* of a later access (queueing
        delay), never initiates work by itself, so the bound is advisory --
        reporting it early is harmless, under-reporting is impossible
        because ``_bank_free_at`` is exact.  ``None`` means no bank is busy.
        """
        pending = [t for t in self._bank_free_at if t > now]
        return min(pending) if pending else None

    def warm(self, address: int) -> None:
        """Timing-free warming access: update the bank's open row only.

        Used by the sampled-simulation fast-forward path so that detailed
        windows see row-buffer locality consistent with the skipped
        instruction stream; no statistics or bank-busy timing are touched.
        """
        bank, row = self._locate(address)
        self._open_row[bank] = row

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self, now: int = 0) -> dict:
        """Serialise open rows and bank-busy times *relative to* cycle ``now``.

        Bank-free times are absolute cycles; a detailed window restarts its
        cycle counter at zero, so the snapshot stores the remaining busy
        delta (clamped at zero) instead.
        """
        return {
            "open_rows": list(self._open_row),
            "bank_busy_in": [max(0, t - now) for t in self._bank_free_at],
        }

    def restore_snapshot(self, snapshot: dict, now: int = 0) -> None:
        """Restore a :meth:`to_snapshot` image, rebasing busy times onto ``now``."""
        if len(snapshot["open_rows"]) != len(self._open_row):
            raise ValueError("DRAM snapshot geometry does not match this model")
        self._open_row = list(snapshot["open_rows"])
        self._bank_free_at = [now + delta for delta in snapshot["bank_busy_in"]]

    def __repr__(self) -> str:
        banks = self.config.ranks * self.config.banks_per_rank
        return f"DramModel(banks={banks}, min={self.config.min_latency})"
