"""A per-PC stride prefetcher.

Table 1 attaches a stride prefetcher (degree 8, distance 1) to the L2.  The
prefetcher watches the demand-access stream, learns a stride per load/store
PC and, once the stride has been confirmed twice, emits up to ``degree``
prefetch addresses ahead of the demand access.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class _StrideEntry:
    """Training state for one instruction address."""

    last_address: int = 0
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Reference-prediction-table style stride prefetcher."""

    def __init__(self, table_entries: int = 256, degree: int = 8, distance: int = 1,
                 min_confidence: int = 2) -> None:
        if table_entries <= 0 or degree <= 0 or distance <= 0:
            raise ValueError("prefetcher parameters must be positive")
        self.table_entries = table_entries
        self.degree = degree
        self.distance = distance
        self.min_confidence = min_confidence
        self._table: dict[int, _StrideEntry] = {}
        self.prefetches_issued = 0
        self.trainings = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.table_entries

    def train(self, pc: int, address: int) -> list[int]:
        """Observe a demand access and return the list of addresses to prefetch."""
        self.trainings += 1
        index = self._index(pc)
        entry = self._table.get(index)
        if entry is None:
            self._table[index] = _StrideEntry(last_address=address)
            return []
        stride = address - entry.last_address
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 3)
        else:
            entry.confidence = 0
            entry.stride = stride
        entry.last_address = address
        if entry.confidence < self.min_confidence or entry.stride == 0:
            return []
        prefetches = [
            address + entry.stride * (self.distance + step)
            for step in range(self.degree)
        ]
        self.prefetches_issued += len(prefetches)
        return prefetches

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> dict:
        """Serialise the training table (last address, stride, confidence per entry)."""
        return {index: [e.last_address, e.stride, e.confidence]
                for index, e in self._table.items()}

    def restore_snapshot(self, snapshot: dict) -> None:
        """Overwrite the training table with a :meth:`to_snapshot` image."""
        self._table = {
            int(index): _StrideEntry(last_address=last, stride=stride, confidence=conf)
            for index, (last, stride, conf) in snapshot.items()
        }

    def __repr__(self) -> str:
        return (f"StridePrefetcher(entries={self.table_entries}, degree={self.degree}, "
                f"distance={self.distance})")
