"""Memory hierarchy substrate.

Table 1 of the paper models a 32KB 8-way L1D (4-cycle), a unified 1MB
16-way L2 (12-cycle) with a degree-8 stride prefetcher, and a single-channel
DDR3-1600 main memory with 75 to 185 cycle latency.  This package provides
those pieces:

* :class:`~repro.memory.cache.SetAssociativeCache` -- a generic LRU cache
  with MSHR accounting,
* :class:`~repro.memory.prefetcher.StridePrefetcher` -- a per-PC stride
  prefetcher,
* :class:`~repro.memory.dram.DramModel` -- an open-page DDR3-like latency
  model,
* :class:`~repro.memory.hierarchy.MemoryHierarchy` -- the composition used
  by the core model, returning a latency for every access.
"""

from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.memory.dram import DramConfig, DramModel
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.prefetcher import StridePrefetcher

__all__ = [
    "CacheConfig",
    "SetAssociativeCache",
    "StridePrefetcher",
    "DramConfig",
    "DramModel",
    "HierarchyConfig",
    "MemoryHierarchy",
]
