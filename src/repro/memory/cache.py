"""A set-associative, write-back, LRU cache model.

The timing model only needs hit/miss decisions and occupancy bookkeeping --
data values travel with the dynamic trace -- so lines store tags only.
MSHR occupancy is tracked per-cycle-window in the hierarchy; the cache
itself exposes hit/miss/eviction statistics.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_latency: int = 4
    mshrs: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(
                f"{self.name}: size must be divisible by ways * line size "
                f"({self.size_bytes} / {self.ways} * {self.line_bytes})"
            )
        if self.hit_latency < 1:
            raise ValueError("hit latency must be >= 1 cycle")

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.ways * self.line_bytes)


class SetAssociativeCache:
    """An LRU set-associative cache tracking tags only."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # Each set is an insertion-ordered dict {tag: dirty} used as an LRU list.
        self._sets: list[dict[int, bool]] = [dict() for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.prefetch_fills = 0

    # -- address helpers ----------------------------------------------------------

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.config.line_bytes
        return line % self.config.num_sets, line // self.config.num_sets

    def line_address(self, address: int) -> int:
        """Return the address of the first byte of the line containing ``address``."""
        return (address // self.config.line_bytes) * self.config.line_bytes

    # -- operations ---------------------------------------------------------------

    def lookup(self, address: int, is_write: bool = False) -> bool:
        """Access the cache; returns ``True`` on a hit and updates LRU/dirty state."""
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        if tag in cache_set:
            dirty = cache_set.pop(tag)
            cache_set[tag] = dirty or is_write
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, address: int, is_write: bool = False, is_prefetch: bool = False) -> None:
        """Install the line containing ``address``, evicting the LRU line if needed."""
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        if tag in cache_set:
            dirty = cache_set.pop(tag)
            cache_set[tag] = dirty or is_write
            return
        if len(cache_set) >= self.config.ways:
            _victim, dirty = next(iter(cache_set.items()))
            del cache_set[_victim]
            self.evictions += 1
            if dirty:
                self.writebacks += 1
        cache_set[tag] = is_write
        if is_prefetch:
            self.prefetch_fills += 1

    def probe(self, address: int) -> bool:
        """Return ``True`` if the line is present, without touching LRU or statistics."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def invalidate_all(self) -> None:
        """Empty the cache (used by tests)."""
        for cache_set in self._sets:
            cache_set.clear()

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> list:
        """Serialise every set as ``[tag, dirty]`` pairs in LRU order (LRU first)."""
        return [[[tag, 1 if dirty else 0] for tag, dirty in cache_set.items()]
                for cache_set in self._sets]

    def restore_snapshot(self, snapshot: list) -> None:
        """Overwrite the cache contents with a :meth:`to_snapshot` image.

        Only tags, dirty bits and LRU order are restored; the hit/miss/
        eviction statistics are left alone so every detailed window reports
        its own events.
        """
        if len(snapshot) != len(self._sets):
            raise ValueError(
                f"{self.config.name}: snapshot geometry does not match this cache")
        self._sets = [{tag: bool(dirty) for tag, dirty in rows} for rows in snapshot]

    # -- statistics ---------------------------------------------------------------

    @property
    def accesses(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    def miss_rate(self) -> float:
        """Miss rate over all lookups (0.0 when the cache was never accessed)."""
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def __repr__(self) -> str:
        return (f"SetAssociativeCache({self.config.name}: {self.config.size_bytes // 1024}KB, "
                f"{self.config.ways}-way, {self.config.num_sets} sets)")
