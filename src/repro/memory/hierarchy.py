"""The composed L1I / L1D / unified L2 / DRAM hierarchy.

The core model asks one question of the hierarchy: *how many cycles does
this access take?*  Values travel with the dynamic trace, so the hierarchy
only models hit/miss behaviour, the stride prefetcher and MSHR pressure.

Latency composition follows Table 1: an L1D hit costs 4 cycles, an L1 miss
that hits in the L2 costs 4 + 12 cycles, and an L2 miss adds the DRAM
latency (75 to 185 cycles).  The L2 prefetcher is trained by L1 misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.memory.dram import DramConfig, DramModel
from repro.memory.prefetcher import StridePrefetcher


@dataclass(frozen=True)
class HierarchyConfig:
    """Configuration of the full memory hierarchy (Table 1 defaults)."""

    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L1I", size_bytes=32 * 1024, ways=8, hit_latency=1, mshrs=8))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L1D", size_bytes=32 * 1024, ways=8, hit_latency=4, mshrs=64))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L2", size_bytes=1024 * 1024, ways=16, hit_latency=12, mshrs=64))
    dram: DramConfig = field(default_factory=DramConfig)
    prefetch_degree: int = 8
    prefetch_distance: int = 1
    load_ports: int = 2


class MemoryHierarchy:
    """L1I + L1D + unified L2 + stride prefetcher + DRAM."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        self.l1i = SetAssociativeCache(self.config.l1i)
        self.l1d = SetAssociativeCache(self.config.l1d)
        self.l2 = SetAssociativeCache(self.config.l2)
        self.dram = DramModel(self.config.dram)
        self.prefetcher = StridePrefetcher(
            degree=self.config.prefetch_degree,
            distance=self.config.prefetch_distance,
        )
        self.demand_accesses = 0
        self.mshr_full_events = 0
        self._outstanding_misses: list[int] = []  # completion cycles of in-flight L1D misses

    # -- data-side accesses -------------------------------------------------------

    def access_data(self, address: int, is_write: bool, pc: int, now: int = 0) -> int:
        """Access the data side of the hierarchy; returns the latency in cycles."""
        self.demand_accesses += 1
        line = self.l1d.line_address(address)
        latency = self.config.l1d.hit_latency
        if self.l1d.lookup(line, is_write=is_write):
            return latency

        # L1D miss: check MSHR occupancy, then the L2.
        self._retire_outstanding(now)
        if len(self._outstanding_misses) >= self.config.l1d.mshrs:
            self.mshr_full_events += 1
            latency += 4  # stall until an MSHR frees up (coarse model)

        prefetches = self.prefetcher.train(pc, line)
        if self.l2.lookup(line, is_write=is_write):
            latency += self.config.l2.hit_latency
        else:
            latency += self.config.l2.hit_latency
            latency += self.dram.access(line, now)
            self.l2.fill(line, is_write=is_write)
        self.l1d.fill(line, is_write=is_write)
        self._outstanding_misses.append(now + latency)

        # Prefetches fill the L2 (distance-1, degree-8 stride prefetcher).
        for prefetch_address in prefetches:
            prefetch_line = self.l2.line_address(prefetch_address)
            if not self.l2.probe(prefetch_line):
                self.l2.fill(prefetch_line, is_prefetch=True)
        return latency

    # -- functional warming (two-speed simulation) ----------------------------------

    def warm_data(self, address: int, is_write: bool, pc: int) -> None:
        """Timing-free data access: update tags, LRU, dirty bits and training only.

        The sampled-simulation fast-forward path calls this for every
        skipped load and store so that detailed windows open with cache,
        prefetcher and DRAM row state consistent with the instruction
        stream, instead of a stale image frozen at the previous window's
        end.  No latencies are computed and no MSHR occupancy is modelled.
        """
        line = self.l1d.line_address(address)
        if self.l1d.lookup(line, is_write=is_write):
            return
        prefetches = self.prefetcher.train(pc, line)
        if not self.l2.lookup(line, is_write=is_write):
            self.dram.warm(line)
            self.l2.fill(line, is_write=is_write)
        self.l1d.fill(line, is_write=is_write)
        for prefetch_address in prefetches:
            prefetch_line = self.l2.line_address(prefetch_address)
            if not self.l2.probe(prefetch_line):
                self.l2.fill(prefetch_line, is_prefetch=True)

    # -- instruction-side accesses ------------------------------------------------

    def access_instruction(self, pc: int, now: int = 0) -> int:
        """Fetch the line containing ``pc``; returns the latency in cycles."""
        line = self.l1i.line_address(pc)
        if self.l1i.lookup(line):
            return self.config.l1i.hit_latency
        latency = self.config.l1i.hit_latency
        if self.l2.lookup(line):
            latency += self.config.l2.hit_latency
        else:
            latency += self.config.l2.hit_latency + self.dram.access(line, now)
            self.l2.fill(line)
        self.l1i.fill(line)
        return latency

    def next_event_cycle(self, now: int) -> int | None:
        """Earliest cycle after ``now`` at which timed hierarchy state changes.

        Combines the outstanding L1D-miss (MSHR) completion times with the
        DRAM bank-busy expiries.  Both are *passive* -- they only alter the
        latency of a future access, which the core initiates -- so the
        event-driven loop uses this as a conservative wake-up hint, never a
        requirement.  ``None`` means the hierarchy holds no timed state.
        """
        candidates = [t for t in self._outstanding_misses if t > now]
        dram_ready = self.dram.next_ready_cycle(now)
        if dram_ready is not None:
            candidates.append(dram_ready)
        return min(candidates) if candidates else None

    # -- housekeeping -------------------------------------------------------------

    def _retire_outstanding(self, now: int) -> None:
        """Drop completed misses from the MSHR occupancy list."""
        if self._outstanding_misses:
            self._outstanding_misses = [t for t in self._outstanding_misses if t > now]

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self, now: int = 0) -> dict:
        """Serialise cache tags/LRU/dirty state, DRAM rows and prefetcher training.

        Outstanding-miss (MSHR) completion times and DRAM bank-busy times
        are stored relative to ``now`` so a restored hierarchy can restart
        its cycle counter at zero.  Statistics are not part of the snapshot
        -- each detailed window accounts for its own events.
        """
        return {
            "l1i": self.l1i.to_snapshot(),
            "l1d": self.l1d.to_snapshot(),
            "l2": self.l2.to_snapshot(),
            "dram": self.dram.to_snapshot(now),
            "prefetcher": self.prefetcher.to_snapshot(),
            "outstanding_in": sorted(t - now for t in self._outstanding_misses
                                     if t > now),
        }

    @staticmethod
    def merge_warm_snapshot(warm: dict, own: dict) -> dict:
        """Combine a functionally warmed snapshot with a core's own snapshot.

        The warming hooks train the *data* side (L1D/L2 tags, prefetcher,
        DRAM open rows) but have no per-op PC stream and no timing, so the
        L1I contents, the MSHR completion deltas and the DRAM bank-busy
        deltas come from ``own`` -- the core's chained snapshot.  Lives
        here so knowledge of :meth:`to_snapshot`'s layout stays in one
        module; neither input is mutated.
        """
        merged = dict(warm)
        merged["l1i"] = own["l1i"]
        merged["outstanding_in"] = own["outstanding_in"]
        merged["dram"] = {
            "open_rows": warm["dram"]["open_rows"],
            "bank_busy_in": own["dram"]["bank_busy_in"],
        }
        return merged

    def restore_snapshot(self, snapshot: dict, now: int = 0) -> None:
        """Restore a :meth:`to_snapshot` image, rebasing timed state onto ``now``."""
        self.l1i.restore_snapshot(snapshot["l1i"])
        self.l1d.restore_snapshot(snapshot["l1d"])
        self.l2.restore_snapshot(snapshot["l2"])
        self.dram.restore_snapshot(snapshot["dram"], now)
        self.prefetcher.restore_snapshot(snapshot["prefetcher"])
        self._outstanding_misses = [now + delta for delta in snapshot["outstanding_in"]]

    def stats(self) -> dict[str, float]:
        """Summary statistics for reporting."""
        return {
            "l1d_accesses": self.l1d.accesses,
            "l1d_misses": self.l1d.misses,
            "l1d_miss_rate": self.l1d.miss_rate(),
            "l2_accesses": self.l2.accesses,
            "l2_misses": self.l2.misses,
            "l1i_misses": self.l1i.misses,
            "dram_accesses": self.dram.accesses,
            "dram_row_hits": self.dram.row_hits,
            "prefetches_issued": self.prefetcher.prefetches_issued,
            "mshr_full_events": self.mshr_full_events,
        }

    def __repr__(self) -> str:
        return "MemoryHierarchy(L1I 32KB, L1D 32KB, L2 1MB, DDR3)"
