"""Store Sets memory dependence predictor.

The predictor maintains two tables:

* the **Store Set ID Table (SSIT)**, indexed by a hash of the instruction
  PC, which maps loads and stores to a *store set identifier* (SSID);
* the **Last Fetched Store Table (LFST)**, indexed by SSID, which records
  the most recently renamed, still in-flight store of that set.

A load whose PC maps to a valid SSID is made dependent on the store recorded
in the LFST.  When a memory-order violation is detected (a load executed
before an older store to the same address), the offending load and store are
placed in the same store set so future instances are serialised.

Table 1 of the paper uses a 4K-entry SSIT ("4K-SSID/LFST Store Sets, not
rolled-back on squash"); both table sizes are configurable here.  The
classic *cyclic clearing* of the SSIT is also implemented so stale store
sets eventually dissolve.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StoreSetsConfig:
    """Geometry and policy of the Store Sets predictor."""

    ssit_entries: int = 4096
    lfst_entries: int = 4096
    clear_interval: int = 30_000

    def __post_init__(self) -> None:
        if self.ssit_entries <= 0 or self.lfst_entries <= 0:
            raise ValueError("store sets table sizes must be positive")
        if self.clear_interval <= 0:
            raise ValueError("clear_interval must be positive")


class StoreSetsPredictor:
    """Store Sets with incremental SSID allocation and periodic clearing."""

    def __init__(self, config: StoreSetsConfig | None = None) -> None:
        self.config = config or StoreSetsConfig()
        self._ssit: dict[int, int] = {}
        self._lfst: dict[int, int | None] = {}
        self._next_ssid = 0
        self._accesses_since_clear = 0
        # Statistics.
        self.violations_trained = 0
        self.dependencies_predicted = 0

    # -- index helpers ------------------------------------------------------------

    def _ssit_index(self, pc: int) -> int:
        return (pc >> 2) % self.config.ssit_entries

    def _allocate_ssid(self) -> int:
        ssid = self._next_ssid
        self._next_ssid = (self._next_ssid + 1) % self.config.lfst_entries
        return ssid

    # -- rename-time interface ----------------------------------------------------

    def lookup_load(self, load_pc: int) -> int | None:
        """Return the sequence number of the store this load should wait for.

        Returns ``None`` when the load is predicted independent.  The caller
        is responsible for checking that the returned store is still in
        flight.
        """
        self._tick()
        ssid = self._ssit.get(self._ssit_index(load_pc))
        if ssid is None:
            return None
        store_seq = self._lfst.get(ssid)
        if store_seq is not None:
            self.dependencies_predicted += 1
        return store_seq

    def store_renamed(self, store_pc: int, store_seq: int) -> int | None:
        """Record a renamed store in the LFST; returns the store it should follow, if any.

        Store Sets also serialises stores belonging to the same set; the
        returned sequence number (or ``None``) is the previous store of the
        set that this store must not bypass.
        """
        self._tick()
        ssid = self._ssit.get(self._ssit_index(store_pc))
        if ssid is None:
            return None
        previous = self._lfst.get(ssid)
        self._lfst[ssid] = store_seq
        return previous

    def store_completed(self, store_pc: int, store_seq: int) -> None:
        """Remove a store from the LFST once it leaves the window (if still recorded)."""
        ssid = self._ssit.get(self._ssit_index(store_pc))
        if ssid is not None and self._lfst.get(ssid) == store_seq:
            self._lfst[ssid] = None

    # -- violation training -------------------------------------------------------

    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """Place a violating load/store pair in the same store set.

        Implements the assignment rules of the original proposal: allocate a
        new set when neither instruction has one, join the existing set when
        exactly one does, and merge towards the smaller SSID when both do.
        """
        self.violations_trained += 1
        load_index = self._ssit_index(load_pc)
        store_index = self._ssit_index(store_pc)
        load_ssid = self._ssit.get(load_index)
        store_ssid = self._ssit.get(store_index)
        if load_ssid is None and store_ssid is None:
            ssid = self._allocate_ssid()
            self._ssit[load_index] = ssid
            self._ssit[store_index] = ssid
        elif load_ssid is None:
            self._ssit[load_index] = store_ssid
        elif store_ssid is None:
            self._ssit[store_index] = load_ssid
        else:
            winner = min(load_ssid, store_ssid)
            self._ssit[load_index] = winner
            self._ssit[store_index] = winner

    # -- housekeeping ---------------------------------------------------------

    def _tick(self) -> None:
        """Cyclically clear the tables so stale sets eventually dissolve."""
        self._accesses_since_clear += 1
        if self._accesses_since_clear >= self.config.clear_interval:
            self._accesses_since_clear = 0
            self._ssit.clear()
            self._lfst.clear()

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> dict:
        """Serialise the SSIT and the SSID allocator.

        The LFST is deliberately *not* captured: it names still-in-flight
        stores by trace sequence number, and a snapshot is only taken with
        the pipeline drained, when no store is in flight -- restoring an
        empty LFST is therefore the architecturally correct state (and
        keeps stale sequence numbers from leaking into the next window's
        trace, whose numbering restarts at zero).
        """
        return {
            "ssit": dict(self._ssit),
            "next_ssid": self._next_ssid,
            "accesses_since_clear": self._accesses_since_clear,
        }

    def restore_snapshot(self, snapshot: dict) -> None:
        """Overwrite the predictor state with a :meth:`to_snapshot` image."""
        self._ssit = {int(index): ssid for index, ssid in snapshot["ssit"].items()}
        self._lfst = {}
        self._next_ssid = snapshot["next_ssid"]
        self._accesses_since_clear = snapshot["accesses_since_clear"]

    def storage_bits(self) -> int:
        """Approximate storage requirement in bits (SSID width times table sizes)."""
        ssid_bits = max(self.config.lfst_entries.bit_length() - 1, 1)
        seq_bits = 8  # the LFST holds a small in-flight store identifier
        return self.config.ssit_entries * ssid_bits + self.config.lfst_entries * seq_bits

    def __repr__(self) -> str:
        return (f"StoreSetsPredictor(ssit={self.config.ssit_entries}, "
                f"lfst={self.config.lfst_entries})")
