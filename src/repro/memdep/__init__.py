"""Memory dependence prediction substrate (Store Sets).

The paper keeps a conventional Store Sets predictor [Chrysos & Emer, 1998]
as the memory dependence predictor even when SMB is enabled, and explicitly
measures how many *false dependencies* Store Sets introduces and how many
*memory order violations* (traps) it fails to prevent -- both are reported
in Figure 4 and revisited in Figure 6b.  This package provides that
predictor.
"""

from repro.memdep.store_sets import StoreSetsConfig, StoreSetsPredictor

__all__ = ["StoreSetsPredictor", "StoreSetsConfig"]
