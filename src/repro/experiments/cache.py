"""On-disk trace cache.

Every job of a sweep that shares a workload replays the *identical* dynamic
trace (traces are deterministic in ``(workload, max_ops, seed)``), so the
functional executor only needs to run once per workload -- not once per
job.  :class:`TraceCache` materialises traces as pickle files under a cache
directory; the sweep runner warms it in the parent process and the worker
processes then read the trace from disk instead of re-executing the
workload.

The cache can also be *installed* as a global trace provider (see
:func:`repro.workloads.install_trace_provider`), which makes every
``generate_trace`` / ``simulate`` call in the process transparently
read-through-cache.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.isa.executor import Trace
from repro.workloads import build_workload, install_trace_provider

#: Bumped whenever the trace layout changes; stale files are regenerated.
#: v2: ``DynamicOp`` gained slots and precomputed classification fields.
CACHE_FORMAT_VERSION = 2


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`TraceCache`."""

    hits: int = 0
    misses: int = 0
    generated: int = 0
    invalid: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "generated": self.generated, "invalid": self.invalid}


class TraceCache:
    """Pickle-file trace cache keyed by ``(workload, max_ops, seed)``."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._uninstall = None

    # -- keys and paths -------------------------------------------------------------

    @staticmethod
    def key(workload: str, max_ops: int, seed: int) -> str:
        """Stable, filesystem-safe cache key."""
        return f"{workload}__ops{max_ops}__seed{seed}"

    def path(self, workload: str, max_ops: int, seed: int) -> Path:
        """Path of the cache file for one key (whether or not it exists)."""
        return self.root / f"{self.key(workload, max_ops, seed)}.trace.pkl"

    # -- read/write -----------------------------------------------------------------

    def get(self, workload: str, max_ops: int, seed: int) -> Trace | None:
        """Return the cached trace, or ``None`` on a miss (counted)."""
        path = self.path(workload, max_ops, seed)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            # Torn write or a stale format: treat as a miss and regenerate.
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        if (not isinstance(payload, dict)
                or payload.get("version") != CACHE_FORMAT_VERSION
                or len(payload.get("trace", ())) == 0):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload["trace"]

    def put(self, workload: str, max_ops: int, seed: int, trace: Trace) -> Path:
        """Atomically persist ``trace`` under its key; returns the file path."""
        path = self.path(workload, max_ops, seed)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "workload": workload,
            "max_ops": max_ops,
            "seed": seed,
            "trace": trace,
        }
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def get_or_generate(self, workload: str, max_ops: int, seed: int) -> Trace:
        """Read-through lookup: functionally execute and persist on a miss."""
        trace = self.get(workload, max_ops, seed)
        if trace is not None:
            return trace
        trace = build_workload(workload, seed=seed).execute(max_ops=max_ops)
        self.stats.generated += 1
        self.put(workload, max_ops, seed, trace)
        return trace

    def warm(self, keys) -> tuple[int, int]:
        """Materialise every distinct ``(workload, max_ops, seed)`` in ``keys``.

        Returns ``(generated, reused)`` counts -- the acceptance check for
        "the executor ran once per workload" in sweeps.
        """
        generated = reused = 0
        for workload, max_ops, seed in dict.fromkeys(keys):
            before = self.stats.generated
            self.get_or_generate(workload, max_ops, seed)
            if self.stats.generated > before:
                generated += 1
            else:
                reused += 1
        return generated, reused

    # -- provider hook --------------------------------------------------------------

    def install(self) -> None:
        """Make every ``generate_trace`` call in this process go through the cache."""
        self._uninstall = install_trace_provider(
            lambda name, max_ops, seed: self.get_or_generate(name, max_ops, seed))

    def uninstall(self) -> None:
        """Restore the trace provider that was active before :meth:`install`."""
        install_trace_provider(self._uninstall)
        self._uninstall = None

    def __enter__(self) -> "TraceCache":
        self.install()
        return self

    def __exit__(self, *exc_info) -> None:
        self.uninstall()
