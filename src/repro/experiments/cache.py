"""On-disk trace and sample-plan cache.

Every job of a sweep that shares a workload replays the *identical* dynamic
trace (traces are deterministic in ``(workload, max_ops, seed)``), so the
functional executor only needs to run once per workload -- not once per
job.  :class:`TraceCache` materialises traces as pickle files under a cache
directory; the sweep runner warms it in the parent process and the worker
processes then read the trace from disk instead of re-executing the
workload.

Two-speed (sampled) sweeps cache :class:`~repro.pipeline.sampling
.SamplePlan` objects the same way -- the checkpoint farm: one functional
fast-forward + warming + window-recording pass per workload, shared by
every tracker-scheme job of the sweep.  Plans are additionally keyed by the
sampling geometry and the warm-relevant machine structure
(:meth:`~repro.pipeline.config.CoreConfig.warm_signature`), because a plan
is only executable on the machine family it was built for.

The cache can also be *installed* as a global trace provider (see
:func:`repro.workloads.install_trace_provider`), which makes every
``generate_trace`` / ``simulate`` call in the process transparently
read-through-cache.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.isa.executor import Trace
from repro.workloads import (
    build_workload,
    install_trace_provider,
    materialize_trace,
    workload_cache_token,
)

#: Bumped whenever the trace layout changes; stale files are regenerated.
#: v2: ``DynamicOp`` gained slots and precomputed classification fields.
CACHE_FORMAT_VERSION = 2

#: Bumped whenever the ``SamplePlan`` layout changes; stale files are rebuilt.
PLAN_FORMAT_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`TraceCache`."""

    hits: int = 0
    misses: int = 0
    generated: int = 0
    invalid: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "generated": self.generated, "invalid": self.invalid}


def plan_cache_key(workload: str, max_ops: int, seed: int, simulator) -> str:
    """Stable, filesystem-safe key for a checkpoint-farm sample plan.

    ``simulator`` is the :class:`~repro.pipeline.sampling.SampledSimulator`
    whose geometry and warm-relevant machine structure the plan must match.

    Error-budget plans gain a suffix carrying the tolerance knobs *and* a
    hash of the probe machine: adaptive window placement depends on the
    probed IPC, and the warm signature deliberately excludes scheme-neutral
    sizing (e.g. the physical register file) that the probe does see.
    Fixed-geometry keys are byte-identical to what they were before the
    tolerance field existed, so existing ``.plan.pkl`` files stay valid.
    """
    sampling = simulator.sampling
    warm = "w1" if sampling.warm_gaps else "w0"
    adaptive = ""
    if sampling.tolerance is not None:
        probe = hashlib.sha256(
            repr(simulator.probe_config()).encode()).hexdigest()[:12]
        adaptive = (f"__t{sampling.tolerance:g}-{sampling.min_windows}"
                    f"-{sampling.max_windows}-{probe}")
    return (f"{workload_cache_token(workload)}__ops{max_ops}__seed{seed}"
            f"__p{sampling.period}-{sampling.window}-{sampling.warmup}"
            f"-{sampling.cooldown}-{warm}{adaptive}"
            f"__m{simulator.config.warm_signature()}")


class TraceCache:
    """Pickle-file trace cache keyed by ``(workload, max_ops, seed)``."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._uninstall = None

    # -- keys and paths -------------------------------------------------------------

    @staticmethod
    def key(workload: str, max_ops: int, seed: int) -> str:
        """Stable, filesystem-safe cache key.

        Plainly registered workloads key by name (existing cache files stay
        valid); family workloads (``riscv:<path>``, ``trace:<path>``,
        ``fuzz:...``) key by their sanitised, content-hashed cache token.
        """
        return f"{workload_cache_token(workload)}__ops{max_ops}__seed{seed}"

    def path(self, workload: str, max_ops: int, seed: int) -> Path:
        """Path of the cache file for one key (whether or not it exists)."""
        return self.root / f"{self.key(workload, max_ops, seed)}.trace.pkl"

    # -- read/write -----------------------------------------------------------------

    def get(self, workload: str, max_ops: int, seed: int) -> Trace | None:
        """Return the cached trace, or ``None`` on a miss (counted)."""
        path = self.path(workload, max_ops, seed)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            # Torn write or a stale format: treat as a miss and regenerate.
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        if (not isinstance(payload, dict)
                or payload.get("version") != CACHE_FORMAT_VERSION
                or len(payload.get("trace", ())) == 0):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload["trace"]

    def put(self, workload: str, max_ops: int, seed: int, trace: Trace) -> Path:
        """Atomically persist ``trace`` under its key; returns the file path."""
        path = self.path(workload, max_ops, seed)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "workload": workload,
            "max_ops": max_ops,
            "seed": seed,
            "trace": trace,
        }
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def get_or_generate(self, workload: str, max_ops: int, seed: int) -> Trace:
        """Read-through lookup: functionally execute and persist on a miss."""
        trace = self.get(workload, max_ops, seed)
        if trace is not None:
            return trace
        # materialize_trace (not generate_trace): the provider hook may be
        # this very cache, and imported-trace workloads have no image to
        # execute -- their spec reads the trace file instead.
        trace = materialize_trace(workload, max_ops=max_ops, seed=seed)
        self.stats.generated += 1
        self.put(workload, max_ops, seed, trace)
        return trace

    def warm(self, keys) -> tuple[int, int]:
        """Materialise every distinct ``(workload, max_ops, seed)`` in ``keys``.

        Returns ``(generated, reused)`` counts -- the acceptance check for
        "the executor ran once per workload" in sweeps.
        """
        generated = reused = 0
        for workload, max_ops, seed in dict.fromkeys(keys):
            before = self.stats.generated
            self.get_or_generate(workload, max_ops, seed)
            if self.stats.generated > before:
                generated += 1
            else:
                reused += 1
        return generated, reused

    # -- sample plans (checkpoint farm) -----------------------------------------------

    def plan_path(self, workload: str, max_ops: int, seed: int, simulator) -> Path:
        """Path of the cached sample plan for one (workload, geometry, machine)."""
        return self.root / (plan_cache_key(workload, max_ops, seed, simulator)
                            + ".plan.pkl")

    def get_plan(self, workload: str, max_ops: int, seed: int, simulator):
        """Return the cached :class:`SamplePlan`, or ``None`` on a miss (counted)."""
        path = self.plan_path(workload, max_ops, seed, simulator)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        if (not isinstance(payload, dict)
                or payload.get("version") != PLAN_FORMAT_VERSION
                or payload.get("trace_version") != CACHE_FORMAT_VERSION
                or payload.get("plan") is None):
            # A plan embeds recorded Trace/DynamicOp objects, so a trace
            # layout bump invalidates cached plans too.
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        plan = payload["plan"]
        # The key encodes geometry and machine already; re-verify anyway so
        # a stale or hand-copied file can never smuggle in a foreign plan.
        if (plan.sampling != simulator.sampling_fingerprint()
                or plan.warm_signature != simulator.config.warm_signature()):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return plan

    def put_plan(self, workload: str, max_ops: int, seed: int, simulator,
                 plan) -> Path:
        """Atomically persist a sample plan under its key; returns the file path."""
        path = self.plan_path(workload, max_ops, seed, simulator)
        payload = {"version": PLAN_FORMAT_VERSION,
                   "trace_version": CACHE_FORMAT_VERSION, "workload": workload,
                   "max_ops": max_ops, "seed": seed, "plan": plan}
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def get_or_plan(self, workload: str, max_ops: int, seed: int, simulator):
        """Read-through lookup: run the planning pass and persist on a miss."""
        plan = self.get_plan(workload, max_ops, seed, simulator)
        if plan is not None:
            return plan
        image = build_workload(workload, seed=seed)
        plan = simulator.plan(image, workload, max_ops, workload=workload)
        self.stats.generated += 1
        self.put_plan(workload, max_ops, seed, simulator, plan)
        return plan

    def warm_plans(self, keys, simulator, lenient: bool = False) -> tuple[int, int]:
        """Materialise the sample plan of every distinct trace key in ``keys``.

        Returns ``(generated, reused)`` counts -- the acceptance check for
        "the warmup ran once per workload" in checkpoint-farm sweeps.

        ``lenient`` swallows planning failures (a workload that halts
        before its first window, a budget below the warmup): the sweep
        runner uses it so such a workload fails *its own jobs* with the
        real error -- the job-side fallback re-plans and reports it --
        instead of aborting the whole sweep from the parent.
        """
        generated = reused = 0
        for workload, max_ops, seed in dict.fromkeys(keys):
            before = self.stats.generated
            try:
                self.get_or_plan(workload, max_ops, seed, simulator)
            except Exception:
                if not lenient:
                    raise
                continue
            if self.stats.generated > before:
                generated += 1
            else:
                reused += 1
        return generated, reused

    # -- provider hook --------------------------------------------------------------

    def install(self) -> None:
        """Make every ``generate_trace`` call in this process go through the cache."""
        self._uninstall = install_trace_provider(
            lambda name, max_ops, seed: self.get_or_generate(name, max_ops, seed))

    def uninstall(self) -> None:
        """Restore the trace provider that was active before :meth:`install`."""
        install_trace_provider(self._uninstall)
        self._uninstall = None

    def __enter__(self) -> "TraceCache":
        self.install()
        return self

    def __exit__(self, *exc_info) -> None:
        self.uninstall()
