"""Supervised job scheduling for the sweep runner.

:func:`~repro.experiments.runner.run_jobs` used to hand its jobs to a bare
:class:`multiprocessing.Pool`: a SIGKILL'd worker silently lost its cell, a
per-job timeout *abandoned* the runaway process instead of stopping it, and
a flaky failure was final.  This module replaces the pool with a
:class:`Scheduler` abstraction whose contract is **no lost cells**: every
job ends in exactly one delivered outcome -- a result, a deterministic
failure, or a quarantine record after bounded retries -- no matter how its
worker died.

Two backends share the contract:

* :class:`InProcessScheduler` -- jobs run serially in the parent (the
  ``workers <= 1`` path).  No supervision is possible or needed; injected
  crash/hang faults degrade to retryable transients.
* :class:`ProcessPoolScheduler` -- per-worker :class:`multiprocessing
  .Process` pairs connected by pipes, supervised by the parent:

  - **liveness**: worker death (crash, OOM kill, external SIGKILL) is
    detected via the process sentinel, the in-flight job is retried and a
    replacement worker is spawned on demand;
  - **watchdog**: a job that exceeds the per-job timeout gets its worker
    ``terminate()``-d (then ``kill()``-ed), *reaped* with ``join()``, and
    the job retried -- no orphan process ever survives a timed-out job
    (pinned by a regression test);
  - **bounded retries**: infrastructure failures (crash, timeout,
    injected transient) retry under a deterministic :class:`RetryPolicy`
    with exponential backoff; a job that keeps failing is *quarantined*
    into a failed outcome.  Deterministic job errors (the job itself
    raised) are never retried -- they would fail identically again;
  - **ordered delivery**: outcomes are delivered to the caller in job
    input order regardless of completion order, so downstream recording
    (the results store) is deterministic across worker counts and fault
    plans;
  - **graceful cancellation**: ``KeyboardInterrupt`` stops dispatch,
    drains every already-completed outcome to the caller (so the store
    keeps them), tears the workers down, and re-raises -- the sweep exits
    *resumable*.

Supervision lives entirely in the parent's dispatch loop -- between jobs,
never inside the simulated cell -- so the hot simulation path is untouched
(the bench sim tier gates this).
"""

from __future__ import annotations

import heapq
import multiprocessing
import signal
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Callable

from repro.experiments.faults import FaultPlan, TransientFault

#: ``deliver(index, ok, result, error, elapsed)`` -- invoked exactly once
#: per job, in job input order.
DeliverCallback = Callable[[int, bool, object, "str | None", float], None]

#: Supervision poll granularity (seconds).  Only bounds how quickly a
#: death/timeout is *noticed*; results themselves wake the wait instantly.
_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded deterministic retries for infrastructure failures.

    ``max_attempts`` counts total tries including the first; retry ``n``
    (1-based) waits ``backoff_base * backoff_factor**(n-1)`` seconds,
    capped at ``backoff_cap`` -- a fixed, jitter-free schedule so runs are
    reproducible.  ``retry_timeouts=False`` restores fail-fast watchdog
    semantics (the worker is still terminated and reaped either way).
    """

    max_attempts: int = 3
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_cap: float = 5.0
    retry_timeouts: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoff(self, failed_attempts: int) -> float:
        """Delay before the retry following ``failed_attempts`` failures."""
        return min(self.backoff_base * self.backoff_factor ** (failed_attempts - 1),
                   self.backoff_cap)


@dataclass
class ReliabilityStats:
    """What supervision actually did during one scheduler run.

    Filled in by the schedulers and the resumable runner; surfaced as the
    one-line reliability summary in the sweep footer (stderr -- never
    inside the byte-deterministic report artifacts) and as structured
    :class:`~repro.telemetry.runlog.RunLogger` events.
    """

    attempts: int = 0
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    transient_faults: int = 0
    quarantined: int = 0
    workers_spawned: int = 0
    torn_writes_recovered: int = 0
    leases_claimed: int = 0
    leases_reclaimed: int = 0
    cells_awaited: int = 0
    #: Every worker pid ever spawned (the orphan-reaping test's witness).
    worker_pids: list[int] = field(default_factory=list)

    def as_dict(self) -> dict[str, int]:
        return {"attempts": self.attempts, "retries": self.retries,
                "crashes": self.crashes, "timeouts": self.timeouts,
                "transient_faults": self.transient_faults,
                "quarantined": self.quarantined,
                "workers_spawned": self.workers_spawned,
                "torn_writes_recovered": self.torn_writes_recovered,
                "leases_claimed": self.leases_claimed,
                "leases_reclaimed": self.leases_reclaimed,
                "cells_awaited": self.cells_awaited}

    def summary_line(self, jobs: int) -> str:
        """The sweep-footer one-liner (attempts, retries, leases)."""
        parts = [f"{self.attempts} attempt(s) for {jobs} job(s)"]
        if self.retries:
            causes = []
            if self.crashes:
                causes.append(f"{self.crashes} crash(es)")
            if self.timeouts:
                causes.append(f"{self.timeouts} timeout(s)")
            if self.transient_faults:
                causes.append(f"{self.transient_faults} transient(s)")
            suffix = f" ({', '.join(causes)})" if causes else ""
            parts.append(f"{self.retries} retried{suffix}")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        if self.torn_writes_recovered:
            parts.append(f"{self.torn_writes_recovered} torn write(s) repaired")
        if self.leases_claimed or self.leases_reclaimed or self.cells_awaited:
            parts.append(f"{self.leases_claimed} lease(s) claimed, "
                         f"{self.leases_reclaimed} stale reclaimed, "
                         f"{self.cells_awaited} awaited")
        return "reliability: " + ", ".join(parts)


def _log(logger, level: str, event: str, **fields) -> None:
    if logger is None:
        return
    logger.event(event, level=level, **fields)


class InProcessScheduler:
    """Serial in-process backend (``workers <= 1``).

    Supports the same retry/quarantine semantics as the pool backend for
    *transient* failures; crash/hang faults degrade to transients (there
    is no separate process to kill), and timeouts are not enforceable.
    """

    def __init__(self, execute, retry: RetryPolicy | None = None,
                 fault_plan: FaultPlan | None = None, logger=None,
                 stats: ReliabilityStats | None = None,
                 sleep=time.sleep) -> None:
        self.execute = execute
        self.retry = retry or RetryPolicy()
        self.fault_plan = fault_plan
        self.logger = logger
        self.stats = stats if stats is not None else ReliabilityStats()
        self._sleep = sleep

    def run(self, jobs, cache_root: str | None = None, plans: dict | None = None,
            farm: bool = True, deliver: DeliverCallback | None = None) -> None:
        for index, job in enumerate(jobs):
            attempt = 1
            while True:
                self.stats.attempts += 1
                try:
                    if self.fault_plan is not None:
                        self.fault_plan.trip(job.job_id, attempt, in_process=True)
                    plan = plans.get(job.trace_key) if plans else None
                    ok, result, error, elapsed = self.execute(
                        (job, cache_root, plan, farm))
                except TransientFault as exc:
                    self.stats.transient_faults += 1
                    if attempt < self.retry.max_attempts:
                        self.stats.retries += 1
                        delay = self.retry.backoff(attempt)
                        _log(self.logger, "info", "job_retry", job_id=job.job_id,
                             attempt=attempt + 1, backoff_seconds=round(delay, 3),
                             reason=str(exc))
                        self._sleep(delay)
                        attempt += 1
                        continue
                    self.stats.quarantined += 1
                    _log(self.logger, "warning", "job_quarantined",
                         job_id=job.job_id, attempts=attempt, reason=str(exc))
                    ok, result, elapsed = False, None, 0.0
                    error = (f"quarantined after {attempt} failed attempt(s): "
                             f"{exc}")
                if deliver is not None:
                    deliver(index, ok, result, error, elapsed)
                break


class _WorkerHandle:
    """One live worker process plus its parent-side pipe end."""

    __slots__ = ("proc", "conn", "index", "attempt", "deadline")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.index: int | None = None  # in-flight job index (None = idle)
        self.attempt = 0
        self.deadline: float | None = None


def _worker_main(conn, execute, cache_root, farm, fault_plan) -> None:
    """Worker process loop: receive ``(index, job, attempt)``, send outcome.

    Module-level so it pickles under every start method.  SIGINT is
    ignored -- cancellation is the parent's job (it drains and terminates);
    a worker that died mid-``recv``/``send`` simply exits and the parent's
    liveness supervision handles the fallout.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if task is None:
            return
        index, job, attempt = task
        try:
            if fault_plan is not None:
                fault_plan.trip(job.job_id, attempt)
            message = (index, "done", *execute((job, cache_root, None, farm)))
        except TransientFault as exc:
            message = (index, "transient", False, None, str(exc), 0.0)
        except KeyboardInterrupt:
            return
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            return


class ProcessPoolScheduler:
    """Supervised process-pool backend (see the module docstring).

    Workers are spawned on demand up to ``workers`` and replaced when they
    die; each carries one job at a time over its own pipe, so a lost
    worker loses *at most* the identity of its in-flight job -- which the
    parent holds, and retries.
    """

    def __init__(self, workers: int, execute, timeout: float | None = None,
                 retry: RetryPolicy | None = None,
                 fault_plan: FaultPlan | None = None, logger=None,
                 stats: ReliabilityStats | None = None) -> None:
        self.workers = max(workers, 1)
        self.execute = execute
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self.fault_plan = fault_plan
        self.logger = logger
        self.stats = stats if stats is not None else ReliabilityStats()
        self._ctx = multiprocessing.get_context()

    # -- worker lifecycle -------------------------------------------------------------

    def _spawn(self, cache_root, farm) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.execute, cache_root, farm, self.fault_plan),
            daemon=True)
        proc.start()
        child_conn.close()
        self.stats.workers_spawned += 1
        self.stats.worker_pids.append(proc.pid)
        _log(self.logger, "info", "worker_spawn", pid=proc.pid)
        return _WorkerHandle(proc, parent_conn)

    @staticmethod
    def _dispose(handle: _WorkerHandle, kill: bool = False) -> None:
        """Stop and *reap* one worker (terminate -> kill escalation)."""
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.proc.is_alive():
            if kill:
                handle.proc.terminate()
            handle.proc.join(timeout=1.0)
            if handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join()
        else:
            handle.proc.join()

    # -- the dispatch loop ------------------------------------------------------------

    def run(self, jobs, cache_root: str | None = None, plans: dict | None = None,
            farm: bool = True, deliver: DeliverCallback | None = None) -> None:
        # ``plans`` is accepted for interface parity but unused: shipping
        # recorded window traces through a pipe per job costs more than it
        # saves, so pool workers read plans from the cache directory.
        del plans
        total = len(jobs)
        #: (not_before, index, attempt) -- min-heap on dispatch eligibility.
        ready: list[tuple[float, int, int]] = [(0.0, i, 1) for i in range(total)]
        outcomes: dict[int, tuple] = {}
        delivered = 0
        idle: list[_WorkerHandle] = []
        busy: list[_WorkerHandle] = []

        def _deliver_in_order() -> None:
            nonlocal delivered
            while delivered < total and delivered in outcomes:
                if deliver is not None:
                    deliver(delivered, *outcomes[delivered])
                delivered += 1

        def _retryable_failure(index: int, attempt: int, reason: str,
                               retriable: bool) -> None:
            now = time.monotonic()
            if retriable and attempt < self.retry.max_attempts:
                self.stats.retries += 1
                delay = self.retry.backoff(attempt)
                _log(self.logger, "info", "job_retry",
                     job_id=jobs[index].job_id, attempt=attempt + 1,
                     backoff_seconds=round(delay, 3), reason=reason)
                heapq.heappush(ready, (now + delay, index, attempt + 1))
                return
            self.stats.quarantined += 1
            _log(self.logger, "warning", "job_quarantined",
                 job_id=jobs[index].job_id, attempts=attempt, reason=reason)
            error = reason if attempt == 1 else \
                f"quarantined after {attempt} failed attempt(s): {reason}"
            outcomes[index] = (False, None, error, 0.0)
            _deliver_in_order()

        def _collect(handle: _WorkerHandle, message) -> None:
            index, kind, ok, result, error, elapsed = message
            handle.index, handle.deadline = None, None
            busy.remove(handle)
            idle.append(handle)
            if kind == "transient":
                self.stats.transient_faults += 1
                _retryable_failure(index, handle.attempt, error, retriable=True)
                return
            outcomes[index] = (ok, result, error, elapsed)
            _deliver_in_order()

        def _worker_crashed(handle: _WorkerHandle) -> None:
            busy.remove(handle)
            self._dispose(handle)
            exitcode = handle.proc.exitcode
            self.stats.crashes += 1
            _log(self.logger, "warning", "worker_crash", pid=handle.proc.pid,
                 exitcode=exitcode,
                 job_id=jobs[handle.index].job_id if handle.index is not None
                 else None)
            if handle.index is not None:
                _retryable_failure(handle.index, handle.attempt,
                                   f"worker crashed (exit {exitcode})",
                                   retriable=True)

        def _worker_timed_out(handle: _WorkerHandle) -> None:
            busy.remove(handle)
            self._dispose(handle, kill=True)  # terminate AND reap: no orphans
            self.stats.timeouts += 1
            _log(self.logger, "warning", "job_timeout", pid=handle.proc.pid,
                 job_id=jobs[handle.index].job_id,
                 timeout_seconds=self.timeout)
            _retryable_failure(handle.index, handle.attempt,
                               f"timed out after {self.timeout:.1f}s",
                               retriable=self.retry.retry_timeouts)

        try:
            while delivered < total:
                now = time.monotonic()
                # Dispatch every eligible job onto an idle (live) worker.
                while ready and ready[0][0] <= now and len(busy) < self.workers:
                    _, index, attempt = heapq.heappop(ready)
                    handle = None
                    while idle and handle is None:
                        candidate = idle.pop()
                        if candidate.proc.is_alive():
                            handle = candidate
                        else:  # died while idle (external kill): replace it
                            self._dispose(candidate)
                            self.stats.crashes += 1
                            _log(self.logger, "warning", "worker_crash",
                                 pid=candidate.proc.pid,
                                 exitcode=candidate.proc.exitcode, job_id=None)
                    if handle is None:
                        handle = self._spawn(cache_root, farm)
                    self.stats.attempts += 1
                    handle.index, handle.attempt = index, attempt
                    handle.deadline = (now + self.timeout
                                       if self.timeout is not None else None)
                    busy.append(handle)
                    try:
                        handle.conn.send((index, jobs[index], attempt))
                    except (BrokenPipeError, OSError):
                        _worker_crashed(handle)

                if not busy:
                    if ready:  # nothing in flight; sleep until next backoff ends
                        time.sleep(max(ready[0][0] - time.monotonic(), 0.0))
                        continue
                    break  # every outcome is in; delivery loop has drained

                # Wait on results AND process sentinels: a pipe inherited by
                # a sibling fork can keep EOF from ever arriving, but the
                # sentinel always fires when the process dies.
                waitables = [h.conn for h in busy] + [h.proc.sentinel for h in busy]
                poll = _POLL_SECONDS
                deadlines = [h.deadline for h in busy if h.deadline is not None]
                if deadlines:
                    poll = min(poll, max(min(deadlines) - time.monotonic(), 0.0))
                if ready:
                    poll = min(poll, max(ready[0][0] - time.monotonic(), 0.0))
                _connection_wait(waitables, timeout=poll)

                now = time.monotonic()
                for handle in list(busy):
                    message = None
                    try:
                        if handle.conn.poll(0):
                            message = handle.conn.recv()
                    except (EOFError, OSError):
                        _worker_crashed(handle)
                        continue
                    if message is not None:
                        _collect(handle, message)
                    elif not handle.proc.is_alive():
                        _worker_crashed(handle)
                    elif handle.deadline is not None and now >= handle.deadline:
                        _worker_timed_out(handle)
        except KeyboardInterrupt:
            # Graceful cancellation: drain results that already arrived so
            # the caller (and its results store) keeps them, then re-raise
            # with every worker reaped -- the sweep exits *resumable*.
            _log(self.logger, "warning", "sweep_cancelled",
                 delivered=delivered, total=total)
            for handle in busy:
                try:
                    if handle.conn.poll(0):
                        index, _kind, ok, result, error, elapsed = handle.conn.recv()
                        outcomes[index] = (ok, result, error, elapsed)
                except (EOFError, OSError):
                    pass
            for index in sorted(k for k in outcomes if k >= delivered):
                if deliver is not None:
                    try:
                        deliver(index, *outcomes[index])
                    except KeyboardInterrupt:
                        continue  # keep draining; we are already cancelling
            raise
        finally:
            for handle in idle + busy:
                if handle.index is None and handle.proc.is_alive():
                    try:
                        handle.conn.send(None)  # polite shutdown first
                    except (BrokenPipeError, OSError):
                        pass
            for handle in idle + list(busy):
                self._dispose(handle, kill=True)
