"""``python -m repro`` -- the reproduction command line.

Subcommands::

    repro list                 # workloads and tracker schemes
    repro run WORKLOAD [...]   # one (workload, config) simulation
    repro trace WORKLOAD [...] # traced window -> JSONL/Chrome/Kanata/SVG
    repro sweep [...]          # parallel evaluation matrix + report artifacts
    repro paper [...]          # the paper's Figures 7-9 -> artifacts/paper/
    repro report SWEEP.json    # re-render tables from a saved artifact
    repro store ACTION FILE    # results-store maintenance (verify/stats/compact)
    repro bench [...]          # simulator throughput benchmarks -> BENCH_core.json
    repro serve [...]          # HTTP sweep service (docs/service.md)

``sweep`` is the paper-table entry point: it expands a
:class:`~repro.experiments.grid.SweepSpec` from the flags, runs it on a
worker pool with a warm trace cache, prints the markdown speedup table and
writes ``sweep.md`` / ``sweep.csv`` / ``sweep.json`` under ``--out-dir``;
``--resume`` additionally keeps an append-only results store next to the
artifacts so an interrupted matrix restarts where it stopped.  ``paper``
runs the declarative figure grids on the same machinery and renders SVG
charts, ``figures.json`` and a narrated ``REPORT.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.grid import SCHEME_PRESETS, SweepSpec, known_schemes
from repro.experiments.report import SweepReport
from repro.experiments.runner import run_sweep
from repro.experiments.scheduler import ReliabilityStats
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core, simulate
from repro.telemetry import ProgressReporter, RunLogger
from repro.workloads import generate_trace, workload_families, workload_specs


def _csv_list(text: str) -> tuple[str, ...]:
    """Parse a comma-separated flag value into a tuple of names."""
    return tuple(item.strip() for item in text.split(",") if item.strip())


def _build_parser() -> argparse.ArgumentParser:
    import repro

    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPCA'16 physical-register-sharing reproduction harness")
    parser.add_argument("--version", action="version",
                        version=f"repro {repro.__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and tracker schemes")

    run = sub.add_parser("run", help="simulate one (workload, config) pair")
    run.add_argument("workload")
    run.add_argument("--scheme", default="isrb", choices=known_schemes())
    run.add_argument("--max-ops", type=int, default=20_000)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--no-move-elim", action="store_true",
                     help="disable move elimination")
    run.add_argument("--no-smb", action="store_true",
                     help="disable speculative memory bypassing")
    run.add_argument("--baseline", action="store_true",
                     help="run the no-sharing Table-1 baseline instead")
    run.add_argument("--sample-period", type=int, default=None, metavar="N",
                     help="enable two-speed sampled simulation with one "
                          "detailed window every N retired micro-ops")
    run.add_argument("--sample-window", type=int, default=2_000, metavar="N",
                     help="measured detailed window length (default 2000)")
    run.add_argument("--warmup", type=int, default=500, metavar="N",
                     help="detailed warmup before each window (default 500)")
    run.add_argument("--ipc-tolerance", type=float, default=None, metavar="F",
                     help="error-budget sampled mode: grow the detailed "
                          "window count until the per-window IPC 95%% CI "
                          "relative half-width is <= F (e.g. 0.02); implies "
                          "sampling even without --sample-period")
    run.add_argument("--json", action="store_true",
                     help="print the full result as JSON")
    run.add_argument("--trace-out", default=None, metavar="DIR",
                     help="record pipeline lifecycle events for the first "
                          "--trace-window micro-ops and write trace.jsonl / "
                          "trace.chrome.json / trace.kanata / timeline.svg "
                          "under DIR (full-detail runs only)")
    run.add_argument("--trace-window", type=int, default=256, metavar="N",
                     help="traced window length in micro-ops (default 256)")

    trace = sub.add_parser(
        "trace",
        help="run a bounded traced window and render the pipeline timeline "
             "(JSONL + Chrome trace-event JSON + Kanata + SVG)")
    trace.add_argument("workload")
    trace.add_argument("--scheme", default="isrb", choices=known_schemes())
    trace.add_argument("--baseline", action="store_true",
                       help="trace the no-sharing Table-1 baseline instead")
    trace.add_argument("--no-move-elim", action="store_true",
                       help="disable move elimination")
    trace.add_argument("--no-smb", action="store_true",
                       help="disable speculative memory bypassing")
    trace.add_argument("--max-ops", type=int, default=4_000,
                       help="trace length to simulate (default 4000)")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--start", type=int, default=0, metavar="SEQ",
                       help="first traced sequence number (default 0)")
    trace.add_argument("--window", type=int, default=200, metavar="N",
                       help="traced window length in micro-ops (default 200)")
    trace.add_argument("--rows", type=int, default=64, metavar="N",
                       help="max instruction rows in timeline.svg (default 64)")
    trace.add_argument("--out-dir", default="trace_out",
                       help="artifact directory (default: trace_out)")

    sweep = sub.add_parser("sweep", help="run an evaluation matrix in parallel")
    sweep.add_argument("--spec", default=None, metavar="SPEC.json",
                       help="read the sweep spec from a JSON document (the "
                            "same wire format POST /sweeps accepts; "
                            "overrides the grid flags below)")
    sweep.add_argument("--schemes", type=_csv_list, default=("isrb",),
                       help="comma-separated tracker schemes "
                            f"(known: {','.join(known_schemes())})")
    sweep.add_argument("--workloads", type=_csv_list, default=(),
                       help="comma-separated workloads (default: full suite)")
    sweep.add_argument("--max-ops", type=int, default=20_000)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default 1 = in-process)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock budget in seconds")
    sweep.add_argument("--move-elim-ablation", action="store_true",
                       help="cross in move-elim off/on instead of always-on")
    sweep.add_argument("--smb-ablation", action="store_true",
                       help="cross in SMB off/on instead of always-on")
    sweep.add_argument("--entries", type=str, default="",
                       help="comma-separated tracker sizes overriding the "
                            "per-scheme preset (e.g. 8,16,32; 'unl' = unlimited)")
    sweep.add_argument("--sample-period", type=int, default=None, metavar="N",
                       help="run every job in two-speed sampled mode with one "
                            "detailed window every N retired micro-ops")
    sweep.add_argument("--sample-window", type=int, default=2_000, metavar="N",
                       help="measured detailed window length (default 2000)")
    sweep.add_argument("--warmup", type=int, default=500, metavar="N",
                       help="detailed warmup before each window (default 500)")
    sweep.add_argument("--cooldown", type=int, default=300, metavar="N",
                       help="detailed cooldown after each window (default 300)")
    sweep.add_argument("--ipc-tolerance", type=float, default=None, metavar="F",
                       help="error-budget sampled mode: per workload, grow "
                            "the window count until the IPC 95%% CI relative "
                            "half-width is <= F; every scheme executes the "
                            "same frozen window offsets (paired deltas)")
    sweep.add_argument("--no-farm", action="store_true",
                       help="disable the shared-warmup checkpoint farm for "
                            "sampled sweeps (per-scheme independent warming; "
                            "identical results, more wall-clock)")
    sweep.add_argument("--cache-dir", default=".trace_cache",
                       help="trace/plan cache directory ('' disables caching)")
    sweep.add_argument("--out-dir", default="sweep_out",
                       help="directory for sweep.md / sweep.csv / sweep.json")
    sweep.add_argument("--resume", action="store_true",
                       help="keep an append-only results store under "
                            "--out-dir and skip cells it already holds "
                            "(interrupted sweeps restart where they stopped)")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")
    sweep.add_argument("--log", default=None, metavar="RUN.jsonl",
                       help="append structured run events (phases, per-job "
                            "outcomes, failure warnings) as JSON lines")
    # Hidden chaos knobs (CI + tests): deterministically inject worker
    # crashes / hangs / transient raises / torn store writes.  The sweep
    # must still converge to byte-identical artifacts -- that is the
    # contract these flags exist to check, not a user feature.
    sweep.add_argument("--inject-faults", type=int, default=None,
                       metavar="SEED", help=argparse.SUPPRESS)
    sweep.add_argument("--fault-rate", type=float, default=0.3,
                       help=argparse.SUPPRESS)
    sweep.add_argument("--fault-kinds", type=_csv_list, default=(),
                       help=argparse.SUPPRESS)

    paper = sub.add_parser(
        "paper",
        help="reproduce the paper's Figures 7-9 (SVG charts + REPORT.md + "
             "figures.json), resumably")
    paper.add_argument("--figure", action="append", choices=("7", "8", "9"),
                       default=None, metavar="N",
                       help="figure to (re)produce; repeatable (default: all)")
    paper.add_argument("--smoke", action="store_true",
                       help="reduced grids (CI-sized: well under 2 minutes)")
    paper.add_argument("--sample-period", type=int, default=None, metavar="N",
                       help="run every grid cell in two-speed sampled mode "
                            "with one detailed window every N retired "
                            "micro-ops")
    paper.add_argument("--ipc-tolerance", type=float, default=None, metavar="F",
                       help="error-budget sampled mode for every grid cell: "
                            "the planner picks the cheapest geometry whose "
                            "IPC 95%% CI relative half-width is <= F")
    paper.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default 1 = in-process)")
    paper.add_argument("--seed", type=int, default=1)
    paper.add_argument("--timeout", type=float, default=None,
                       help="per-cell wall-clock budget in seconds")
    paper.add_argument("--out-dir", default="artifacts/paper",
                       help="artifact directory (default: artifacts/paper)")
    paper.add_argument("--store", default=None, metavar="RESULTS.jsonl",
                       help="results-store file (default: "
                            "<out-dir>/store/results.jsonl)")
    paper.add_argument("--quiet", action="store_true",
                       help="suppress per-cell progress lines")
    paper.add_argument("--log", default=None, metavar="RUN.jsonl",
                       help="append structured run events (phases, per-cell "
                            "outcomes, failure warnings) as JSON lines")

    report = sub.add_parser("report", help="re-render a saved sweep artifact")
    report.add_argument("artifact", help="path to a sweep.json file")
    report.add_argument("--format", choices=("markdown", "csv", "json"),
                        default="markdown")

    store = sub.add_parser(
        "store",
        help="results-store maintenance: verify integrity, print stats, or "
             "compact to canonical form (dedup, strip torn lines, prune "
             "stale leases)")
    store.add_argument("action", choices=("verify", "stats", "compact"))
    store.add_argument("store_file", metavar="RESULTS.jsonl",
                       help="results-store file (e.g. "
                            "sweep_out/results_store.jsonl)")
    store.add_argument("--keep-meta", action="store_true",
                       help="compact: keep per-record observability metadata "
                            "(wall times) instead of stripping it")

    serve = sub.add_parser(
        "serve",
        help="run the HTTP sweep service: submit sweeps over REST, stream "
             "progress via SSE, share one results store across clients "
             "(docs/service.md)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="listen port (0 = pick a free one; default 8765)")
    serve.add_argument("--store", default="service_store/results.jsonl",
                       metavar="RESULTS.jsonl",
                       help="shared results store backing every sweep "
                            "(default: service_store/results.jsonl)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes per running sweep "
                            "(default 1 = in-process)")
    serve.add_argument("--concurrent", type=int, default=2, metavar="N",
                       help="sweeps running at once (default 2)")
    serve.add_argument("--quota", type=int, default=2, metavar="N",
                       help="active sweeps one client may hold (default 2)")
    serve.add_argument("--queue-limit", type=int, default=8, metavar="N",
                       help="active sweeps service-wide (default 8)")
    serve.add_argument("--cache-dir", default="",
                       help="trace/plan cache directory ('' disables caching, "
                            "the default: served reports stay byte-identical "
                            "to direct --cache-dir '' runs)")

    bench = sub.add_parser(
        "bench",
        help="benchmark the simulator itself (trace gen, per-scheme "
             "simulation, end-to-end sweep)")
    bench.add_argument("--workloads", type=_csv_list, default=(),
                       help="comma-separated workloads to time "
                            "(default: the standard bench set)")
    bench.add_argument("--schemes", type=_csv_list, default=(),
                       help="comma-separated tracker schemes to time; "
                            "'baseline' means the no-sharing machine "
                            "(default: baseline,isrb,refcount,matrix)")
    bench.add_argument("--max-ops", type=int, default=None,
                       help="trace length per benchmarked workload "
                            "(default: 20000, or 4000 with --smoke)")
    bench.add_argument("--repeat", type=int, default=None,
                       help="repeats per case; best wall time is reported "
                            "(default: 2, or 1 with --smoke)")
    bench.add_argument("--no-sweep", action="store_true",
                       help="skip the end-to-end sweep tier")
    bench.add_argument("--no-sampled", action="store_true",
                       help="skip the sampled-vs-full accuracy tier")
    bench.add_argument("--no-long", action="store_true",
                       help="skip the >=1M-op long-horizon tier")
    bench.add_argument("--no-farm-sweep", action="store_true",
                       help="skip the checkpoint-farm sweep tier")
    bench.add_argument("--no-adaptive", action="store_true",
                       help="skip the adaptive (error-budget) sampling tier")
    bench.add_argument("--no-paper", action="store_true",
                       help="skip the paper-figure pipeline tier")
    bench.add_argument("--no-decode", action="store_true",
                       help="skip the RV32I decode+lower frontend tier")
    bench.add_argument("--out", default="BENCH_core.json",
                       help="output artifact path ('' = don't write)")
    bench.add_argument("--smoke", action="store_true",
                       help="reduced CI suite; with --baseline, fail on "
                            "errors or regressions beyond --tolerance")
    bench.add_argument("--baseline", default=None, metavar="BENCH.json",
                       help="committed baseline artifact to compare against")
    bench.add_argument("--check", default=None, metavar="BENCH.json",
                       help="compare an existing artifact against --baseline "
                            "instead of running benchmarks (CI gate between "
                            "two saved runs)")
    bench.add_argument("--tolerance", type=float, default=0.30,
                       help="allowed fractional slowdown vs the baseline "
                            "(default 0.30)")
    bench.add_argument("--gate-kinds", type=_csv_list, default=(),
                       metavar="KINDS",
                       help="restrict the baseline gate to these benchmark "
                            "kinds (e.g. 'sim' for the tight tracing-off "
                            "overhead gate; default: every shared kind)")
    bench.add_argument("--profile", action="store_true",
                       help="run the selected benchmark tiers under cProfile "
                            "and print the top-20 cumulative functions, so "
                            "performance work is measured, not guessed")
    bench.add_argument("--quiet", action="store_true",
                       help="suppress per-case progress lines")
    return parser


# -- subcommands --------------------------------------------------------------------


def _cmd_list(_args: argparse.Namespace) -> int:
    print("workloads:")
    for spec in workload_specs():
        print(f"  {spec.name:16s} [{spec.category}] {spec.description}")
    print("\nworkload families (usable anywhere a workload name is):")
    for prefix, description in sorted(workload_families().items()):
        print(f"  {prefix + ':...':16s} {description}")
    print("\ntracker schemes:")
    for name in known_schemes():
        preset = SCHEME_PRESETS[name]
        entries = preset["entries"] if preset["entries"] is not None else "unlimited"
        bits = preset["counter_bits"] if preset["counter_bits"] is not None else "unbounded"
        print(f"  {name:20s} entries={entries} counter_bits={bits}")
    return 0


def _config_from_flags(args: argparse.Namespace) -> CoreConfig:
    """The core configuration described by run/trace scheme flags."""
    if args.baseline:
        return CoreConfig()
    preset = SCHEME_PRESETS[args.scheme]
    config = CoreConfig().with_tracker(
        scheme=preset["scheme"], entries=preset["entries"],
        counter_bits=preset["counter_bits"])
    if not args.no_move_elim:
        config = config.with_move_elimination()
    if not args.no_smb:
        config = config.with_smb()
    return config


def _write_trace_artifacts(tracer, out_dir, rows: int = 64) -> dict[str, Path]:
    """Write every trace export format for one completed traced run."""
    from repro.paper.charts import timeline_chart

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = {
        "jsonl": out / "trace.jsonl",
        "chrome": out / "trace.chrome.json",
        "kanata": out / "trace.kanata",
        "svg": out / "timeline.svg",
    }
    paths["jsonl"].write_text(tracer.to_jsonl())
    paths["chrome"].write_text(
        json.dumps(tracer.to_chrome_trace(), indent=1, sort_keys=True) + "\n")
    paths["kanata"].write_text(tracer.to_kanata())
    title = f"{tracer.workload} pipeline timeline [{tracer.scheme}]"
    paths["svg"].write_text(
        timeline_chart(title, tracer.timeline(), max_rows=rows) + "\n")
    return paths


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_flags(args)
    sampled = args.sample_period is not None or args.ipc_tolerance is not None
    if args.trace_out is not None and sampled:
        print("error: --trace-out requires a full-detail run "
              "(drop --sample-period/--ipc-tolerance)", file=sys.stderr)
        return 2
    core = None
    try:
        if sampled:
            from repro.pipeline.sampling import SamplingConfig, simulate_sampled

            extra = ({"tolerance": args.ipc_tolerance}
                     if args.ipc_tolerance is not None else {})
            sampling = SamplingConfig(
                period=(args.sample_period if args.sample_period is not None
                        else SamplingConfig().period),
                window=args.sample_window,
                warmup=args.warmup, **extra)
            result = simulate_sampled(args.workload, config, sampling,
                                      max_ops=args.max_ops, seed=args.seed)
        elif args.trace_out is not None:
            trace = generate_trace(args.workload, max_ops=args.max_ops,
                                   seed=args.seed)
            core = Core(config.with_trace(start=0, limit=args.trace_window))
            result = core.run(trace)
        else:
            result = simulate(args.workload, config, max_ops=args.max_ops,
                              seed=args.seed)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.summary())
        if sampled:
            if "sampling_ipc_std" in result.stats:
                interval = (f"[{result.stat('sampling_ipc_ci95_low'):.3f}, "
                            f"{result.stat('sampling_ipc_ci95_high'):.3f}] "
                            "95% CI")
            else:
                interval = "CI n/a (single window)"
            print(f"  sampled: {result.stat('sampling_windows'):.0f} windows, "
                  f"IPC {result.stat('sampling_ipc_mean'):.3f} {interval}, "
                  f"{result.stat('fastforwarded_instructions'):.0f} micro-ops "
                  "fast-forwarded")
            if args.ipc_tolerance is not None:
                from repro.telemetry.metrics import sampling_stop_reason

                reason = sampling_stop_reason(
                    result.stat("sampling_stop_reason_code"))
                print(f"  error budget: +/-{args.ipc_tolerance * 100:g}% IPC "
                      f"-> stopped on '{reason}' after "
                      f"{result.stat('sampling_probe_rounds'):.0f} probe "
                      f"round(s), {result.stat('sampling_probe_instructions'):.0f} "
                      "probed micro-ops")
    if core is not None and core.tracer is not None:
        paths = _write_trace_artifacts(core.tracer, args.trace_out)
        print(f"trace artifacts: {paths['jsonl'].parent}", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        config = _config_from_flags(args).with_trace(start=args.start,
                                                     limit=args.window)
        trace = generate_trace(args.workload, max_ops=args.max_ops,
                               seed=args.seed)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    core = Core(config)
    result = core.run(trace)
    tracer = core.tracer
    print(result.summary())
    summary = tracer.summary()
    note = ", event cap hit (raise --window care or TraceConfig.max_events)" \
        if tracer.truncated else ""
    print(f"traced window: seq [{args.start}, {args.start + args.window}) -> "
          f"{summary.value('traced_instructions'):.0f} lifecycle(s), "
          f"{len(tracer.events)} event(s), "
          f"{summary.value('traced_squashes'):.0f} squash(es){note}")
    paths = _write_trace_artifacts(tracer, args.out_dir, rows=args.rows)
    for name in ("jsonl", "chrome", "kanata", "svg"):
        print(f"  {name:6s}: {paths[name]}")
    return 0


def _parse_entries(text: str) -> tuple[int | None, ...]:
    if not text:
        return ()
    values: list[int | None] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        values.append(None if token in ("unl", "unlimited", "none") else int(token))
    return tuple(values)


def _make_observability(args: argparse.Namespace, label: str):
    """(progress callback, logger) for a sweep-shaped command.

    Progress is a live ``[completed/total]`` line with cells/s and ETA
    (suppressed by ``--quiet``); the logger collects phase timings and
    failure warnings, and also appends JSON lines when ``--log`` is given.
    """
    progress = None
    if not args.quiet:
        progress = ProgressReporter(stream=sys.stderr, label=label).job_progress
    log_path = getattr(args, "log", None)
    logger = None
    if log_path or not args.quiet:
        logger = RunLogger(path=log_path,
                           stream=None if args.quiet else sys.stderr)
    return progress, logger


def _finish_observability(logger) -> None:
    """Print the phase-time summary and close the log file."""
    if logger is None:
        return
    if logger.phase_seconds:
        phases = "  ".join(f"{name} {seconds:.1f}s"
                           for name, seconds in logger.phase_seconds.items())
        print(f"phases: {phases}", file=sys.stderr)
    if logger.path is not None:
        print(f"run log: {logger.path}", file=sys.stderr)
    logger.close()


def _load_spec_file(path: str) -> SweepSpec:
    """Read a sweep spec document (bare spec or service submission envelope)."""
    from repro.service import schemas

    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read spec file {path}: {exc}") from exc
    if isinstance(data, dict) and "spec" in data:
        if data.get("api") != schemas.API_VERSION:
            raise ValueError(f"spec file {path}: unsupported api version "
                             f"{data.get('api')!r}")
        return schemas.spec_from_dict(data["spec"])
    return schemas.spec_from_dict(data)


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        spec = _load_spec_file(args.spec) if args.spec else SweepSpec(
            schemes=tuple(args.schemes),
            workloads=tuple(args.workloads),
            move_elim=(False, True) if args.move_elim_ablation else (True,),
            smb=(False, True) if args.smb_ablation else (True,),
            entries=_parse_entries(args.entries),
            max_ops=args.max_ops,
            seed=args.seed,
            sample_period=args.sample_period,
            sample_window=args.sample_window,
            sample_warmup=args.warmup,
            sample_cooldown=args.cooldown,
            sample_tolerance=args.ipc_tolerance,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(spec.describe(), file=sys.stderr)
    fault_plan = None
    if args.inject_faults is not None:
        from repro.experiments.faults import FaultPlan

        try:
            fault_plan = FaultPlan(
                seed=args.inject_faults, rate=args.fault_rate,
                **({"kinds": tuple(args.fault_kinds)} if args.fault_kinds
                   else {}))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    timeout = args.timeout
    if fault_plan is not None and timeout is None:
        # An injected hang needs a watchdog to trip; pick a bound well
        # above any smoke-grid cell but far below an injected hang.
        timeout = 20.0
    cache_dir = args.cache_dir or None
    progress, logger = _make_observability(args, label="jobs")
    store = None
    if args.resume:
        from repro.paper.store import ResultsStore

        store = ResultsStore(Path(args.out_dir) / "results_store.jsonl")
    stats = ReliabilityStats()
    try:
        report = run_sweep(spec, workers=args.jobs, cache_dir=cache_dir,
                           timeout=timeout, progress=progress,
                           farm=not args.no_farm, store=store, logger=logger,
                           fault_plan=fault_plan, stats=stats)
    except KeyboardInterrupt:
        _finish_observability(logger)
        if store is not None:
            # The runner already released our leases and closed the store
            # on a line boundary; everything recorded so far resumes.
            print(f"\ninterrupted: {store.stats.appended} cell(s) recorded in "
                  f"{store.path}; rerun with --resume to continue",
                  file=sys.stderr)
        else:
            print("\ninterrupted (no --resume store: completed cells were "
                  "not persisted)", file=sys.stderr)
        return 130
    _finish_observability(logger)
    # Reliability is stderr-only by design: report artifacts must stay
    # byte-identical however rough the run was (chaos tests pin this).
    print(stats.summary_line(spec.job_count()), file=sys.stderr)
    if store is not None:
        store.close()
        print(f"results store: {store.stats.appended} cell(s) appended, "
              f"{store.stats.hits} resumed from {store.path}", file=sys.stderr)

    stats = report.cache_stats
    if stats:
        if "plans_generated" in stats:
            print(f"checkpoint farm: {stats.get('plans_generated', 0)} shared "
                  f"warmup(s) planned, {stats.get('plans_reused', 0)} reused "
                  f"for {spec.job_count()} jobs", file=sys.stderr)
        else:
            print(f"trace cache: {stats.get('traces_generated', 0)} generated, "
                  f"{stats.get('traces_reused', 0)} reused for "
                  f"{spec.job_count()} jobs", file=sys.stderr)
    paths = report.save(args.out_dir)
    print(report.to_markdown())
    print(f"\nartifacts: {paths['markdown']}  {paths['csv']}  {paths['json']}",
          file=sys.stderr)
    return 1 if report.failures else 0


def _cmd_paper(args: argparse.Namespace) -> int:
    from repro.paper import run_paper

    def slice_progress(figure: str, label: str, job_count: int) -> None:
        print(f"figure {figure} [{label}]: {job_count} cell(s)",
              file=sys.stderr)

    progress, logger = _make_observability(args, label="cells")
    try:
        summary = run_paper(
            figures=tuple(args.figure) if args.figure else None,
            smoke=args.smoke,
            sample_period=args.sample_period,
            ipc_tolerance=args.ipc_tolerance,
            out_dir=args.out_dir,
            workers=args.jobs,
            seed=args.seed,
            timeout=args.timeout,
            progress=progress,
            slice_progress=None if args.quiet else slice_progress,
            store_path=args.store,
            logger=logger,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        _finish_observability(logger)
        print("\ninterrupted: completed cells are in the results store; "
              "rerun the same command to resume", file=sys.stderr)
        return 130
    _finish_observability(logger)
    print(summary.describe())
    print(f"report    : {summary.paths['report']}")
    return 1 if summary.failures else 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        data = json.loads(Path(args.artifact).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read sweep artifact {args.artifact}: {exc}",
              file=sys.stderr)
        return 2
    report = SweepReport.from_dict(data)
    if args.format == "markdown":
        print(report.to_markdown())
    elif args.format == "csv":
        print(report.to_csv(), end="")
    else:
        print(report.to_json())
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """``repro store verify|stats|compact RESULTS.jsonl`` maintenance."""
    from repro.paper.store import ResultsStore

    path = Path(args.store_file)
    if args.action != "compact" and not path.exists():
        print(f"error: no results store at {path}", file=sys.stderr)
        return 2
    store = ResultsStore(path)
    if args.action == "verify":
        report = store.verify()
        print(json.dumps(report, indent=2, sort_keys=True))
        # Exit non-zero on damage so CI can gate on hygiene; duplicates
        # and stale leases are normal operation (compact cleans them).
        return 1 if report["corrupt_lines"] or report["torn_tail"] else 0
    if args.action == "stats":
        report = store.verify()
        torn = "yes" if report["torn_tail"] else "no"
        print(f"{report['records']} record(s), {report['unique_keys']} "
              f"unique key(s), {report['duplicate_keys']} duplicate(s), "
              f"{report['corrupt_lines']} corrupt line(s), torn tail: {torn}")
        print(f"{report['leases_live']} live lease(s), "
              f"{report['leases_stale']} stale, "
              f"{report['lease_lines']} lease line(s) on disk")
        return 0
    outcome = store.compact(keep_meta=args.keep_meta)
    print(json.dumps(outcome, indent=2, sort_keys=True))
    return 0


def _gate_against_baseline(report, baseline_path: str, tolerance: float,
                           kinds: tuple[str, ...] = ()) -> int:
    from repro.bench import BenchReport, compare_reports

    try:
        baseline = BenchReport.load(baseline_path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
        return 2
    regressions = compare_reports(report, baseline, tolerance=tolerance,
                                  kinds=list(kinds) or None)
    scope = f" [{','.join(kinds)} only]" if kinds else ""
    if regressions:
        print(f"\nperformance regressions vs baseline{scope}:", file=sys.stderr)
        for message in regressions:
            print(f"  {message}", file=sys.stderr)
        return 1
    print(f"\nno regressions vs {baseline_path}{scope} "
          f"(tolerance {tolerance * 100:.0f}%)", file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from dataclasses import replace
    from pathlib import Path

    from repro.bench import BenchConfig, BenchReport, run_benchmarks

    if args.check:
        if not args.baseline:
            print("error: --check requires --baseline", file=sys.stderr)
            return 2
        try:
            report = BenchReport.load(args.check)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read artifact {args.check}: {exc}", file=sys.stderr)
            return 2
        return _gate_against_baseline(report, args.baseline, args.tolerance,
                                      kinds=args.gate_kinds)

    config = BenchConfig.smoke() if args.smoke else BenchConfig()
    overrides = {}
    if args.workloads:
        overrides["workloads"] = tuple(args.workloads)
        overrides["sampled_workloads"] = tuple(args.workloads)
    if args.schemes:
        overrides["schemes"] = tuple(args.schemes)
    if args.no_sampled:
        overrides["sampled"] = False
    if args.no_long:
        overrides["long_workloads"] = ()
    # A deliberately narrowed local run must not pay for the fixed-scale
    # tiers (the farm tier is a double multi-scheme sweep over 1M
    # micro-ops; the paper tier ignores the narrowing flags entirely); the
    # full default suite and --smoke keep them so the committed artifact
    # and the CI gate always carry the cases.
    narrowed = not args.smoke and (args.workloads or args.schemes
                                   or args.max_ops is not None)
    if args.no_paper or narrowed:
        overrides["paper"] = False
    if args.no_farm_sweep or narrowed:
        overrides["farm_sweep"] = False
    if args.no_adaptive or narrowed:
        overrides["adaptive"] = False
    if narrowed and not args.quiet:
        print("note: explicit --workloads/--schemes/--max-ops skip the "
              "fixed-scale sweep_farm, adaptive and paper tiers; run without "
              "them (or with --smoke) to include them", file=sys.stderr)
    # None means "not passed": explicit --max-ops/--repeat always win, the
    # preset (smoke or full) supplies the default otherwise.
    if args.max_ops is not None:
        overrides["max_ops"] = args.max_ops
    if args.repeat is not None:
        overrides["repeat"] = args.repeat
    if args.no_sweep:
        overrides["sweep"] = False
    if args.no_decode:
        overrides["decode"] = False
    try:
        config = replace(config, **overrides) if overrides else config
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    progress = None
    if not args.quiet:
        progress = lambda name: print(f"bench: {name}", file=sys.stderr)  # noqa: E731
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
    try:
        if profiler is not None:
            profiler.enable()
        try:
            report = run_benchmarks(config, progress=progress)
        finally:
            if profiler is not None:
                profiler.disable()
    except Exception as exc:
        print(f"error: benchmark failed: {exc}", file=sys.stderr)
        return 1
    if profiler is not None:
        import pstats

        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(20)
        # The full profile rides along as a .pstats artifact so hotspots
        # can be explored offline (snakeviz, pstats.Stats) instead of
        # being limited to the printed top 20.
        pstats_path = Path(args.out or "BENCH_core.json").with_suffix(".pstats")
        stats.dump_stats(str(pstats_path))
        print(f"profile artifact: {pstats_path}", file=sys.stderr)
    print(report.to_text())
    if args.out and args.profile:
        # Profiled wall times are inflated by instrumentation; never let
        # them become a committed artifact or gate input.
        print("note: --profile run not saved (timings are profiler-inflated); "
              "drop --profile to write an artifact", file=sys.stderr)
    elif args.out:
        # Never clobber the baseline being gated against: `bench --smoke
        # --baseline BENCH_core.json` with the default --out would first
        # overwrite the committed artifact with smoke numbers and then
        # compare the report against its own copy (a gate that can never
        # fail).  Skip the write and keep the comparison honest.
        if args.baseline and Path(args.out).resolve() == Path(args.baseline).resolve():
            print(f"note: not overwriting baseline {args.baseline}; "
                  "pass a different --out to save this run", file=sys.stderr)
        else:
            path = report.save(args.out)
            print(f"\nartifact: {path}", file=sys.stderr)

    if args.baseline:
        if args.profile:
            print("note: skipping baseline gate (profiled timings are not "
                  "comparable)", file=sys.stderr)
            return 0
        return _gate_against_baseline(report, args.baseline, args.tolerance,
                                      kinds=args.gate_kinds)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the HTTP sweep service (docs/service.md)."""
    import asyncio

    from repro.service import ServiceServer, SweepService

    service = SweepService(args.store, workers=args.jobs,
                           cache_dir=args.cache_dir or None,
                           max_concurrent=args.concurrent, quota=args.quota,
                           queue_limit=args.queue_limit)
    server = ServiceServer(service, host=args.host, port=args.port)

    def ready(port: int) -> None:
        # The readiness line scripted sessions (and humans) wait for; on
        # stdout and flushed so `repro serve &` pipelines see it promptly.
        print(f"serving on http://{args.host}:{port}", flush=True)
        print(f"results store: {args.store}", file=sys.stderr)

    try:
        asyncio.run(server.serve(ready=ready))
    except KeyboardInterrupt:
        print("\nshutting down (running sweeps are cancelled; the store "
              "resumes them on the next submission)", file=sys.stderr)
        return 130
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    finally:
        service.shutdown()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (also installed as the ``repro`` console script)."""
    args = _build_parser().parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run, "trace": _cmd_trace,
                "sweep": _cmd_sweep, "paper": _cmd_paper,
                "report": _cmd_report, "store": _cmd_store,
                "bench": _cmd_bench, "serve": _cmd_serve}
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
