"""Parallel sweep execution.

:func:`run_jobs` executes an expanded job list on a supervised
:class:`~repro.experiments.scheduler.Scheduler` backend (in-process for
``workers <= 1``, per-worker processes above that), with per-job watchdog
timeouts that terminate and reap the runaway worker, liveness supervision
that respawns crashed workers and retries their cells, deterministic
per-job seeds (carried by the :class:`~repro.experiments.grid.Job` itself)
and graceful partial failure: a job that raises deterministically -- or
keeps failing past the bounded :class:`~repro.experiments.scheduler
.RetryPolicy` -- becomes a failed :class:`JobResult` instead of aborting
the sweep, so a 100-job matrix with one pathological cell still yields 99
rows and **no cell is ever silently lost**.

Workers never re-run the functional executor when a trace cache directory
is provided: the parent warms the cache (one execution per distinct
``(workload, max_ops, seed)``), each worker memory-maps the pickled trace
from disk, and a per-process memo keeps a worker from re-reading the same
pickle for every job it executes.  When no cache directory is given, a
sweep that would otherwise rebuild the same trace per worker (or, run
in-process, per job) gets an *ephemeral* cache for the duration of the
call, so the executor still runs exactly once per workload.

Two-speed (sampled) sweeps go one step further -- the **checkpoint farm**:
the parent runs the scheme-independent planning pass (functional
fast-forward, SMARTS warming, window recording) once per workload via
:meth:`~repro.pipeline.sampling.SampledSimulator.plan`, and every tracker
-scheme job of the sweep executes its detailed windows from those shared
checkpoints (:meth:`~repro.pipeline.sampling.SampledSimulator
.execute_plan`).  Results are identical to per-scheme independent warming
by construction (the property tests pin this); only the redundant warmup
work disappears, turning O(schemes x warmup) into O(warmup).

Error-budget sweeps (``SweepSpec.sample_tolerance``) ride the same farm:
the adaptive planner probes candidate geometries on a scheme-*stripped*
machine, so the plan it freezes -- and therefore every scheme's window
offsets -- is the same whether planned once here or re-planned
independently per job.  Matched offsets mean per-cell speedup deltas are
*paired* samples, which is where the variance reduction comes from.

Resumable runs (``store=``) additionally use the store as a coordination
substrate: each pending cell is *leased* before it runs, so two concurrent
resumable runs over one store partition the work instead of duplicating
it; cells leased to the other run are awaited (or reclaimed if its lease
goes stale).  An injected torn store write (:class:`~repro.experiments
.faults.FaultPlan` ``torn_write``) is repaired and re-appended on the
spot, converging the store to the bytes a fault-free run writes.

:func:`run_sweep` is the one-call entry point gluing grid -> cache/farm ->
scheduler -> report together.
"""

from __future__ import annotations

import contextlib
import shutil
import tempfile
import time
import traceback
from dataclasses import dataclass
from typing import Callable

from repro.experiments.cache import TraceCache, plan_cache_key
from repro.experiments.faults import FaultPlan
from repro.experiments.grid import Job, SweepSpec
from repro.experiments.report import SweepReport, build_report
from repro.experiments.scheduler import (InProcessScheduler,
                                         ProcessPoolScheduler,
                                         ReliabilityStats, RetryPolicy)
from repro.pipeline.core import simulate_trace
from repro.pipeline.result import SimulationResult
from repro.pipeline.sampling import SampledSimulator
from repro.workloads import build_workload, materialize_trace

#: Poll period while waiting on cells leased by a concurrent resumable run.
_AWAIT_POLL_SECONDS = 0.25


@dataclass
class JobResult:
    """Outcome of one job: either a :class:`SimulationResult` or an error.

    ``from_store`` marks a cell that was *not* simulated this run but read
    back from a :class:`~repro.paper.store.ResultsStore` (resume); it never
    enters report artifacts, which must be identical either way.
    """

    job: Job
    ok: bool
    result: SimulationResult | None = None
    error: str | None = None
    elapsed: float = 0.0
    from_store: bool = False


#: Progress callback signature: ``(completed_count, total, job_result)``.
ProgressCallback = Callable[[int, int, JobResult], None]


def failure_summary(error: str | None) -> str:
    """One-line gist of a job failure (the exception line of a traceback)."""
    if not error:
        return "unknown failure"
    lines = [line.strip() for line in error.strip().splitlines() if line.strip()]
    return lines[-1] if lines else "unknown failure"


def _note_failure(logger, job_result: JobResult) -> None:
    """Surface a failed job as a structured warning event (satellite of the
    sweep footer: the same summary lands in ``SweepReport.to_markdown``)."""
    if logger is None or job_result.ok:
        return
    job = job_result.job
    logger.warning("job_failed", job_id=job.job_id, workload=job.workload,
                   variant=job.config.variant_name(),
                   error=failure_summary(job_result.error))


def _phase(logger, name: str, **fields):
    """``logger.phase(name)`` or a no-op context when no logger is wired."""
    if logger is None:
        return contextlib.nullcontext()
    return logger.phase(name, **fields)

#: Per-process read memos: a pool worker executes many jobs on the same few
#: workloads, so re-reading the pickled trace/plan for every job is wasted
#: I/O.  Bounded (cleared wholesale when full) because the parent process
#: may run many sweeps in one session.
_TRACE_MEMO: dict = {}
_PLAN_MEMO: dict = {}
_MEMO_LIMIT = 32


def _memoized(memo: dict, key, loader):
    value = memo.get(key)
    if value is None:
        value = loader()
        if value is not None:
            if len(memo) >= _MEMO_LIMIT:
                memo.clear()
            memo[key] = value
    return value


def _load_trace(job: Job, cache_root: str | None):
    if cache_root is not None:
        # Read-through: a miss (e.g. run_jobs called without a prior warm)
        # is generated once and persisted for the other jobs on the same
        # workload.  Writes are atomic, so concurrent workers are safe.
        return _memoized(
            _TRACE_MEMO, (cache_root, *job.trace_key),
            lambda: TraceCache(cache_root).get_or_generate(*job.trace_key))
    # materialize_trace handles imported-trace workloads (trace:<path>),
    # which have no functional image to execute.
    return materialize_trace(job.workload, max_ops=job.max_ops, seed=job.seed)


def _load_plan(job: Job, cache_root: str, simulator: SampledSimulator):
    key = (cache_root, plan_cache_key(*job.trace_key, simulator))
    return _memoized(
        _PLAN_MEMO, key,
        lambda: TraceCache(cache_root).get_plan(*job.trace_key, simulator))


def _execute_job(payload: tuple[Job, str | None, object | None, bool]
                 ) -> tuple[bool, SimulationResult | None, str | None, float]:
    """Worker entry point (module-level so it pickles under every start method)."""
    job, cache_root, plan, farm = payload
    start = time.perf_counter()
    try:
        if job.sampling is not None:
            simulator = SampledSimulator(job.config, job.sampling)
            if farm and plan is None and cache_root is not None:
                plan = _load_plan(job, cache_root, simulator)
            if plan is not None \
                    and plan.sampling == simulator.sampling_fingerprint() \
                    and plan.warm_signature == simulator.config.warm_signature():
                # Checkpoint farm: detailed windows only, from the shared
                # warmup (identical result, proven by the property tests).
                result = simulator.execute_plan(plan)
            else:
                # Independent warming: plan + execute in one call.  Sampled
                # mode never materialises the full trace (that is the
                # point), so the trace side of the cache is not consulted.
                result = simulator.run_workload(job.workload, max_ops=job.max_ops,
                                                seed=job.seed)
        else:
            trace = _load_trace(job, cache_root)
            result = simulate_trace(trace, job.config)
        return True, result, None, time.perf_counter() - start
    except Exception:
        return False, None, traceback.format_exc(), time.perf_counter() - start


def run_jobs(jobs: list[Job], workers: int = 1, timeout: float | None = None,
             cache_dir: str | None = None,
             progress: ProgressCallback | None = None,
             plans: dict | None = None, farm: bool = True,
             store=None, logger=None,
             fault_plan: FaultPlan | None = None,
             retry: RetryPolicy | None = None,
             stats: ReliabilityStats | None = None) -> list[JobResult]:
    """Run every job; returns one :class:`JobResult` per job, in input order.

    ``workers`` <= 1 runs in-process (easier to debug, no fork overhead for
    tiny sweeps); above that, jobs run on a supervised per-worker process
    pool (:class:`~repro.experiments.scheduler.ProcessPoolScheduler`).
    ``timeout`` is a per-job wall-clock budget in seconds; a job exceeding
    it has its worker **terminated and reaped** (never orphaned), and is
    retried under ``retry`` before being marked failed.  A crashed or
    externally killed worker is likewise detected, its cell retried on a
    respawned worker -- infrastructure failures are bounded-retried, while
    a job that raises deterministically fails immediately (retrying it
    would fail identically).  ``KeyboardInterrupt`` drains already-finished
    cells (so a store keeps them) and re-raises.

    ``plans`` maps :attr:`Job.trace_key` to a pre-computed
    :class:`~repro.pipeline.sampling.SamplePlan` for sampled jobs (the
    in-process checkpoint farm).  Pool workers ignore it -- shipping the
    recorded window traces through pickle per job would cost more than it
    saves -- and read plans from ``cache_dir`` instead.

    ``store`` is an optional :class:`~repro.paper.store.ResultsStore`:
    jobs it already holds are returned immediately (``from_store=True``)
    without simulating, every freshly simulated success is appended to it
    *as it completes*, and pending cells are leased so concurrent
    resumable runs over one store partition the work (see
    :mod:`repro.paper.store`).  Results are identical with or without a
    store (the determinism tests pin the artifact bytes).

    ``fault_plan`` (a :class:`~repro.experiments.faults.FaultPlan`)
    deterministically injects worker crashes, hangs, transient raises and
    torn store writes -- all survived by the machinery above; the chaos
    tests pin that artifacts converge to the fault-free bytes.

    ``stats`` (a :class:`~repro.experiments.scheduler.ReliabilityStats`)
    is an out-parameter accumulating what supervision did; ``logger``
    (a :class:`~repro.telemetry.runlog.RunLogger`) receives structured
    ``job_failed`` / ``job_retry`` / ``worker_crash`` / ``job_timeout`` /
    ``job_quarantined`` / lease events.
    """
    if store is not None:
        return _run_jobs_resumable(jobs, store, workers=workers,
                                   timeout=timeout, cache_dir=cache_dir,
                                   progress=progress, plans=plans, farm=farm,
                                   logger=logger, fault_plan=fault_plan,
                                   retry=retry, stats=stats)
    cache_root = str(cache_dir) if cache_dir is not None else None
    total = len(jobs)
    results: dict[int, JobResult] = {}

    def _deliver(index: int, ok: bool, result, error, elapsed: float) -> None:
        job_result = JobResult(job=jobs[index], ok=ok, result=result,
                               error=error, elapsed=elapsed)
        _note_failure(logger, job_result)
        results[index] = job_result
        if progress is not None:
            # Ordered delivery makes index order == completion order here.
            progress(index + 1, total, job_result)

    if workers <= 1 or total <= 1:
        backend = InProcessScheduler(_execute_job, retry=retry,
                                     fault_plan=fault_plan, logger=logger,
                                     stats=stats)
        backend.run(jobs, cache_root=cache_root, plans=plans, farm=farm,
                    deliver=_deliver)
    else:
        backend = ProcessPoolScheduler(min(workers, total), _execute_job,
                                       timeout=timeout, retry=retry,
                                       fault_plan=fault_plan, logger=logger,
                                       stats=stats)
        backend.run(jobs, cache_root=cache_root, farm=farm, deliver=_deliver)
    return [results[index] for index in range(total)]


def _log(logger, level: str, event: str, **fields) -> None:
    if logger is None:
        return
    logger.event(event, level=level, **fields)


def _record_with_repair(store, job_result: JobResult,
                        stats: ReliabilityStats, logger,
                        fault_plan: FaultPlan | None) -> None:
    """Append one success to the store, surviving an injected torn write.

    The recovery path is exactly what a resumed run does after a real
    power cut -- :meth:`~repro.paper.store.ResultsStore.repair` truncates
    the torn tail, then the record is re-appended -- so the store file
    converges to the bytes a fault-free run writes (pinned by the chaos
    tests).
    """
    # Imported here: repro.paper imports this module back (its CLI runs
    # sweeps), so a top-level import would be circular.
    from repro.paper.store import TornWriteError

    meta = {"elapsed_seconds": round(job_result.elapsed, 3)}
    if fault_plan is not None and fault_plan.tears_write(job_result.job.job_id):
        try:
            store.record_torn(job_result.job, job_result.result, meta)
        except TornWriteError as exc:
            removed = store.repair()
            stats.torn_writes_recovered += 1
            _log(logger, "warning", "torn_write_repaired",
                 job_id=job_result.job.job_id, bytes_truncated=removed,
                 reason=str(exc))
    store.record(job_result.job, job_result.result, meta=meta)


def _run_jobs_resumable(jobs: list[Job], store, workers: int,
                        timeout: float | None, cache_dir: str | None,
                        progress: ProgressCallback | None,
                        plans: dict | None, farm: bool, logger=None,
                        fault_plan: FaultPlan | None = None,
                        retry: RetryPolicy | None = None,
                        stats: ReliabilityStats | None = None) -> list[JobResult]:
    """The resume path of :func:`run_jobs`: store hits first, leased misses run.

    Store hits are reported through ``progress`` up front (elapsed 0).
    Every remaining cell is then **leased**: cells we win run through the
    normal machinery (each fresh success appended to the store -- and its
    lease released -- the moment it is collected, *before* the caller's
    progress callback sees it); cells a concurrent run holds are awaited,
    polling the store, and reclaimed if that run's lease goes stale.  On
    ``KeyboardInterrupt`` the owned leases are released and the store is
    closed cleanly before re-raising, so the sweep exits resumable.
    """
    stats = stats if stats is not None else ReliabilityStats()
    total = len(jobs)
    by_index: dict[int, JobResult] = {}
    mine: list[tuple[int, Job]] = []
    theirs: list[tuple[int, Job]] = []
    try:
        for index, job in enumerate(jobs):
            cached = store.get(job)
            if cached is not None:
                by_index[index] = JobResult(job=job, ok=True, result=cached,
                                            from_store=True)
                continue
            grant = store.claim(job)
            if grant is None:
                theirs.append((index, job))
                continue
            stats.leases_claimed += 1
            if grant == "reclaimed":
                stats.leases_reclaimed += 1
                _log(logger, "warning", "lease_reclaimed", job_id=job.job_id)
            mine.append((index, job))

        # Close the miss->claim race: a concurrent run may have recorded a
        # cell (and released its lease) between our snapshot read and our
        # claim winning.  One reload re-checks every won cell -- records
        # can only predate the claim, since holding the lease stops anyone
        # else from simulating the cell from here on.
        if mine:
            store.reload()
            contested, mine = mine, []
            for index, job in contested:
                if store.has(job):
                    store.release(job)
                    by_index[index] = JobResult(job=job, ok=True,
                                                result=store.get(job),
                                                from_store=True)
                else:
                    mine.append((index, job))

        ticks = 0
        if progress is not None:
            for index in sorted(by_index):
                ticks += 1
                progress(ticks, total, by_index[index])
        counter = {"done": len(by_index)}

        def _record_and_report(_completed: int, _subtotal: int,
                               job_result: JobResult) -> None:
            if job_result.ok and job_result.result is not None:
                # Wall time travels as record *metadata*: written for
                # per-cell attribution, never read back (determinism).
                _record_with_repair(store, job_result, stats, logger,
                                    fault_plan)
            store.release(job_result.job)
            store.heartbeat_owned()
            counter["done"] += 1
            if progress is not None:
                progress(counter["done"], total, job_result)

        def _run_claimed(claimed: list[Job]) -> list[JobResult]:
            return run_jobs(claimed, workers=workers, timeout=timeout,
                            cache_dir=cache_dir, progress=_record_and_report,
                            plans=plans, farm=farm, logger=logger,
                            fault_plan=fault_plan, retry=retry, stats=stats)

        for (index, _job), job_result in zip(mine, _run_claimed(
                [job for _index, job in mine])):
            by_index[index] = job_result

        # Await cells a concurrent resumable run holds leases on: poll the
        # store for their results, reclaim any whose lease went stale
        # (owner crashed) and run those ourselves.  Liveness: a concurrent
        # owner either records the cell, releases the lease (it failed
        # there -- we claim and run it) or goes stale (we reclaim it).
        waiting = theirs
        while waiting:
            still: list[tuple[int, Job]] = []
            progressed = False
            store.reload()
            for index, job in waiting:
                if store.has(job):
                    job_result = JobResult(job=job, ok=True,
                                           result=store.get(job),
                                           from_store=True)
                    stats.cells_awaited += 1
                    by_index[index] = job_result
                    counter["done"] += 1
                    progressed = True
                    if progress is not None:
                        progress(counter["done"], total, job_result)
                    continue
                grant = store.claim(job)
                if grant is not None:
                    # Same miss->claim race as above: the owner may have
                    # recorded and released between our reload and this
                    # claim winning.
                    store.reload()
                    if store.has(job):
                        store.release(job)
                        job_result = JobResult(job=job, ok=True,
                                               result=store.get(job),
                                               from_store=True)
                        stats.cells_awaited += 1
                        by_index[index] = job_result
                        counter["done"] += 1
                        progressed = True
                        if progress is not None:
                            progress(counter["done"], total, job_result)
                        continue
                    stats.leases_claimed += 1
                    if grant == "reclaimed":
                        stats.leases_reclaimed += 1
                        _log(logger, "warning", "lease_reclaimed",
                             job_id=job.job_id)
                    by_index[index] = _run_claimed([job])[0]
                    progressed = True
                    continue
                still.append((index, job))
            waiting = still
            if waiting and not progressed:
                time.sleep(_AWAIT_POLL_SECONDS)
    except KeyboardInterrupt:
        # Graceful cancellation: completed cells were already recorded by
        # the delivery path above; hand our leases back and close the
        # store on a line boundary so the next run resumes exactly the
        # pending cells.
        released = store.release_owned()
        _log(logger, "warning", "sweep_cancelled",
             leases_released=released, completed=len(by_index), total=total)
        store.close()
        raise
    return [by_index[index] for index in range(total)]


def run_sweep(spec: SweepSpec, workers: int = 1, cache_dir: str | None = None,
              timeout: float | None = None,
              progress: ProgressCallback | None = None,
              farm: bool = True, store=None, logger=None,
              fault_plan: FaultPlan | None = None,
              retry: RetryPolicy | None = None,
              stats: ReliabilityStats | None = None) -> SweepReport:
    """Expand ``spec``, warm the cache/farm, run the scheduler, aggregate.

    Full-detail sweeps materialise each distinct trace exactly once before
    any worker starts -- in ``cache_dir`` when given, or in an ephemeral
    cache when several pool workers would otherwise each rebuild it.

    Sampled sweeps run the shared-warmup checkpoint farm the same way:
    one planning pass per workload in the parent, executed by every scheme
    job (``farm=False`` restores per-scheme independent warming; results
    are identical either way, only the wall clock changes).  The report's
    ``cache_stats`` records generated-versus-reused counts only for a
    caller-supplied ``cache_dir``, so the artifact stays byte-identical
    however the sweep was scheduled.

    ``store`` (a :class:`~repro.paper.store.ResultsStore`) makes the sweep
    resumable: finished cells are skipped, fresh ones are appended to the
    store as they complete, and trace/plan warming only covers workloads
    that still have cells to run.  Tables and report JSON are identical to
    a storeless run; only ``cache_stats`` can differ (fewer traces or
    plans are materialised on a resumed run), so byte-for-byte resume
    comparisons should use ``cache_dir=None``, as ``repro paper`` does.

    ``logger`` (a :class:`~repro.telemetry.runlog.RunLogger`) times the
    warming and execution phases (``trace_build`` / ``plan`` / ``execute``
    in :attr:`~repro.telemetry.runlog.RunLogger.phase_seconds`) and
    records each job failure as a warning event.  Purely observational:
    report artifacts are identical with or without it.

    ``fault_plan`` / ``retry`` / ``stats`` flow to :func:`run_jobs`: the
    first injects deterministic faults (chaos testing), the second bounds
    infrastructure retries, the third accumulates the reliability summary
    -- none of them can perturb the report artifacts, which stay
    byte-identical to a fault-free, supervision-quiet run.
    """
    jobs = spec.expand()
    # Warming only needs to cover cells that will actually simulate; on a
    # resumed run the store supplies the rest.  The probe is cheap (an
    # in-memory index after the first read) and does not perturb artifact
    # bytes because warming is invisible to the report tables.
    if store is not None:
        pending = [job for job in jobs if not store.has(job)]
    else:
        pending = jobs
    pending_traces = len({job.trace_key for job in pending})
    sampling = spec.sampling_config()
    cache_stats: dict[str, int] = {}
    plans: dict | None = None
    ephemeral_dir: str | None = None
    effective_cache_dir = cache_dir
    try:
        if sampling is None:
            if cache_dir is not None:
                cache = TraceCache(cache_dir)
                with _phase(logger, "trace_build", traces=pending_traces):
                    generated, reused = cache.warm(job.trace_key for job in pending)
                cache_stats = {"traces_generated": generated, "traces_reused": reused,
                               **cache.stats.as_dict()}
            elif len(pending) > pending_traces:
                # Deduplicate trace builds: without a cache every pool
                # worker -- and, in-process, every job sharing a workload
                # -- would re-execute the functional executor.  An
                # ephemeral cache keeps the executor at one run per
                # workload either way (serial jobs after the first hit the
                # per-process read memo, not even the disk).
                ephemeral_dir = tempfile.mkdtemp(prefix="repro-sweep-cache-")
                with _phase(logger, "trace_build", traces=pending_traces):
                    TraceCache(ephemeral_dir).warm(job.trace_key for job in pending)
                effective_cache_dir = ephemeral_dir
        elif farm and spec.warm_homogeneous():
            simulator = SampledSimulator(spec.base_config, sampling)
            keys = [job.trace_key for job in pending]
            if cache_dir is not None:
                cache = TraceCache(cache_dir)
                with _phase(logger, "plan", plans=len(set(keys))):
                    generated, reused = cache.warm_plans(keys, simulator,
                                                         lenient=True)
                cache_stats = {"plans_generated": generated, "plans_reused": reused,
                               **cache.stats.as_dict()}
            elif workers > 1 and pending:
                ephemeral_dir = tempfile.mkdtemp(prefix="repro-sweep-farm-")
                with _phase(logger, "plan", plans=len(set(keys))):
                    TraceCache(ephemeral_dir).warm_plans(keys, simulator,
                                                         lenient=True)
                effective_cache_dir = ephemeral_dir
            elif pending:
                plans = {}
                with _phase(logger, "plan", plans=len(dict.fromkeys(keys))):
                    for key in dict.fromkeys(keys):
                        workload, max_ops, seed = key
                        try:
                            image = build_workload(workload, seed=seed)
                            plans[key] = simulator.plan(image, workload, max_ops,
                                                        workload=workload)
                        except Exception:
                            # The job-side fallback reproduces and reports it.
                            continue
        with _phase(logger, "execute", jobs=len(jobs)):
            results = run_jobs(jobs, workers=workers, timeout=timeout,
                               cache_dir=effective_cache_dir, progress=progress,
                               plans=plans, farm=farm, store=store,
                               logger=logger, fault_plan=fault_plan,
                               retry=retry, stats=stats)
    finally:
        if ephemeral_dir is not None:
            shutil.rmtree(ephemeral_dir, ignore_errors=True)
    # Note: deliberately free of execution details (worker count, wall
    # times, ephemeral caches, faults survived) -- the artifact must be
    # byte-identical however the sweep was scheduled, which the
    # determinism and chaos regression tests enforce.
    meta = {
        "schemes": list(spec.schemes),
        "workloads": list(spec.resolved_workloads()),
        "max_ops": spec.max_ops,
        "seed": spec.seed,
        "jobs": len(jobs),
    }
    if sampling is not None:
        meta["sampling"] = sampling.to_dict()
    return build_report(results, cache_stats=cache_stats, meta=meta)
