"""Parallel sweep execution.

:func:`run_jobs` executes an expanded job list on a
:class:`multiprocessing.Pool`, with per-job timeouts, deterministic
per-job seeds (carried by the :class:`~repro.experiments.grid.Job` itself)
and graceful partial failure: a job that raises or times out becomes a
failed :class:`JobResult` instead of aborting the sweep, so a 100-job
matrix with one pathological cell still yields 99 rows.

Workers never re-run the functional executor when a trace cache directory
is provided: the parent warms the cache (one execution per distinct
``(workload, max_ops, seed)``), and each worker memory-maps the pickled
trace from disk.  :func:`run_sweep` is the one-call entry point gluing
grid -> cache -> pool -> report together.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Callable

from repro.experiments.cache import TraceCache
from repro.experiments.grid import Job, SweepSpec
from repro.experiments.report import SweepReport, build_report
from repro.pipeline.core import simulate_trace
from repro.pipeline.result import SimulationResult
from repro.pipeline.sampling import SampledSimulator
from repro.workloads import build_workload


@dataclass
class JobResult:
    """Outcome of one job: either a :class:`SimulationResult` or an error."""

    job: Job
    ok: bool
    result: SimulationResult | None = None
    error: str | None = None
    elapsed: float = 0.0


#: Progress callback signature: ``(completed_count, total, job_result)``.
ProgressCallback = Callable[[int, int, JobResult], None]


def _load_trace(job: Job, cache_root: str | None):
    if cache_root is not None:
        # Read-through: a miss (e.g. run_jobs called without a prior warm)
        # is generated once and persisted for the other jobs on the same
        # workload.  Writes are atomic, so concurrent workers are safe.
        return TraceCache(cache_root).get_or_generate(*job.trace_key)
    return build_workload(job.workload, seed=job.seed).execute(max_ops=job.max_ops)


def _execute_job(payload: tuple[Job, str | None]) -> tuple[bool, SimulationResult | None,
                                                           str | None, float]:
    """Worker entry point (module-level so it pickles under every start method)."""
    job, cache_root = payload
    start = time.perf_counter()
    try:
        if job.sampling is not None:
            # Two-speed mode never materialises the full trace (that is the
            # point), so the trace cache is bypassed entirely.
            simulator = SampledSimulator(job.config, job.sampling)
            result = simulator.run_workload(job.workload, max_ops=job.max_ops,
                                            seed=job.seed)
        else:
            trace = _load_trace(job, cache_root)
            result = simulate_trace(trace, job.config)
        return True, result, None, time.perf_counter() - start
    except Exception:
        return False, None, traceback.format_exc(), time.perf_counter() - start


def run_jobs(jobs: list[Job], workers: int = 1, timeout: float | None = None,
             cache_dir: str | None = None,
             progress: ProgressCallback | None = None) -> list[JobResult]:
    """Run every job; returns one :class:`JobResult` per job, in input order.

    ``workers`` <= 1 runs in-process (easier to debug, no fork overhead for
    tiny sweeps).  ``timeout`` is a per-job wall-clock budget in seconds,
    measured from the moment the runner starts waiting on that job; a job
    exceeding it is marked failed and the pool is torn down once every
    other job has been collected.
    """
    cache_root = str(cache_dir) if cache_dir is not None else None
    total = len(jobs)
    results: list[JobResult] = []

    if workers <= 1 or total <= 1:
        for index, job in enumerate(jobs):
            ok, result, error, elapsed = _execute_job((job, cache_root))
            job_result = JobResult(job=job, ok=ok, result=result, error=error,
                                   elapsed=elapsed)
            results.append(job_result)
            if progress is not None:
                progress(index + 1, total, job_result)
        return results

    timed_out = False
    pool = multiprocessing.Pool(processes=min(workers, total))
    try:
        pending = [pool.apply_async(_execute_job, ((job, cache_root),))
                   for job in jobs]
        for index, (job, handle) in enumerate(zip(jobs, pending)):
            try:
                ok, result, error, elapsed = handle.get(timeout=timeout)
                job_result = JobResult(job=job, ok=ok, result=result,
                                       error=error, elapsed=elapsed)
            except multiprocessing.TimeoutError:
                timed_out = True
                job_result = JobResult(
                    job=job, ok=False,
                    error=f"timed out after {timeout:.1f}s", elapsed=timeout or 0.0)
            except Exception as exc:  # worker died (e.g. OOM kill)
                job_result = JobResult(job=job, ok=False,
                                       error=f"worker failed: {exc!r}")
            results.append(job_result)
            if progress is not None:
                progress(index + 1, total, job_result)
    finally:
        if timed_out:
            # A timed-out worker may still be grinding; don't wait for it.
            pool.terminate()
        else:
            pool.close()
        pool.join()
    return results


def run_sweep(spec: SweepSpec, workers: int = 1, cache_dir: str | None = None,
              timeout: float | None = None,
              progress: ProgressCallback | None = None) -> SweepReport:
    """Expand ``spec``, warm the trace cache, run the pool, aggregate the report.

    When ``cache_dir`` is given, the parent process materialises each
    distinct trace exactly once before any worker starts; the report's
    ``cache_stats`` records how many traces were generated versus reused so
    callers can verify the executor-once-per-workload property.
    """
    jobs = spec.expand()
    sampling = spec.sampling_config()
    cache_stats: dict[str, int] = {}
    if cache_dir is not None and sampling is None:
        cache = TraceCache(cache_dir)
        generated, reused = cache.warm(job.trace_key for job in jobs)
        cache_stats = {"traces_generated": generated, "traces_reused": reused,
                       **cache.stats.as_dict()}
    results = run_jobs(jobs, workers=workers, timeout=timeout,
                       cache_dir=cache_dir, progress=progress)
    # Note: deliberately free of execution details (worker count, wall
    # times) -- the artifact must be byte-identical however the sweep was
    # scheduled, which the determinism regression tests enforce.
    meta = {
        "schemes": list(spec.schemes),
        "workloads": list(spec.resolved_workloads()),
        "max_ops": spec.max_ops,
        "seed": spec.seed,
        "jobs": len(jobs),
    }
    if sampling is not None:
        meta["sampling"] = sampling.to_dict()
    return build_report(results, cache_stats=cache_stats, meta=meta)
