"""Batch experiment harness: sweep grids, parallel runner, trace cache, reports.

The subsystem turns the single-run ``simulate()`` API into the paper's
evaluation methodology:

* :mod:`repro.experiments.grid` -- declarative :class:`SweepSpec` expansion
  into ``(workload, CoreConfig)`` job lists;
* :mod:`repro.experiments.cache` -- on-disk :class:`TraceCache` so the
  functional executor runs once per ``(workload, max_ops, seed)``;
* :mod:`repro.experiments.runner` -- :func:`run_jobs` / :func:`run_sweep`
  on a ``multiprocessing`` pool with timeouts and partial-failure handling;
* :mod:`repro.experiments.report` -- speedup-over-baseline tables with
  geomean rows and markdown/CSV/JSON export;
* :mod:`repro.experiments.cli` -- the ``python -m repro`` / ``repro``
  command line gluing it all together.

A worked example -- declare a matrix, expand it, run it, read the table::

    >>> from repro.experiments import SweepSpec, run_sweep
    >>> spec = SweepSpec(schemes=("isrb",), workloads=("move_chain",),
    ...                  max_ops=2_000)
    >>> spec.job_count()
    2
    >>> [job.job_id for job in spec.expand()]
    ['move_chain__baseline', 'move_chain__isrb-e32-c3_me_smb.tage']
    >>> report = run_sweep(spec)          # runs both cells in-process
    >>> report.variants
    ['isrb-e32-c3_me_smb.tage']
    >>> report.speedups["move_chain"]["isrb-e32-c3_me_smb.tage"] > 0.9
    True

Passing a :class:`~repro.paper.store.ResultsStore` as ``store=`` makes the
same call resumable (finished cells are never re-simulated); ``repro
paper`` builds its figure grids out of exactly these sweeps.
"""

from repro.experiments.cache import TraceCache
from repro.experiments.grid import SCHEME_PRESETS, Job, SweepSpec, known_schemes
from repro.experiments.report import SweepReport, build_report, geomean
from repro.experiments.runner import JobResult, run_jobs, run_sweep

__all__ = [
    "SCHEME_PRESETS",
    "known_schemes",
    "Job",
    "SweepSpec",
    "TraceCache",
    "JobResult",
    "run_jobs",
    "run_sweep",
    "SweepReport",
    "build_report",
    "geomean",
]
