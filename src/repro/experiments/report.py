"""Aggregation of sweep results into the paper's table shape.

The paper reports speedups of each optimisation/tracker configuration over
the no-sharing baseline, per workload, with a geometric-mean summary row
(Figures 7--9).  :func:`build_report` reproduces that shape from a list of
:class:`~repro.experiments.runner.JobResult` objects and
:class:`SweepReport` exports it as markdown, CSV or JSON.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.pipeline.result import SimulationResult


def _failure_gist(error: str | None) -> str:
    """One-line summary of a recorded failure (tracebacks keep only the
    exception line; see :func:`repro.experiments.runner.failure_summary`)."""
    from repro.experiments.runner import failure_summary

    return failure_summary(error)


def geomean(values) -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    if any(value <= 0 for value in values):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


@dataclass
class SweepReport:
    """Speedup-over-baseline table plus the raw results behind it.

    ``speedups[workload][variant]`` is the cycle-count ratio
    ``baseline/variant`` (>1 means the variant is faster); ``ipc`` holds the
    absolute IPC of every run including the baseline; ``failures`` records
    jobs that produced no result so tables never silently drop a cell.
    """

    workloads: list[str] = field(default_factory=list)
    variants: list[str] = field(default_factory=list)
    speedups: dict[str, dict[str, float]] = field(default_factory=dict)
    ipc: dict[str, dict[str, float]] = field(default_factory=dict)
    results: list[SimulationResult] = field(default_factory=list)
    failures: list[dict] = field(default_factory=list)
    cache_stats: dict[str, int] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    # -- aggregate rows -------------------------------------------------------------

    def geomean_speedups(self) -> dict[str, float]:
        """Geometric-mean speedup per variant across workloads with data."""
        out: dict[str, float] = {}
        for variant in self.variants:
            cells = [self.speedups[workload][variant]
                     for workload in self.workloads
                     if variant in self.speedups.get(workload, {})]
            if cells:
                out[variant] = geomean(cells)
        return out

    # -- exports --------------------------------------------------------------------

    def to_markdown(self) -> str:
        """Speedup table in GitHub markdown (the paper's figure shape)."""
        header = ["workload"] + self.variants
        lines = ["| " + " | ".join(header) + " |",
                 "|" + "|".join(["---"] * len(header)) + "|"]
        for workload in self.workloads:
            row = [workload]
            for variant in self.variants:
                cell = self.speedups.get(workload, {}).get(variant)
                row.append(f"{cell:.3f}" if cell is not None else "FAIL")
            lines.append("| " + " | ".join(row) + " |")
        means = self.geomean_speedups()
        row = ["**geomean**"]
        for variant in self.variants:
            cell = means.get(variant)
            row.append(f"**{cell:.3f}**" if cell is not None else "-")
        lines.append("| " + " | ".join(row) + " |")
        skip_line = self._cycle_skipping_line()
        if skip_line:
            lines.append("")
            lines.append(skip_line)
        if self.failures:
            # Structured failure footer: one line per failed cell with the
            # job identity and a one-line failure summary (the exception
            # line of the traceback), so the report alone explains which
            # cells are FAIL and why.
            lines.append("")
            lines.append(f"{len(self.failures)} job(s) failed:")
            for failure in self.failures:
                lines.append(f"- `{failure['job_id']}` "
                             f"({failure.get('workload', '?')}, "
                             f"{failure.get('variant', '?')}): "
                             f"{_failure_gist(failure.get('error'))}")
        return "\n".join(lines)

    def _cycle_skipping_line(self) -> str:
        """Event-driven simulator summary appended to the markdown table.

        Purely a property of the simulation runs (deterministic, no wall
        times), so it is safe inside the byte-identical artifact: total
        event-free cycles the event-driven loop jumped over and the mean
        fraction of simulated cycles that actually held events.
        """
        skipped = sum(result.stat("skipped_cycles") for result in self.results)
        rates = [result.stat("events_per_cycle") for result in self.results
                 if "events_per_cycle" in result.stats]
        if not skipped or not rates:
            return ""
        return (f"simulator: {skipped:.0f} event-free cycles skipped; "
                f"mean events/cycle {sum(rates) / len(rates):.3f}")

    def to_csv(self) -> str:
        """Speedup table as CSV (one row per workload plus a geomean row)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["workload"] + self.variants)
        for workload in self.workloads:
            writer.writerow([workload] + [
                self.speedups.get(workload, {}).get(variant, "")
                for variant in self.variants])
        means = self.geomean_speedups()
        writer.writerow(["geomean"] + [means.get(v, "") for v in self.variants])
        return buffer.getvalue()

    def to_dict(self) -> dict:
        """Full JSON-serialisable artifact (tables plus every raw result)."""
        return {
            "meta": dict(self.meta),
            "workloads": list(self.workloads),
            "variants": list(self.variants),
            "speedups": {w: dict(v) for w, v in self.speedups.items()},
            "geomean_speedups": self.geomean_speedups(),
            "ipc": {w: dict(v) for w, v in self.ipc.items()},
            "cache_stats": dict(self.cache_stats),
            "failures": list(self.failures),
            "results": [result.to_dict() for result in self.results],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, out_dir: str | Path, stem: str = "sweep") -> dict[str, Path]:
        """Write ``<stem>.md`` / ``<stem>.csv`` / ``<stem>.json`` under ``out_dir``."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths = {
            "markdown": out / f"{stem}.md",
            "csv": out / f"{stem}.csv",
            "json": out / f"{stem}.json",
        }
        paths["markdown"].write_text(self.to_markdown() + "\n")
        paths["csv"].write_text(self.to_csv())
        paths["json"].write_text(self.to_json() + "\n")
        return paths

    @classmethod
    def from_dict(cls, data: dict) -> "SweepReport":
        """Rebuild a report from a saved ``<stem>.json`` artifact."""
        return cls(
            workloads=list(data.get("workloads", [])),
            variants=list(data.get("variants", [])),
            speedups={w: dict(v) for w, v in data.get("speedups", {}).items()},
            ipc={w: dict(v) for w, v in data.get("ipc", {}).items()},
            results=[SimulationResult.from_dict(r) for r in data.get("results", [])],
            failures=list(data.get("failures", [])),
            cache_stats=dict(data.get("cache_stats", {})),
            meta=dict(data.get("meta", {})),
        )


def build_report(job_results, cache_stats: dict[str, int] | None = None,
                 meta: dict | None = None) -> SweepReport:
    """Aggregate runner output into a :class:`SweepReport`.

    ``job_results`` is the list produced by
    :func:`repro.experiments.runner.run_jobs`.  Every workload must have a
    successful baseline run for its speedup row to be computed; variants
    whose baseline failed are reported in ``failures`` instead of silently
    producing nonsense ratios.
    """
    report = SweepReport(cache_stats=dict(cache_stats or {}), meta=dict(meta or {}))
    baselines: dict[str, SimulationResult] = {}
    variant_runs: list[tuple[str, str, SimulationResult]] = []

    for job_result in job_results:
        job = job_result.job
        if job.workload not in report.workloads:
            report.workloads.append(job.workload)
        if not job.is_baseline and job.variant not in report.variants:
            report.variants.append(job.variant)
        if not job_result.ok or job_result.result is None:
            report.failures.append({
                "job_id": job.job_id, "workload": job.workload,
                "variant": job.variant, "error": job_result.error or "unknown"})
            continue
        report.results.append(job_result.result)
        if job.is_baseline:
            baselines[job.workload] = job_result.result
        else:
            variant_runs.append((job.workload, job.variant, job_result.result))
        report.ipc.setdefault(job.workload, {})[job.variant] = job_result.result.ipc

    for workload, variant, result in variant_runs:
        baseline = baselines.get(workload)
        if baseline is None:
            report.failures.append({
                "job_id": f"{workload}__{variant}", "workload": workload,
                "variant": variant, "error": "baseline run missing or failed"})
            continue
        try:
            speedup = result.speedup_over(baseline)
        except ValueError as exc:
            # E.g. a hand-built job list whose baseline ran a different
            # instruction count: record it, keep the rest of the report.
            report.failures.append({
                "job_id": f"{workload}__{variant}", "workload": workload,
                "variant": variant, "error": f"not comparable to baseline: {exc}"})
            continue
        report.speedups.setdefault(workload, {})[variant] = speedup
    return report
