"""Declarative sweep specifications.

A :class:`SweepSpec` describes the paper's evaluation matrix in one value:
which sharing-tracker schemes to compare, which optimisations (move
elimination, SMB) to toggle, which sizing points to visit, and which
workloads to run them on.  :meth:`SweepSpec.expand` turns the spec into a
flat list of :class:`Job` objects -- one ``(workload, CoreConfig)`` pair
per cell of the matrix, plus one shared-nothing *baseline* job per workload
that every speedup in the report is measured against (the shape of the
paper's Figures 7--9).

Scheme names accepted in a spec are the :data:`SCHEME_PRESETS` keys; each
preset fixes the tracker sizing the paper uses for that scheme (e.g. the
32-entry / 3-bit ISRB of Section 6.3) while ``entries`` / ``counter_bits``
on the spec override it for sizing studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pipeline.config import CoreConfig
from repro.pipeline.sampling import SamplingConfig
from repro.workloads import DEFAULT_SUITE, get_workload, workload_registry

#: Paper-default tracker sizing per scheme name.  ``entries``/``counter_bits``
#: of ``None`` mean unlimited/unbounded, matching :class:`TrackerConfig`.
#: ``sizeable`` marks capacity-limited structures the ``entries`` sweep axis
#: applies to; ``counters`` marks schemes whose ``counter_bits`` width is
#: functional.  Overrides on the other schemes are pinned to the preset --
#: the tracker would ignore them, and sweeping would produce distinctly
#: named but identical runs.
SCHEME_PRESETS: dict[str, dict] = {
    "isrb": {"scheme": "isrb", "entries": 32, "counter_bits": 3,
             "sizeable": True, "counters": True},
    "unlimited": {"scheme": "unlimited", "entries": None, "counter_bits": None,
                  "sizeable": False, "counters": False},
    "refcount": {"scheme": "refcount", "entries": None, "counter_bits": 3,
                 "sizeable": False, "counters": True},
    "refcount_checkpoint": {
        "scheme": "refcount_checkpoint", "entries": None, "counter_bits": 3,
        "sizeable": False, "counters": True},
    "rda": {"scheme": "rda", "entries": 32, "counter_bits": None,
            "sizeable": True, "counters": False},
    "mit": {"scheme": "mit", "entries": 32, "counter_bits": None,
            "sizeable": True, "counters": False},
    "matrix": {"scheme": "matrix", "entries": None, "counter_bits": None,
               "sizeable": False, "counters": False},
    "battle": {"scheme": "battle", "entries": None, "counter_bits": None,
               "sizeable": False, "counters": False},
}


def known_schemes() -> list[str]:
    """Scheme names accepted by :class:`SweepSpec`, in a stable order."""
    return list(SCHEME_PRESETS)


@dataclass(frozen=True)
class Job:
    """One runnable ``(workload, config)`` cell of an expanded sweep.

    ``sampling`` switches the job from full-detail trace replay to
    two-speed sampled simulation (``max_ops`` then bounds the *retired*
    instruction count, of which only the detailed windows go through the
    cycle-level model).
    """

    job_id: str
    workload: str
    config: CoreConfig
    max_ops: int
    seed: int
    is_baseline: bool = False
    sampling: SamplingConfig | None = None

    @property
    def variant(self) -> str:
        """Report-column key for this job's configuration."""
        return "baseline" if self.is_baseline else self.config.variant_name()

    @property
    def trace_key(self) -> tuple[str, int, int]:
        """The trace-cache key this job will replay."""
        return (self.workload, self.max_ops, self.seed)


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of one experiment sweep.

    Attributes
    ----------
    schemes:
        Tracker schemes to compare (keys of :data:`SCHEME_PRESETS`).
    workloads:
        Workload names; empty means the full ``DEFAULT_SUITE``.
    move_elim:
        Move-elimination settings to cross in (``(True,)`` reproduces the
        paper's headline configuration; ``(False, True)`` adds an ablation).
    smb:
        Speculative-memory-bypassing settings to cross in.
    entries / counter_bits:
        Optional sizing sweeps.  Empty tuples use each scheme's preset; a
        non-empty tuple overrides the preset for *every* scheme (the
        Section 6.3 sensitivity studies).
    max_ops / seed:
        Trace length and workload seed, shared by every job so all configs
        replay the identical dynamic trace.
    base_config:
        The machine everything is built on (Table 1 by default).
    sample_period / sample_window / sample_warmup:
        ``sample_period`` switches every job of the sweep (baselines
        included, so speedups compare like against like) to two-speed
        sampled simulation with the given period/window/warmup geometry;
        ``None`` (the default) keeps full-detail trace replay.
    sample_tolerance:
        Error-budget sampled simulation: the planner grows the window
        count per workload until the per-window IPC 95% CI relative
        half-width is <= this value (see
        :class:`~repro.pipeline.sampling.SamplingConfig`).  Setting it
        enables sampling even without ``sample_period`` (the default
        period then only sizes the fallback geometry metadata).
    """

    schemes: tuple[str, ...] = ("isrb",)
    workloads: tuple[str, ...] = ()
    move_elim: tuple[bool, ...] = (True,)
    smb: tuple[bool, ...] = (True,)
    entries: tuple[int | None, ...] = ()
    counter_bits: tuple[int | None, ...] = ()
    max_ops: int = 20_000
    seed: int = 1
    base_config: CoreConfig = field(default_factory=CoreConfig)
    sample_period: int | None = None
    sample_window: int = 2_000
    sample_warmup: int = 500
    sample_cooldown: int = 300
    sample_tolerance: float | None = None
    sample_min_windows: int = 5
    sample_max_windows: int = 64

    def __post_init__(self) -> None:
        self.sampling_config()  # validates the sampling geometry early
        if not self.schemes:
            raise ValueError("a sweep needs at least one tracker scheme")
        unknown = [name for name in self.schemes if name not in SCHEME_PRESETS]
        if unknown:
            raise ValueError(
                f"unknown scheme(s) {unknown}; known schemes: {known_schemes()}")
        # Resolver-aware lookup: family workloads (riscv:<path>, fuzz:...,
        # trace:<path>) validate through their resolver, which also checks
        # that backing files exist before any job is launched.
        bad = []
        for name in self.resolved_workloads():
            try:
                get_workload(name)
            except KeyError as exc:
                bad.append(f"{name} ({exc.args[0].split(';')[0]})"
                           if ":" in name else name)
        if bad:
            raise ValueError(
                f"unknown workload(s) {bad}; known workloads: "
                f"{sorted(workload_registry())}")
        if self.max_ops < 1:
            raise ValueError("max_ops must be >= 1")
        if not self.move_elim or not self.smb:
            raise ValueError("move_elim and smb option tuples must be non-empty")

    # -- expansion ------------------------------------------------------------------

    def sampling_config(self) -> SamplingConfig | None:
        """The two-speed sampling geometry of this sweep (``None`` = full detail).

        An error-budget sweep (``sample_tolerance`` set) is sampled even
        without an explicit period: the tolerance picks the geometry.
        """
        if self.sample_period is None and self.sample_tolerance is None:
            return None
        extra = {}
        if self.sample_tolerance is not None:
            extra = {"tolerance": self.sample_tolerance,
                     "min_windows": self.sample_min_windows,
                     "max_windows": self.sample_max_windows}
        return SamplingConfig(
            period=(self.sample_period if self.sample_period is not None
                    else SamplingConfig().period),
            window=self.sample_window,
            warmup=self.sample_warmup,
            cooldown=self.sample_cooldown,
            **extra)

    def resolved_workloads(self) -> tuple[str, ...]:
        """The workloads this sweep runs (spec order, or the default suite)."""
        return self.workloads if self.workloads else tuple(DEFAULT_SUITE)

    def _sizing_points(self, preset: dict) -> list[tuple[int | None, int | None]]:
        entries_axis = (self.entries if self.entries and preset["sizeable"]
                        else (preset["entries"],))
        bits_axis = (self.counter_bits if self.counter_bits and preset["counters"]
                     else (preset["counter_bits"],))
        return [(entries, bits) for entries in entries_axis for bits in bits_axis]

    def variant_configs(self) -> list[CoreConfig]:
        """Every non-baseline configuration of the sweep, in expansion order.

        The ``(move_elim=False, smb=False)`` cell is skipped -- without
        either optimisation no register is ever shared, so the run would be
        cycle-identical to the baseline regardless of tracker scheme.
        """
        configs: list[CoreConfig] = []
        seen: set[str] = set()
        for scheme_name in self.schemes:
            preset = SCHEME_PRESETS[scheme_name]
            for entries, bits in self._sizing_points(preset):
                for use_me in self.move_elim:
                    for use_smb in self.smb:
                        if not use_me and not use_smb:
                            continue
                        config = self.base_config.with_tracker(
                            scheme=preset["scheme"], entries=entries,
                            counter_bits=bits)
                        if use_me:
                            config = config.with_move_elimination()
                        if use_smb:
                            config = config.with_smb()
                        name = config.variant_name()
                        if name not in seen:
                            seen.add(name)
                            configs.append(config)
        return configs

    def expand(self) -> list[Job]:
        """Expand into the job list: baseline first, then every variant, per workload."""
        jobs: list[Job] = []
        variants = self.variant_configs()
        sampling = self.sampling_config()
        for workload in self.resolved_workloads():
            jobs.append(Job(
                job_id=f"{workload}__baseline",
                workload=workload,
                config=self.base_config,
                max_ops=self.max_ops,
                seed=self.seed,
                is_baseline=True,
                sampling=sampling,
            ))
            for config in variants:
                jobs.append(Job(
                    job_id=f"{workload}__{config.variant_name()}",
                    workload=workload,
                    config=config,
                    max_ops=self.max_ops,
                    seed=self.seed,
                    sampling=sampling,
                ))
        return jobs

    def job_count(self) -> int:
        """Number of jobs :meth:`expand` will produce."""
        return len(self.resolved_workloads()) * (1 + len(self.variant_configs()))

    def trace_count(self) -> int:
        """Number of distinct traces the sweep needs (one per workload)."""
        return len(self.resolved_workloads())

    def warm_homogeneous(self) -> bool:
        """Can every job of this sweep share one checkpoint-farm plan?

        True when all variants keep the base machine's warm structure
        (memory hierarchy, BTB, RAS) -- tracker/ME/SMB axes never change
        it, so today's sweeps always qualify; a future axis that resizes
        caches would automatically fall back to independent warming.
        """
        signature = self.base_config.warm_signature()
        return all(config.warm_signature() == signature
                   for config in self.variant_configs())

    def describe(self) -> str:
        """Multi-line human-readable summary used by ``repro sweep``."""
        variants = self.variant_configs()
        lines = [
            f"schemes   : {', '.join(self.schemes)}",
            f"workloads : {', '.join(self.resolved_workloads())}",
            f"variants  : {', '.join(c.variant_name() for c in variants)}",
            f"jobs      : {self.job_count()} "
            f"({self.trace_count()} traces x {1 + len(variants)} configs)",
            f"trace     : max_ops={self.max_ops} seed={self.seed}",
        ]
        sampling = self.sampling_config()
        if sampling is not None:
            if sampling.tolerance is not None:
                lines.append(
                    f"sampling  : error budget +/-{sampling.tolerance * 100:g}% "
                    f"IPC (window={sampling.window} warmup={sampling.warmup} "
                    f"cooldown={sampling.cooldown}, "
                    f"{sampling.min_windows}-{sampling.max_windows} windows)")
            else:
                lines.append(
                    f"sampling  : period={sampling.period} window={sampling.window} "
                    f"warmup={sampling.warmup} cooldown={sampling.cooldown} "
                    f"({sampling.detailed_fraction * 100:.1f}% detailed)")
        return "\n".join(lines)
