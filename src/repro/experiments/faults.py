"""Deterministic fault injection for the sweep scheduler.

Long-running sweeps meet worker loss as the *common* case: an OOM-killed
pool process, a runaway cell that outlives its timeout, a transient
filesystem error, a store append torn by a power cut.  The supervised
scheduler (:mod:`repro.experiments.scheduler`) exists to make all of those
survivable -- and this module exists to prove it, repeatably.

A :class:`FaultPlan` assigns at most one fault to each job, purely as a
function of ``(plan seed, job_id)``: the same plan injects the same faults
into the same cells on every run, on any machine, under any worker count.
The headline invariant (pinned by ``tests/test_faults.py`` and the CI
chaos-smoke step) is that a fault-injected sweep **converges to the same
artifacts as a fault-free run**: every injected fault is survived by a
retry, a worker respawn or a store repair, never by dropping a cell.

Fault kinds
-----------
``crash``
    The worker sends itself a real ``SIGKILL`` mid-job (the OOM-killer
    case).  The supervisor must detect the death, respawn the worker and
    retry the job.
``hang``
    The worker stops making progress past the watchdog timeout (bounded by
    :attr:`FaultPlan.hang_seconds` so a supervision bug degrades to *slow*,
    not *stuck forever*).  The supervisor must terminate the runaway
    process -- leaving no orphan -- and retry.
``raise``
    A :class:`TransientFault` is raised before the job body runs (the
    flaky-infrastructure case).  Retried like a crash, cheaper to inject.
``torn_write``
    The store append for the job's result is torn mid-line (the
    power-cut case).  The runner must repair the store tail and re-append.

Faults fire on the **first attempt only** by default, so a bounded retry
policy always converges; ``every_attempt=True`` makes a fault persistent,
which is how the quarantine path and the orphan-reaping regression test
exercise repeated failure.

In-process degradation: the in-process scheduler backend has no separate
worker to kill or terminate, so ``crash`` and ``hang`` degrade to a
:class:`TransientFault` there (same retry path, same convergence); the
process-pool backend injects the real thing.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass

#: Every fault kind a plan may inject, in canonical order.
FAULT_KINDS: tuple[str, ...] = ("crash", "hang", "raise", "torn_write")


class TransientFault(RuntimeError):
    """An injected infrastructure failure (retryable, never a job bug)."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic per-job fault assignment (see the module docstring).

    ``rate`` is the fraction of jobs that receive a fault; ``kinds``
    restricts which faults are drawn.  Both the *whether* and the *which*
    are hashed from ``(seed, job_id)``, so a plan is reproducible across
    runs, worker counts and machines.

    >>> plan = FaultPlan(seed=7, rate=1.0, kinds=("raise",))
    >>> plan.fault_for("cell__isrb", attempt=1)
    'raise'
    >>> plan.fault_for("cell__isrb", attempt=2) is None  # first attempt only
    True
    """

    seed: int
    kinds: tuple[str, ...] = FAULT_KINDS
    rate: float = 0.3
    every_attempt: bool = False
    #: Upper bound on an injected hang: a missed watchdog means the job
    #: finishes late instead of wedging the suite forever.
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        unknown = [kind for kind in self.kinds if kind not in FAULT_KINDS]
        if unknown:
            raise ValueError(f"unknown fault kind(s) {unknown}; "
                             f"known: {list(FAULT_KINDS)}")
        if not self.kinds:
            raise ValueError("a fault plan needs at least one fault kind")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be within [0, 1]")

    # -- assignment -------------------------------------------------------------------

    def fault_for(self, job_id: str, attempt: int = 1) -> str | None:
        """The fault (if any) this plan injects into ``job_id`` at ``attempt``."""
        if attempt > 1 and not self.every_attempt:
            return None
        digest = hashlib.sha256(f"{self.seed}|{job_id}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        if draw >= self.rate:
            return None
        return self.kinds[int.from_bytes(digest[8:12], "big") % len(self.kinds)]

    def tears_write(self, job_id: str) -> bool:
        """Whether the store append of this job's result is torn (once)."""
        return self.fault_for(job_id, attempt=1) == "torn_write"

    # -- injection --------------------------------------------------------------------

    def trip(self, job_id: str, attempt: int, in_process: bool = False) -> None:
        """Fire the assigned execution-side fault for ``job_id``, if any.

        Called by the scheduler worker wrapper immediately before the job
        body.  ``torn_write`` is a *store-side* fault and never fires here
        (the runner injects it at append time).
        """
        kind = self.fault_for(job_id, attempt)
        if kind is None or kind == "torn_write":
            return
        if in_process and kind in ("crash", "hang"):
            # No separate process to kill; degrade to the retryable kind.
            raise TransientFault(
                f"injected {kind} on {job_id} attempt {attempt} "
                "(in-process backend: degraded to transient)")
        if kind == "crash":
            # A real SIGKILL: no cleanup, no exception, no goodbye -- the
            # exact signature of the OOM killer the supervisor must survive.
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "hang":
            deadline = time.monotonic() + self.hang_seconds
            while time.monotonic() < deadline:
                time.sleep(0.05)
            return  # watchdog missed us; degrade to slow, not stuck
        else:
            raise TransientFault(
                f"injected transient fault on {job_id} attempt {attempt}")
