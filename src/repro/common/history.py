"""Branch history and path history registers.

Both the TAGE branch predictor and the TAGE-like Instruction Distance
predictor of the paper index their tagged components with a mix of the
program counter, the *global branch history* (a shift register of recent
branch outcomes) and the *path history* (a shift register built from recent
branch target addresses).  The front-end must be able to checkpoint and
restore those registers cheaply when a branch is mispredicted, so both
classes expose an explicit checkpoint token.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HistoryCheckpoint:
    """Opaque snapshot of a history register (value + length)."""

    value: int
    length: int


class ShiftHistory:
    """A bounded shift register of single-bit outcomes (global branch history).

    The most recent outcome occupies bit 0.  Only the low ``max_bits`` bits
    are retained, which is all geometric-history predictors ever consume.
    """

    __slots__ = ("_max_bits", "_mask", "_value")

    def __init__(self, max_bits: int = 256) -> None:
        if max_bits < 1:
            raise ValueError(f"history length must be >= 1, got {max_bits}")
        self._max_bits = max_bits
        self._mask = (1 << max_bits) - 1
        self._value = 0

    @property
    def max_bits(self) -> int:
        """Number of outcome bits retained."""
        return self._max_bits

    @property
    def value(self) -> int:
        """The packed history bits (bit 0 is the most recent outcome)."""
        return self._value

    def push(self, taken: bool) -> None:
        """Shift in a new branch outcome."""
        self._value = ((self._value << 1) | int(bool(taken))) & self._mask

    def bits(self, count: int) -> int:
        """Return the ``count`` most recent outcome bits as an integer."""
        if count <= 0:
            return 0
        count = min(count, self._max_bits)
        return self._value & ((1 << count) - 1)

    def checkpoint(self) -> HistoryCheckpoint:
        """Snapshot the register for later restoration."""
        return HistoryCheckpoint(value=self._value, length=self._max_bits)

    def restore(self, snapshot: HistoryCheckpoint) -> None:
        """Restore a snapshot taken with :meth:`checkpoint`."""
        if snapshot.length != self._max_bits:
            raise ValueError("checkpoint was taken with a different history length")
        self._value = snapshot.value & self._mask

    def clear(self) -> None:
        """Forget all recorded outcomes."""
        self._value = 0

    def __repr__(self) -> str:
        return f"ShiftHistory(max_bits={self._max_bits}, value={self._value:#x})"


class PathHistory:
    """A path history register built from low-order bits of branch targets.

    Each update shifts in ``bits_per_branch`` low-order bits of the branch
    target (or PC), as done by TAGE-style predictors.
    """

    __slots__ = ("_max_bits", "_mask", "_bits_per_branch", "_value")

    def __init__(self, max_bits: int = 32, bits_per_branch: int = 2) -> None:
        if max_bits < 1:
            raise ValueError(f"path history length must be >= 1, got {max_bits}")
        if bits_per_branch < 1:
            raise ValueError("bits_per_branch must be >= 1")
        self._max_bits = max_bits
        self._mask = (1 << max_bits) - 1
        self._bits_per_branch = bits_per_branch
        self._value = 0

    @property
    def value(self) -> int:
        """The packed path history bits."""
        return self._value

    @property
    def max_bits(self) -> int:
        """Number of path bits retained."""
        return self._max_bits

    def push(self, address: int) -> None:
        """Shift in the low bits of a branch address."""
        low = address & ((1 << self._bits_per_branch) - 1)
        self._value = ((self._value << self._bits_per_branch) | low) & self._mask

    def bits(self, count: int) -> int:
        """Return the ``count`` most recent path bits as an integer."""
        if count <= 0:
            return 0
        count = min(count, self._max_bits)
        return self._value & ((1 << count) - 1)

    def checkpoint(self) -> HistoryCheckpoint:
        """Snapshot the register for later restoration."""
        return HistoryCheckpoint(value=self._value, length=self._max_bits)

    def restore(self, snapshot: HistoryCheckpoint) -> None:
        """Restore a snapshot taken with :meth:`checkpoint`."""
        if snapshot.length != self._max_bits:
            raise ValueError("checkpoint was taken with a different history length")
        self._value = snapshot.value & self._mask

    def clear(self) -> None:
        """Forget all recorded path bits."""
        self._value = 0

    def __repr__(self) -> str:
        return (f"PathHistory(max_bits={self._max_bits}, "
                f"bits_per_branch={self._bits_per_branch}, value={self._value:#x})")
