"""Folded-XOR hashing helpers for geometric-history predictors.

TAGE-style predictors index each tagged component with a hash of the program
counter, a geometric number of global-history bits and a few path-history
bits.  In hardware this is done with XOR folding; the helpers below model the
same behaviour deterministically so that predictor contents are reproducible
across runs.
"""

from __future__ import annotations

from functools import lru_cache

# The three helpers below are pure functions of their integer arguments and
# sit on the hottest prediction paths (every TAGE component lookup folds the
# history twice).  Loop-dominated workloads revisit the same
# (pc, history, path) tuples for thousands of iterations, so memoisation
# turns most folds into a dict hit without changing any result.


@lru_cache(maxsize=1 << 16)
def fold_bits(value: int, input_bits: int, output_bits: int) -> int:
    """Fold ``input_bits`` of ``value`` down to ``output_bits`` by XOR.

    The value is split into consecutive ``output_bits``-wide chunks which are
    XORed together, mimicking the history folding logic of TAGE.
    """
    if output_bits <= 0:
        return 0
    if input_bits <= 0:
        return 0
    mask = (1 << output_bits) - 1
    value &= (1 << input_bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= output_bits
    return folded & mask


@lru_cache(maxsize=1 << 16)
def mix_hash(pc: int, history: int, history_bits: int, path: int, path_bits: int,
             output_bits: int) -> int:
    """Compute a table index from PC, folded global history and folded path history.

    The PC is shifted right by two (micro-op addresses are at least 4-byte
    aligned in the synthetic ISA) and XOR-mixed with two folded components,
    one of which is additionally rotated by one bit so the two folds do not
    cancel each other for identical inputs.
    """
    if output_bits <= 0:
        return 0
    mask = (1 << output_bits) - 1
    folded_hist = fold_bits(history, history_bits, output_bits)
    folded_path = fold_bits(path, path_bits, output_bits)
    rotated_path = ((folded_path << 1) | (folded_path >> (output_bits - 1))) & mask \
        if output_bits > 1 else folded_path
    pc_low = (pc >> 2) & mask
    pc_high = (pc >> (2 + output_bits)) & mask
    return (pc_low ^ pc_high ^ folded_hist ^ rotated_path) & mask


@lru_cache(maxsize=1 << 16)
def tag_hash(pc: int, history: int, history_bits: int, tag_bits: int) -> int:
    """Compute a partial tag from the PC and folded global history.

    Uses two folds of the history with different widths (``tag_bits`` and
    ``tag_bits - 1``) as in the original TAGE proposal, so that tags differ
    from indices computed over the same inputs.
    """
    if tag_bits <= 0:
        return 0
    mask = (1 << tag_bits) - 1
    fold_a = fold_bits(history, history_bits, tag_bits)
    fold_b = fold_bits(history, history_bits, max(tag_bits - 1, 1)) << 1
    return ((pc >> 2) ^ fold_a ^ fold_b) & mask
