"""Statistics helpers shared by the simulator and the benchmark harness.

The paper reports speedups as geometric means across the benchmark suite and
per-benchmark relative improvements, so the harness needs exactly three
ingredients: geometric means, speedup ratios and a lightweight named-counter
registry (:class:`StatGroup`) that the pipeline uses to expose its internal
event counts (memory traps, eliminated moves, bypassed loads, ...).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Raises
    ------
    ValueError
        If the iterable is empty or contains a non-positive value.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence is undefined")
    log_sum = 0.0
    for value in values:
        if value <= 0.0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        log_sum += math.log(value)
    return math.exp(log_sum / len(values))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of strictly positive values (used for aggregate IPC)."""
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of an empty sequence is undefined")
    inverse_sum = 0.0
    for value in values:
        if value <= 0.0:
            raise ValueError(f"harmonic mean requires positive values, got {value}")
        inverse_sum += 1.0 / value
    return len(values) / inverse_sum


#: Two-sided 95% Student-t critical values for 1..29 degrees of freedom.
#: Beyond that the normal approximation (1.96) is within half a percent.
_T_CRITICAL_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
)


def t_critical_95(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` degrees of freedom.

    Sampled simulation works with a handful of windows, where the normal
    approximation's 1.96 badly understates the interval (the true factor at
    3 degrees of freedom is 3.18); beyond 29 degrees of freedom the normal
    value is returned.

    Raises
    ------
    ValueError
        If ``df`` is less than 1 (no dispersion estimate exists).
    """
    if df < 1:
        raise ValueError("t critical value needs at least 1 degree of freedom")
    if df <= len(_T_CRITICAL_95):
        return _T_CRITICAL_95[df - 1]
    return 1.96


def weighted_mean_std(values: Iterable[float],
                      weights: Iterable[float]) -> tuple[float, float | None]:
    """Weighted mean and (n-1)-corrected weighted sample standard deviation.

    Weights are importance weights (e.g. instructions measured per sampling
    window); with equal weights the result reduces exactly to the ordinary
    sample mean and standard deviation.  The standard deviation is ``None``
    for a single value -- one observation carries no dispersion information,
    and pretending otherwise (a std of 0.0) is precisely the degenerate
    confidence interval this helper exists to prevent.

    Raises
    ------
    ValueError
        If the sequences are empty, differ in length, or any weight is not
        strictly positive.
    """
    values = list(values)
    weights = list(weights)
    if not values:
        raise ValueError("weighted mean of an empty sequence is undefined")
    if len(values) != len(weights):
        raise ValueError(
            f"got {len(values)} values but {len(weights)} weights")
    if any(weight <= 0 for weight in weights):
        raise ValueError("weights must be strictly positive")
    total = float(sum(weights))
    mean = sum(w * v for v, w in zip(values, weights)) / total
    count = len(values)
    if count < 2:
        return mean, None
    variance = (sum(w * (v - mean) ** 2 for v, w in zip(values, weights))
                / total) * (count / (count - 1))
    return mean, math.sqrt(variance)


def speedup(baseline_cycles: float, improved_cycles: float) -> float:
    """Return the speedup of a run taking ``improved_cycles`` over the baseline.

    A value greater than 1.0 means the improved configuration is faster.
    """
    if baseline_cycles <= 0 or improved_cycles <= 0:
        raise ValueError("cycle counts must be positive")
    return baseline_cycles / improved_cycles


def percent_change(baseline: float, improved: float) -> float:
    """Relative change of ``improved`` versus ``baseline`` in percent.

    Positive values mean ``improved`` is larger.  Used for reporting the
    percentage of eliminated moves, reduction in memory traps and so on.
    """
    if baseline == 0:
        return 0.0
    return (improved - baseline) / baseline * 100.0


class StatGroup:
    """A named group of integer/float statistics.

    The pipeline and its subsystems accumulate event counts in a
    :class:`StatGroup` rather than in ad-hoc attributes so the benchmark
    harness can render every run uniformly.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: dict[str, float] = {}

    def add(self, key: str, amount: float = 1.0) -> None:
        """Increment statistic ``key`` by ``amount`` (creating it at zero)."""
        self._values[key] = self._values.get(key, 0.0) + amount

    def set(self, key: str, value: float) -> None:
        """Overwrite statistic ``key``."""
        self._values[key] = value

    def get(self, key: str, default: float = 0.0) -> float:
        """Return statistic ``key`` or ``default`` when absent."""
        return self._values.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __getitem__(self, key: str) -> float:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def as_dict(self) -> dict[str, float]:
        """Return a copy of all statistics."""
        return dict(self._values)

    def merge(self, other: Mapping[str, float]) -> None:
        """Add every statistic from ``other`` into this group."""
        for key, value in other.items():
            self.add(key, value)

    def render(self, indent: str = "  ") -> str:
        """Render the statistics as an aligned text block."""
        if not self._values:
            return f"{self.name}: (empty)"
        width = max(len(key) for key in self._values)
        lines = [f"{self.name}:"]
        for key in sorted(self._values):
            value = self._values[key]
            if float(value).is_integer():
                rendered = f"{int(value)}"
            else:
                rendered = f"{value:.4f}"
            lines.append(f"{indent}{key.ljust(width)} = {rendered}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"StatGroup(name={self.name!r}, entries={len(self._values)})"
