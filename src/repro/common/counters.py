"""Small hardware-style counters.

Two flavours are provided:

* :class:`SaturatingCounter` -- the classic n-bit confidence counter used by
  branch predictors, the Store Sets predictor and the instruction distance
  predictors.  It increments and decrements between 0 and ``2**bits - 1``
  and never wraps.

* :class:`ResettableUpCounter` -- the primitive used by the Inflight Shared
  Register Buffer (ISRB).  The paper is explicit that the ``referenced`` and
  ``committed`` fields "are really up-counters that can be reset, i.e., they
  are never decremented" (Section 4.3.1).  The counter saturates at its
  maximum value; saturation is observable so experiments can study the
  effect of narrow (e.g. 3-bit) fields.
"""

from __future__ import annotations

from dataclasses import dataclass


class SaturatingCounter:
    """An ``bits``-wide saturating up/down counter.

    Parameters
    ----------
    bits:
        Width of the counter in bits.  The counter value is clamped to
        ``[0, 2**bits - 1]``.
    initial:
        Initial value (clamped to the valid range).
    """

    __slots__ = ("_bits", "_max", "_value")

    def __init__(self, bits: int, initial: int = 0) -> None:
        if bits < 1:
            raise ValueError(f"counter width must be >= 1 bit, got {bits}")
        self._bits = bits
        self._max = (1 << bits) - 1
        self._value = min(max(initial, 0), self._max)

    @property
    def bits(self) -> int:
        """Width of the counter in bits."""
        return self._bits

    @property
    def value(self) -> int:
        """Current counter value."""
        return self._value

    @property
    def max_value(self) -> int:
        """Largest representable value (``2**bits - 1``)."""
        return self._max

    def increment(self, amount: int = 1) -> int:
        """Increment by ``amount`` and saturate at the maximum value."""
        self._value = min(self._value + amount, self._max)
        return self._value

    def decrement(self, amount: int = 1) -> int:
        """Decrement by ``amount`` and saturate at zero."""
        self._value = max(self._value - amount, 0)
        return self._value

    def reset(self, value: int = 0) -> None:
        """Force the counter to ``value`` (clamped to the valid range)."""
        self._value = min(max(value, 0), self._max)

    def is_saturated(self) -> bool:
        """Return ``True`` when the counter sits at its maximum value."""
        return self._value == self._max

    def is_zero(self) -> bool:
        """Return ``True`` when the counter is zero."""
        return self._value == 0

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"SaturatingCounter(bits={self._bits}, value={self._value})"


@dataclass
class ResettableUpCounter:
    """An up-counter that saturates and can only be reset, never decremented.

    This mirrors the ``referenced`` / ``committed`` fields of an ISRB entry.
    A width of ``None`` models the paper's "unlimited" (32-bit) comparison
    point where saturation never occurs in practice.

    Attributes
    ----------
    bits:
        Width in bits, or ``None`` for an unbounded counter.
    value:
        Current value.
    overflowed:
        Set to ``True`` the first time an increment would have exceeded the
        maximum representable value.  The simulator uses this to detect when
        a narrow counter loses information (Section 6.3's counter width
        study).
    """

    bits: int | None = None
    value: int = 0
    overflowed: bool = False

    def __post_init__(self) -> None:
        if self.bits is not None and self.bits < 1:
            raise ValueError(f"counter width must be >= 1 bit, got {self.bits}")
        if self.value < 0:
            raise ValueError("counter value cannot be negative")
        if self.bits is not None:
            self.value = min(self.value, self.max_value)

    @property
    def max_value(self) -> int | None:
        """Largest representable value, or ``None`` for unbounded counters."""
        if self.bits is None:
            return None
        return (1 << self.bits) - 1

    def increment(self, amount: int = 1) -> int:
        """Increase the counter, saturating (and flagging overflow) if narrow."""
        if amount < 0:
            raise ValueError("up-counters cannot be decremented")
        new_value = self.value + amount
        limit = self.max_value
        if limit is not None and new_value > limit:
            self.overflowed = True
            new_value = limit
        self.value = new_value
        return self.value

    def reset(self) -> None:
        """Reset the counter to zero and clear the overflow flag."""
        self.value = 0
        self.overflowed = False

    def copy(self) -> "ResettableUpCounter":
        """Return an independent copy (used when checkpointing ISRB state)."""
        clone = ResettableUpCounter(bits=self.bits, value=self.value)
        clone.overflowed = self.overflowed
        return clone

    def __int__(self) -> int:
        return self.value
