"""A fixed-capacity circular buffer.

The reorder buffer, the free list and the load/store queues of the core model
are all circular structures with a head and a tail pointer.  This class keeps
the implementation in one place and exposes the pointer arithmetic the paper
relies on (for instance the ``release_head`` pointer used for lazy register
reclaiming is implemented on top of the same index space).
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

T = TypeVar("T")


class CircularBuffer(Generic[T]):
    """A bounded FIFO with stable entry indices.

    Entries are appended at the tail and popped from the head.  Each entry is
    addressed by a monotonically increasing *sequence index* so that other
    structures (e.g. the instruction distance predictor walking the ROB) can
    hold references that survive unrelated pushes and pops.
    """

    __slots__ = ("_capacity", "_entries", "_head_seq")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: list[T] = []
        self._head_seq = 0

    @property
    def capacity(self) -> int:
        """Maximum number of entries the buffer can hold."""
        return self._capacity

    @property
    def head_seq(self) -> int:
        """Sequence index of the oldest entry currently in the buffer."""
        return self._head_seq

    @property
    def tail_seq(self) -> int:
        """Sequence index one past the youngest entry."""
        return self._head_seq + len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def is_full(self) -> bool:
        """Return ``True`` when no more entries can be appended."""
        return len(self._entries) >= self._capacity

    def free_slots(self) -> int:
        """Number of entries that can still be appended."""
        return self._capacity - len(self._entries)

    def append(self, item: T) -> int:
        """Append ``item`` at the tail and return its sequence index."""
        if self.is_full():
            raise OverflowError("circular buffer is full")
        self._entries.append(item)
        return self.tail_seq - 1

    def pop_head(self) -> T:
        """Remove and return the oldest entry."""
        if not self._entries:
            raise IndexError("pop from an empty circular buffer")
        item = self._entries.pop(0)
        self._head_seq += 1
        return item

    def peek_head(self) -> T:
        """Return the oldest entry without removing it."""
        if not self._entries:
            raise IndexError("peek on an empty circular buffer")
        return self._entries[0]

    def peek_tail(self) -> T:
        """Return the youngest entry without removing it."""
        if not self._entries:
            raise IndexError("peek on an empty circular buffer")
        return self._entries[-1]

    def contains_seq(self, seq: int) -> bool:
        """Return ``True`` if the entry with sequence index ``seq`` is present."""
        return self._head_seq <= seq < self.tail_seq

    def get_seq(self, seq: int) -> T:
        """Return the entry with sequence index ``seq``."""
        if not self.contains_seq(seq):
            raise KeyError(f"sequence index {seq} not in buffer "
                           f"[{self._head_seq}, {self.tail_seq})")
        return self._entries[seq - self._head_seq]

    def truncate_from(self, seq: int) -> list[T]:
        """Drop every entry with sequence index >= ``seq`` and return them.

        Used when the pipeline squashes all instructions younger than a given
        one (memory-order traps, bypass validation failures).
        """
        if seq >= self.tail_seq:
            return []
        start = max(seq, self._head_seq) - self._head_seq
        removed = self._entries[start:]
        del self._entries[start:]
        return removed

    def clear(self) -> None:
        """Remove every entry (the head sequence keeps advancing)."""
        self._head_seq += len(self._entries)
        self._entries.clear()

    def __iter__(self) -> Iterator[T]:
        return iter(self._entries)

    def items(self) -> Iterator[tuple[int, T]]:
        """Iterate over ``(sequence index, entry)`` pairs, oldest first."""
        for offset, entry in enumerate(self._entries):
            yield self._head_seq + offset, entry

    def __repr__(self) -> str:
        return (f"CircularBuffer(capacity={self._capacity}, size={len(self)}, "
                f"head_seq={self._head_seq})")
