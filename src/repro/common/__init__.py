"""Shared low-level utilities used across the register-sharing reproduction.

The :mod:`repro.common` package gathers small, dependency-free building
blocks that several subsystems of the simulator rely on:

* :mod:`repro.common.counters` -- saturating confidence counters and
  resettable up-counters (the primitive the ISRB is built from).
* :mod:`repro.common.circular` -- fixed-capacity circular buffers used for
  the reorder buffer, free list and load/store queues.
* :mod:`repro.common.history` -- global branch history and path history
  registers with cheap checkpoint/restore, shared by the TAGE branch
  predictor and the TAGE-like instruction distance predictor.
* :mod:`repro.common.hashing` -- folded-XOR index and tag hashing helpers
  for geometric-history predictors.
* :mod:`repro.common.statistics` -- geometric means, speedups and a small
  named-statistics registry used by the simulator and the benchmark
  harness.
"""

from repro.common.circular import CircularBuffer
from repro.common.counters import ResettableUpCounter, SaturatingCounter
from repro.common.history import HistoryCheckpoint, PathHistory, ShiftHistory
from repro.common.hashing import fold_bits, mix_hash, tag_hash
from repro.common.statistics import StatGroup, geometric_mean, harmonic_mean, speedup

__all__ = [
    "CircularBuffer",
    "SaturatingCounter",
    "ResettableUpCounter",
    "ShiftHistory",
    "PathHistory",
    "HistoryCheckpoint",
    "fold_bits",
    "mix_hash",
    "tag_hash",
    "geometric_mean",
    "harmonic_mean",
    "speedup",
    "StatGroup",
]
