"""Register renaming substrate.

A conventional renamer (Section 4.1 of the paper) consists of three
structures, all provided here:

* the **Rename Map** -- speculative architectural-to-physical mappings;
* the **Free List** -- a pool of unallocated physical registers, maintained
  both speculatively and as the committed image used to recover from
  squashes taken at the commit stage;
* the **Commit Rename Map** -- the non-speculative mappings, copied into
  the Rename Map on a commit-time pipeline flush.

:class:`~repro.rename.renamer.Renamer` performs the per-micro-op renaming
work, including move elimination and SMB integration with whichever
:class:`~repro.core.tracker.SharingTracker` the configuration selects.
"""

from repro.rename.maps import CommitRenameMap, FreeList, RenameMap
from repro.rename.renamer import RenameOutcome, Renamer

__all__ = [
    "RenameMap",
    "CommitRenameMap",
    "FreeList",
    "Renamer",
    "RenameOutcome",
]
