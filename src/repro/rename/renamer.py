"""The register renamer, including move elimination and SMB integration.

For every micro-op the renamer:

1. looks up the physical registers of the source operands;
2. for an eligible register-to-register move, attempts **move
   elimination**: the destination architectural register is mapped onto the
   source's physical register, provided the sharing tracker accepts one
   more reference (Section 2);
3. for a load with a confident Instruction Distance prediction, attempts
   **speculative memory bypassing**: the predicted producer is located in
   the ROB (through a callback supplied by the pipeline), its physical
   register becomes the load's destination mapping, again subject to the
   sharing tracker (Section 3.2);
4. otherwise allocates a fresh physical register from the free list.

In every case the previous mapping of the destination architectural
register is recorded so the commit stage can hand it to the reclaim logic
(which consults the sharing tracker before returning it to the free list).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.move_elim import MoveEliminationPolicy, MoveEliminationStats
from repro.core.smb import SmbEngine
from repro.core.tracker import SharingTracker
from repro.isa.executor import DynamicOp
from repro.isa.registers import RegClass
from repro.rename.maps import FreeList, RenameMap


@dataclass(frozen=True)
class ProducerInfo:
    """What the pipeline knows about the instruction a load may bypass from."""

    seq: int
    preg: int
    value: int | None
    is_load: bool
    is_committed: bool


@dataclass(slots=True)
class RenameOutcome:
    """Everything the rest of the pipeline needs to know about a renamed micro-op."""

    src_pregs: tuple[int, ...]
    dest_preg: int | None
    old_preg: int | None
    allocated: bool
    eliminated: bool
    bypassed: bool
    bypass_producer: ProducerInfo | None
    bypass_value_matches: bool
    share_recorded: bool = False

    @property
    def shared(self) -> bool:
        """``True`` when the destination mapping references a shared physical register."""
        return self.eliminated or self.bypassed


#: Callback the pipeline provides to locate a bypass producer by sequence number.
ProducerResolver = Callable[[int], ProducerInfo | None]


class _ScratchEntry:
    """Stand-in for an InflightOp when renaming outside the pipeline.

    Starts with the same renaming-outcome defaults as
    :class:`~repro.backend.inflight.InflightOp`; :meth:`Renamer.rename_op`
    uses one to serve its functional interface from the in-place
    implementation.
    """

    __slots__ = ("src_pregs", "dest_preg", "old_preg", "allocated", "eliminated",
                 "bypassed", "share_recorded", "bypass_producer",
                 "bypass_value_matches")

    def __init__(self) -> None:
        self.src_pregs: tuple[int, ...] = ()
        self.dest_preg: int | None = None
        self.old_preg: int | None = None
        self.allocated = False
        self.eliminated = False
        self.bypassed = False
        self.share_recorded = False
        self.bypass_producer: ProducerInfo | None = None
        self.bypass_value_matches = True


class Renamer:
    """Per-micro-op renaming with ME/SMB and a pluggable sharing tracker."""

    def __init__(self, rename_map: RenameMap, int_free_list: FreeList, fp_free_list: FreeList,
                 tracker: SharingTracker, move_policy: MoveEliminationPolicy,
                 smb_engine: SmbEngine | None = None) -> None:
        self.rename_map = rename_map
        self.int_free_list = int_free_list
        self.fp_free_list = fp_free_list
        self.tracker = tracker
        self.move_policy = move_policy
        self.smb_engine = smb_engine
        self.move_stats = MoveEliminationStats()

    # -- helpers ------------------------------------------------------------------

    def free_list_for(self, reg_class: RegClass) -> FreeList:
        """The free list serving ``reg_class``."""
        return self.int_free_list if reg_class is RegClass.INT else self.fp_free_list

    def can_rename(self, op: DynamicOp) -> bool:
        """Cheap resource check: is a physical register available if one is needed?

        Move elimination or SMB may end up not needing the register, but a
        conservative check keeps the rename stage simple (a real renamer
        stalls the same way when the free list runs dry).
        """
        if op.dest is None:
            return True
        return not self.free_list_for(op.dest.reg_class).is_empty()

    # -- main entry points --------------------------------------------------------

    def rename_into(self, entry, op: DynamicOp,
                    resolve_producer: ProducerResolver | None = None,
                    smb_prediction=None,
                    me_candidate: bool | None = None) -> None:
        """Rename one micro-op, writing the outcome into ``entry`` in place.

        ``entry`` is a freshly fetched :class:`~repro.backend.inflight
        .InflightOp` (or any object with the same renaming-outcome
        attributes at their defaults); only the fields that deviate from
        those defaults are written, which is what makes this the pipeline's
        hot path while :meth:`rename_op` remains the allocation-friendly
        functional interface.  ``me_candidate`` lets the caller supply a
        cached :meth:`MoveEliminationPolicy.is_candidate` verdict (the
        candidacy of a static instruction never changes).
        """
        raw_map = self.rename_map.raw()
        src_pregs = entry.src_pregs = tuple([raw_map[flat] for flat in op.src_flats])
        self.move_stats.renamed_instructions += 1

        if op.dest is None:
            return

        # 1. Move elimination.
        if me_candidate is None:
            me_candidate = self.move_policy.is_candidate(op)
        if me_candidate and self._eliminate_into(entry, op, src_pregs):
            return

        # 2. Speculative memory bypassing.
        if smb_prediction is not None \
                and self._bypass_into(entry, op, src_pregs, resolve_producer,
                                      smb_prediction):
            return

        # 3. Conventional allocation from the free list.
        free_list = (self.int_free_list if op.dest.reg_class is RegClass.INT
                     else self.fp_free_list)
        new_preg = free_list.allocate()
        entry.old_preg = self.rename_map.define_flat(op.dest_flat, new_preg)
        entry.dest_preg = new_preg
        entry.allocated = True

    def rename_op(self, op: DynamicOp, history: int = 0, path: int = 0,
                  resolve_producer: ProducerResolver | None = None,
                  smb_prediction=None) -> RenameOutcome:
        """Rename one micro-op and return the resulting mappings.

        Functional wrapper over :meth:`rename_into` (one shared
        implementation): the pipeline writes outcomes straight into its
        in-flight entries, while tests and alternative cores get a
        self-contained :class:`RenameOutcome` value.  ``history`` / ``path``
        are accepted for interface stability; the SMB prediction itself is
        supplied by the pipeline through ``smb_prediction`` so that
        prediction and training use identical state.
        """
        scratch = _ScratchEntry()
        self.rename_into(scratch, op, resolve_producer=resolve_producer,
                         smb_prediction=smb_prediction)
        return RenameOutcome(
            src_pregs=scratch.src_pregs, dest_preg=scratch.dest_preg,
            old_preg=scratch.old_preg, allocated=scratch.allocated,
            eliminated=scratch.eliminated, bypassed=scratch.bypassed,
            bypass_producer=scratch.bypass_producer,
            bypass_value_matches=scratch.bypass_value_matches,
            share_recorded=scratch.share_recorded,
        )

    # -- move elimination ---------------------------------------------------------

    def _eliminate_into(self, entry, op: DynamicOp, src_pregs: tuple[int, ...]) -> bool:
        """Attempt move elimination; returns ``True`` when ``entry`` was renamed."""
        self.move_stats.candidates += 1
        if not self.tracker.supports_move_elimination:
            return False
        source_preg = src_pregs[0]
        if self.rename_map.lookup_flat(op.dest_flat) == source_preg:
            # The destination already maps to the source's register (e.g. a
            # repeated move): the mapping set does not change, so no new
            # reference needs to be recorded.
            self.move_stats.eliminated += 1
            entry.dest_preg = source_preg
            entry.old_preg = source_preg
            entry.eliminated = True
            return True
        granted = self.tracker.try_share(
            source_preg,
            dest_arch=op.dest_flat,
            src_arch=op.src_flats[0],
            memory_bypass=False,
        )
        if not granted:
            self.move_stats.rejected_by_tracker += 1
            return False
        entry.old_preg = self.rename_map.define_flat(op.dest_flat, source_preg)
        self.move_stats.eliminated += 1
        entry.dest_preg = source_preg
        entry.eliminated = True
        entry.share_recorded = True
        return True

    # -- speculative memory bypassing ----------------------------------------------

    def _bypass_into(self, entry, op: DynamicOp, src_pregs: tuple[int, ...],
                     resolve_producer: ProducerResolver | None,
                     smb_prediction) -> bool:
        """Attempt speculative memory bypassing; ``True`` when ``entry`` was renamed."""
        if self.smb_engine is None or resolve_producer is None \
                or not op.is_load or op.dest is None:
            return False
        if not self.tracker.supports_memory_bypass:
            return False
        producer_seq = op.seq - smb_prediction.distance
        if producer_seq < 0:
            self.smb_engine.note_rejection("no_producer")
            return False
        producer = resolve_producer(producer_seq)
        if producer is None:
            self.smb_engine.note_rejection("no_producer")
            return False
        if producer.preg is None or producer.preg < 0:
            self.smb_engine.note_rejection("no_producer")
            return False
        if op.dest.reg_class is not self._preg_class(producer.preg):
            # Bypassing across register classes would need a cross-file copy;
            # treat it as an unusable producer.
            self.smb_engine.note_rejection("no_producer")
            return False
        if self.rename_map.lookup_flat(op.dest_flat) == producer.preg:
            # The destination already maps to the producer's register; no new
            # reference is needed, the bypass is effectively free.
            self.smb_engine.note_bypass(producer.is_load, producer.is_committed)
            entry.dest_preg = producer.preg
            entry.old_preg = producer.preg
            entry.bypassed = True
            entry.bypass_producer = producer
            entry.bypass_value_matches = (producer.value is not None
                                          and producer.value == op.result)
            return True
        granted = self.tracker.try_share(
            producer.preg,
            dest_arch=op.dest_flat,
            src_arch=None,
            memory_bypass=True,
        )
        if not granted:
            self.smb_engine.note_rejection("tracker")
            return False
        entry.old_preg = self.rename_map.define_flat(op.dest_flat, producer.preg)
        self.smb_engine.note_bypass(producer.is_load, producer.is_committed)
        entry.dest_preg = producer.preg
        entry.bypassed = True
        entry.bypass_producer = producer
        entry.bypass_value_matches = (producer.value is not None
                                      and producer.value == op.result)
        entry.share_recorded = True
        return True

    def _preg_class(self, preg: int) -> RegClass:
        """Register class a global physical register number belongs to."""
        return RegClass.INT if self.int_free_list.contains(preg) else RegClass.FP
