"""Rename map, commit rename map and free list.

Physical registers are numbered globally: integer registers occupy
``[0, num_int_pregs)`` and floating-point registers occupy
``[num_int_pregs, num_int_pregs + num_fp_pregs)``.  Architectural registers
use their flat index (:attr:`repro.isa.registers.ArchReg.flat_index`).

Recovery model
--------------
The core model only squashes *at the commit stage* (memory-order traps and
bypass validation failures) -- wrong-path instructions past a mispredicted
branch are never renamed in a trace-driven simulation, so branch recovery
needs no state repair, only its timing cost.  A commit-time squash restores
the Rename Map from the Commit Rename Map and the speculative free list
from the committed free set, exactly the recovery path described in
Section 4.1 for squashes taken at Commit.
"""

from __future__ import annotations

from collections import deque

from repro.isa.registers import NUM_FP_REGS, NUM_INT_REGS, ArchReg, RegClass


class RenameMap:
    """Speculative architectural-to-physical register mappings."""

    __slots__ = ("num_arch_regs", "_map")

    def __init__(self, num_arch_regs: int = NUM_INT_REGS + NUM_FP_REGS) -> None:
        self.num_arch_regs = num_arch_regs
        self._map: list[int] = [-1] * num_arch_regs

    def lookup(self, arch: ArchReg) -> int:
        """Physical register currently mapped to ``arch``."""
        return self._map[arch.flat_index]

    def lookup_flat(self, arch_flat: int) -> int:
        """Physical register currently mapped to the flat architectural index."""
        return self._map[arch_flat]

    def define(self, arch: ArchReg, preg: int) -> int:
        """Map ``arch`` to ``preg``; returns the previous mapping."""
        index = arch.flat_index
        old = self._map[index]
        self._map[index] = preg
        return old

    def define_flat(self, arch_flat: int, preg: int) -> int:
        """Map the flat architectural index to ``preg``; returns the previous mapping."""
        old = self._map[arch_flat]
        self._map[arch_flat] = preg
        return old

    def copy_from(self, other: "RenameMap | CommitRenameMap") -> None:
        """Overwrite all mappings with those of ``other`` (flush recovery).

        The update is in place so that callers holding the :meth:`raw` list
        (the renamer's hot path does) keep seeing current mappings.
        """
        self._map[:] = other.raw()

    def raw(self) -> list[int]:
        """The underlying mapping list (flat architectural index -> preg)."""
        return self._map

    def mapped_registers(self) -> set[int]:
        """The set of physical registers currently referenced by the map."""
        return {preg for preg in self._map if preg >= 0}

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> list[int]:
        """Serialise the mappings (flat architectural index -> preg)."""
        return list(self._map)

    def restore_snapshot(self, snapshot: list[int]) -> None:
        """Overwrite all mappings with a :meth:`to_snapshot` image (in place)."""
        if len(snapshot) != self.num_arch_regs:
            raise ValueError("rename map snapshot size does not match this map")
        self._map[:] = snapshot

    def __repr__(self) -> str:
        return f"RenameMap({self._map})"


class CommitRenameMap(RenameMap):
    """Non-speculative (committed) architectural-to-physical mappings."""

    __slots__ = ()


class FreeList:
    """Free physical registers of one register class, with a committed image.

    The speculative free list is consumed by the renamer; the committed set
    only changes at commit (a register freed by the reclaim logic joins
    both, a register whose allocating instruction commits leaves the
    committed set).  A commit-time flush simply re-derives the speculative
    list from the committed set.
    """

    __slots__ = ("reg_class", "first_preg", "count", "_free", "_committed_free",
                 "allocations", "frees", "empty_stalls")

    def __init__(self, reg_class: RegClass, first_preg: int, count: int,
                 initially_mapped: int) -> None:
        if initially_mapped > count:
            raise ValueError("cannot map more architectural registers than physical registers")
        self.reg_class = reg_class
        self.first_preg = first_preg
        self.count = count
        free = list(range(first_preg + initially_mapped, first_preg + count))
        self._free: deque[int] = deque(free)
        self._committed_free: set[int] = set(free)
        self.allocations = 0
        self.frees = 0
        self.empty_stalls = 0

    # -- speculative side ---------------------------------------------------------

    def available(self) -> int:
        """Number of registers available for speculative allocation."""
        return len(self._free)

    def is_empty(self) -> bool:
        """``True`` when no register can be allocated."""
        return not self._free

    def allocate(self) -> int:
        """Pop a free register for a newly renamed destination."""
        if not self._free:
            self.empty_stalls += 1
            raise IndexError(f"free list for {self.reg_class.value} registers is empty")
        self.allocations += 1
        return self._free.popleft()

    # -- committed side -----------------------------------------------------------

    def committed_available(self) -> int:
        """Number of registers free in the committed image."""
        return len(self._committed_free)

    def on_commit_allocate(self, preg: int) -> None:
        """The instruction that allocated ``preg`` committed: it is no longer free."""
        self._committed_free.discard(preg)

    def release(self, preg: int) -> None:
        """The reclaim logic freed ``preg`` at commit: both images gain it."""
        if preg in self._committed_free:
            raise ValueError(f"physical register {preg} freed twice")
        self._free.append(preg)
        self._committed_free.add(preg)
        self.frees += 1

    def restore_to_committed(self) -> None:
        """Commit-time flush: the speculative list becomes the committed image."""
        self._free = deque(sorted(self._committed_free))

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> dict:
        """Serialise both free images, preserving the speculative allocation order.

        The order of the speculative deque matters: it determines which
        physical register the next rename receives, so restoring it exactly
        is what makes a resumed window bit-identical to a continuing core.
        """
        return {
            "free": list(self._free),
            "committed_free": sorted(self._committed_free),
        }

    def restore_snapshot(self, snapshot: dict) -> None:
        """Overwrite both free images with a :meth:`to_snapshot` image."""
        for preg in snapshot["free"]:
            if not self.contains(preg):
                raise ValueError(
                    f"free-list snapshot register {preg} outside this class's range")
        self._free = deque(snapshot["free"])
        self._committed_free = set(snapshot["committed_free"])

    # -- introspection ------------------------------------------------------------

    def contains(self, preg: int) -> bool:
        """``True`` when ``preg`` belongs to this register class."""
        return self.first_preg <= preg < self.first_preg + self.count

    def committed_free_set(self) -> set[int]:
        """A copy of the committed free set (used by invariant checks in tests)."""
        return set(self._committed_free)

    def speculative_free_set(self) -> set[int]:
        """A copy of the speculative free list contents."""
        return set(self._free)

    def __repr__(self) -> str:
        return (f"FreeList({self.reg_class.value}, free={len(self._free)}/"
                f"{self.count}, committed_free={len(self._committed_free)})")
