"""Instruction Distance predictors (Section 3.1).

The Instruction Distance predictor sits in the front end.  Looked up with
the load's PC, the global branch history and the path history, it predicts
the *distance in committed instructions* between the load and the
instruction that produced the data the load will read.  The renamer
subtracts that distance from the load's sequence number, finds the producer
in the ROB and renames the load's destination onto the producer's physical
register.

Two predictors are implemented:

* :class:`NoSqDistancePredictor` -- the two-table design of NoSQ (Sha et
  al.): one table indexed by the load PC alone, one by a hash of the PC,
  8 bits of global branch history and 8 bits of path history; when both
  hit, the path-indexed table provides the prediction (about 17KB at the
  paper's sizing);
* :class:`TageDistancePredictor` -- the paper's proposal: a TAGE-like
  predictor with a direct-mapped base component and five partially tagged
  components indexed with 2/5/11/27/64 bits of global history mixed with 16
  bits of path history (about 12.2KB), which the paper shows captures more
  SMB potential despite being smaller.

Both predictors only authorise a bypass when the entry's 4-bit confidence
counter is saturated, because a distance misprediction costs a pipeline
flush while simply not predicting costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.hashing import fold_bits, mix_hash, tag_hash


@dataclass(frozen=True)
class DistancePrediction:
    """Result of a distance lookup, carried by the load until commit-time training."""

    distance: int | None
    confident: bool
    provider: int
    provider_index: int
    indices: tuple[int, ...] = ()
    tags: tuple[int, ...] = ()

    @property
    def usable(self) -> bool:
        """``True`` when the prediction is confident enough to attempt a bypass."""
        return self.distance is not None and self.distance > 0 and self.confident


@dataclass
class _DistanceEntry:
    """One predictor entry: partial tag, predicted distance and confidence."""

    tag: int = 0
    distance: int = 0
    confidence: int = 0
    valid: bool = False


def _snapshot_table(table: dict[int, _DistanceEntry]) -> dict:
    """Serialise one sparse predictor table for a snapshot."""
    return {index: [e.tag, e.distance, e.confidence, 1 if e.valid else 0]
            for index, e in table.items()}


def _restore_table(snapshot: dict) -> dict[int, _DistanceEntry]:
    """Rebuild one sparse predictor table from a snapshot."""
    return {
        int(index): _DistanceEntry(tag=tag, distance=distance, confidence=confidence,
                                   valid=bool(valid))
        for index, (tag, distance, confidence, valid) in snapshot.items()
    }


# ---------------------------------------------------------------------------
# NoSQ-style two-table predictor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NoSqDistanceConfig:
    """Geometry of the NoSQ-style predictor (Table 1: 4K + 4K entries, 17KB)."""

    pc_entries: int = 4096
    path_entries: int = 4096
    tag_bits: int = 5
    distance_bits: int = 8
    confidence_bits: int = 4
    history_bits: int = 8
    path_bits: int = 8


class NoSqDistancePredictor:
    """Two-table (PC-indexed + history-hashed) instruction distance predictor."""

    name = "nosq"

    def __init__(self, config: NoSqDistanceConfig | None = None) -> None:
        self.config = config or NoSqDistanceConfig()
        self._pc_table: dict[int, _DistanceEntry] = {}
        self._path_table: dict[int, _DistanceEntry] = {}
        self.lookups = 0
        self.trainings = 0

    # -- indexing -----------------------------------------------------------------

    def _pc_index(self, pc: int) -> tuple[int, int]:
        index = (pc >> 2) % self.config.pc_entries
        tag = ((pc >> 2) // self.config.pc_entries) & ((1 << self.config.tag_bits) - 1)
        return index, tag

    def _path_index(self, pc: int, history: int, path: int) -> tuple[int, int]:
        # Footnote 4 of the paper: XOR 8 bits of global history with 8 bits
        # of path history, then XOR with the load address shifted by 4.
        mixed = fold_bits(history, 64, self.config.history_bits) ^ \
            fold_bits(path, 32, self.config.path_bits)
        hashed = (pc << 4) ^ mixed
        index = (hashed >> 2) % self.config.path_entries
        tag = ((hashed >> 2) // self.config.path_entries) & ((1 << self.config.tag_bits) - 1)
        return index, tag

    # -- prediction ---------------------------------------------------------------

    def predict(self, pc: int, history: int, path: int) -> DistancePrediction:
        """Predict the instruction distance for the load at ``pc``."""
        self.lookups += 1
        pc_index, pc_tag = self._pc_index(pc)
        path_index, path_tag = self._path_index(pc, history, path)
        max_confidence = (1 << self.config.confidence_bits) - 1

        path_entry = self._path_table.get(path_index)
        if path_entry is not None and path_entry.valid and path_entry.tag == path_tag:
            return DistancePrediction(
                distance=path_entry.distance,
                confident=path_entry.confidence >= max_confidence,
                provider=1,
                provider_index=path_index,
                indices=(pc_index, path_index),
                tags=(pc_tag, path_tag),
            )
        pc_entry = self._pc_table.get(pc_index)
        if pc_entry is not None and pc_entry.valid and pc_entry.tag == pc_tag:
            return DistancePrediction(
                distance=pc_entry.distance,
                confident=pc_entry.confidence >= max_confidence,
                provider=0,
                provider_index=pc_index,
                indices=(pc_index, path_index),
                tags=(pc_tag, path_tag),
            )
        return DistancePrediction(
            distance=None,
            confident=False,
            provider=-1,
            provider_index=0,
            indices=(pc_index, path_index),
            tags=(pc_tag, path_tag),
        )

    # -- training -----------------------------------------------------------------

    def train(self, pc: int, history: int, path: int, actual_distance: int | None,
              prediction: DistancePrediction | None = None) -> None:
        """Train with the distance observed at commit (``None`` when no producer was found).

        A confidence counter only grows while the *same* distance keeps being
        observed; any other outcome -- a different distance, or no producer
        at all -- resets it, because a confident-but-wrong prediction costs a
        pipeline flush while not predicting costs nothing (Section 3.1).
        """
        self.trainings += 1
        if prediction is None:
            prediction = self.predict(pc, history, path)
            self.lookups -= 1  # the implicit lookup is bookkeeping, not a real access
        pc_index, path_index = prediction.indices
        pc_tag, path_tag = prediction.tags
        if actual_distance is None:
            # The load had no identified producer: a confident entry must not
            # stay confident or it will keep triggering doomed bypasses.
            for table, index, tag in ((self._pc_table, pc_index, pc_tag),
                                      (self._path_table, path_index, path_tag)):
                entry = table.get(index)
                if entry is not None and entry.valid and entry.tag == tag:
                    entry.confidence = 0
            return
        max_distance = (1 << self.config.distance_bits) - 1
        actual = min(actual_distance, max_distance)
        for table, index, tag in ((self._pc_table, pc_index, pc_tag),
                                  (self._path_table, path_index, path_tag)):
            entry = table.get(index)
            if entry is None or not entry.valid or entry.tag != tag:
                # Allocate on a miss (or replace a conflicting entry).
                table[index] = _DistanceEntry(tag=tag, distance=actual, confidence=0, valid=True)
                continue
            if entry.distance == actual:
                entry.confidence = min(entry.confidence + 1,
                                       (1 << self.config.confidence_bits) - 1)
            else:
                entry.distance = actual
                entry.confidence = 0

    def punish(self, pc: int, history: int, path: int,
               prediction: DistancePrediction | None = None) -> None:
        """A bypass based on this predictor failed validation: clear its confidence."""
        if prediction is None or not prediction.indices:
            prediction = self.predict(pc, history, path)
            self.lookups -= 1
        pc_index, path_index = prediction.indices
        pc_tag, path_tag = prediction.tags
        for table, index, tag in ((self._pc_table, pc_index, pc_tag),
                                  (self._path_table, path_index, path_tag)):
            entry = table.get(index)
            if entry is not None and entry.valid and entry.tag == tag:
                entry.confidence = 0

    def storage_bits(self) -> int:
        """Total predictor storage in bits (about 17KB at the default sizing)."""
        per_entry = self.config.tag_bits + self.config.distance_bits + self.config.confidence_bits
        return (self.config.pc_entries + self.config.path_entries) * per_entry

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> dict:
        """Serialise both tables (statistics excluded)."""
        return {"pc_table": _snapshot_table(self._pc_table),
                "path_table": _snapshot_table(self._path_table)}

    def restore_snapshot(self, snapshot: dict) -> None:
        """Overwrite both tables with a :meth:`to_snapshot` image."""
        self._pc_table = _restore_table(snapshot["pc_table"])
        self._path_table = _restore_table(snapshot["path_table"])


# ---------------------------------------------------------------------------
# TAGE-like predictor (the paper's proposal)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TageDistanceConfig:
    """Geometry of the TAGE-like distance predictor (Section 3.1, about 12.2KB)."""

    base_entries: int = 4096
    base_tag_bits: int = 5
    component_entries: tuple[int, ...] = (512, 512, 256, 128, 128)
    component_tag_bits: tuple[int, ...] = (10, 10, 11, 11, 12)
    component_history_bits: tuple[int, ...] = (2, 5, 11, 27, 64)
    path_bits: int = 16
    distance_bits: int = 8
    confidence_bits: int = 4

    def __post_init__(self) -> None:
        lengths = {len(self.component_entries), len(self.component_tag_bits),
                   len(self.component_history_bits)}
        if len(lengths) != 1:
            raise ValueError("component configuration tuples must have equal lengths")


class TageDistancePredictor:
    """TAGE-like instruction distance predictor (base + 5 tagged components)."""

    name = "tage"

    def __init__(self, config: TageDistanceConfig | None = None) -> None:
        self.config = config or TageDistanceConfig()
        self._base: dict[int, _DistanceEntry] = {}
        self._components: list[dict[int, _DistanceEntry]] = [
            dict() for _ in self.config.component_entries
        ]
        self.lookups = 0
        self.trainings = 0
        self.allocations = 0

    # -- indexing -----------------------------------------------------------------

    def _base_index(self, pc: int) -> tuple[int, int]:
        index = (pc >> 2) % self.config.base_entries
        tag = ((pc >> 2) // self.config.base_entries) & ((1 << self.config.base_tag_bits) - 1)
        return index, tag

    def _component_index(self, comp: int, pc: int, history: int, path: int) -> tuple[int, int]:
        entries = self.config.component_entries[comp]
        history_bits = self.config.component_history_bits[comp]
        tag_bits = self.config.component_tag_bits[comp]
        index_bits = entries.bit_length() - 1
        index = mix_hash(pc, history, history_bits, path, self.config.path_bits, index_bits)
        tag = tag_hash(pc, history, history_bits, tag_bits)
        return index, tag

    # -- prediction ---------------------------------------------------------------

    def predict(self, pc: int, history: int, path: int) -> DistancePrediction:
        """Predict the instruction distance for the load at ``pc``."""
        self.lookups += 1
        max_confidence = (1 << self.config.confidence_bits) - 1
        base_index, base_tag = self._base_index(pc)
        indices: list[int] = [base_index]
        tags: list[int] = [base_tag]
        provider = -1
        provider_index = base_index
        provider_entry: _DistanceEntry | None = None

        for comp in range(len(self._components)):
            index, tag = self._component_index(comp, pc, history, path)
            indices.append(index)
            tags.append(tag)
            entry = self._components[comp].get(index)
            if entry is not None and entry.valid and entry.tag == tag:
                provider = comp
                provider_index = index
                provider_entry = entry

        if provider_entry is None:
            base_entry = self._base.get(base_index)
            if base_entry is not None and base_entry.valid and base_entry.tag == base_tag:
                provider_entry = base_entry
                provider = -1
                provider_index = base_index

        if provider_entry is None:
            return DistancePrediction(
                distance=None, confident=False, provider=-2, provider_index=0,
                indices=tuple(indices), tags=tuple(tags),
            )
        return DistancePrediction(
            distance=provider_entry.distance,
            confident=provider_entry.confidence >= max_confidence,
            provider=provider,
            provider_index=provider_index,
            indices=tuple(indices),
            tags=tuple(tags),
        )

    # -- training -----------------------------------------------------------------

    def train(self, pc: int, history: int, path: int, actual_distance: int | None,
              prediction: DistancePrediction | None = None) -> None:
        """Train with the distance observed at commit (``None`` when no producer was found)."""
        self.trainings += 1
        if prediction is None or not prediction.indices:
            prediction = self.predict(pc, history, path)
            self.lookups -= 1
        if actual_distance is None:
            # No identified producer: a confident provider must lose its
            # confidence, otherwise it keeps authorising doomed bypasses
            # for loads that periodically have no in-window producer.
            self._reset_provider_confidence(prediction)
            return
        max_distance = (1 << self.config.distance_bits) - 1
        actual = min(actual_distance, max_distance)
        max_confidence = (1 << self.config.confidence_bits) - 1

        provider_entry = self._provider_entry(prediction)
        correct = provider_entry is not None and provider_entry.distance == actual
        if provider_entry is not None:
            if correct:
                provider_entry.confidence = min(provider_entry.confidence + 1, max_confidence)
            else:
                provider_entry.distance = actual
                provider_entry.confidence = 0
        else:
            # Nothing predicted for this load yet: seed the base component.
            base_index, base_tag = prediction.indices[0], prediction.tags[0]
            self._base[base_index] = _DistanceEntry(
                tag=base_tag, distance=actual, confidence=0, valid=True)

        # TAGE-style allocation: a wrong provider promotes the pair into a
        # longer-history component so context-dependent distances separate.
        if provider_entry is not None and not correct:
            self._allocate(prediction, actual)

    def _provider_entry(self, prediction: DistancePrediction) -> _DistanceEntry | None:
        if prediction.provider == -2:
            return None
        if prediction.provider == -1:
            entry = self._base.get(prediction.indices[0])
            if entry is not None and entry.valid and entry.tag == prediction.tags[0]:
                return entry
            return None
        component = self._components[prediction.provider]
        entry = component.get(prediction.provider_index)
        if entry is not None and entry.valid and entry.tag == prediction.tags[prediction.provider + 1]:
            return entry
        return None

    def _reset_provider_confidence(self, prediction: DistancePrediction) -> None:
        entry = self._provider_entry(prediction)
        if entry is not None:
            entry.confidence = 0

    def punish(self, pc: int, history: int, path: int,
               prediction: DistancePrediction | None = None) -> None:
        """A bypass based on this predictor failed validation: clear the provider's confidence."""
        if prediction is None or not prediction.indices:
            prediction = self.predict(pc, history, path)
            self.lookups -= 1
        self._reset_provider_confidence(prediction)

    def _allocate(self, prediction: DistancePrediction, actual: int) -> None:
        """Allocate the pair in a component with longer history than the provider."""
        start = prediction.provider + 1 if prediction.provider >= 0 else 0
        for comp in range(start, len(self._components)):
            index = prediction.indices[comp + 1]
            tag = prediction.tags[comp + 1]
            entry = self._components[comp].get(index)
            if entry is None or not entry.valid or entry.confidence == 0:
                self._components[comp][index] = _DistanceEntry(
                    tag=tag, distance=actual, confidence=0, valid=True)
                self.allocations += 1
                return
        # All candidates were confident: age them so a later allocation succeeds.
        for comp in range(start, len(self._components)):
            entry = self._components[comp].get(prediction.indices[comp + 1])
            if entry is not None and entry.confidence > 0:
                entry.confidence -= 1

    def storage_bits(self) -> int:
        """Total predictor storage in bits (about 12.2KB at the default sizing)."""
        config = self.config
        payload = config.distance_bits + config.confidence_bits
        bits = config.base_entries * (config.base_tag_bits + payload)
        for entries, tag_bits in zip(config.component_entries, config.component_tag_bits):
            bits += entries * (tag_bits + payload)
        return bits

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> dict:
        """Serialise the base and tagged components (statistics excluded)."""
        return {"base": _snapshot_table(self._base),
                "components": [_snapshot_table(table) for table in self._components]}

    def restore_snapshot(self, snapshot: dict) -> None:
        """Overwrite the predictor tables with a :meth:`to_snapshot` image."""
        if len(snapshot["components"]) != len(self._components):
            raise ValueError("distance predictor snapshot geometry mismatch")
        self._base = _restore_table(snapshot["base"])
        self._components = [_restore_table(table) for table in snapshot["components"]]


def make_distance_predictor(kind: str, config=None):
    """Instantiate a distance predictor: ``"tage"`` (paper) or ``"nosq"`` (baseline)."""
    kind = kind.lower()
    if kind == "tage":
        return TageDistancePredictor(config)
    if kind == "nosq":
        return NoSqDistancePredictor(config)
    raise ValueError(f"unknown distance predictor kind {kind!r}; expected 'tage' or 'nosq'")
