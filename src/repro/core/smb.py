"""The Speculative Memory Bypassing engine (Section 3).

SMB renames the destination of a load onto the physical register of the
instruction that produced the value the load will read -- the source of an
in-flight store (store-load pair) or an earlier load from the same address
(load-load pair).  Dependents of the load then wake up as soon as the
producer's value is ready instead of waiting for the load-to-use latency or
for store-to-load forwarding, and memory dependences missed by the Store
Sets predictor are satisfied through the register file instead of causing
memory-order traps.

The engine has two halves:

* a **rename-side** half that queries the Instruction Distance predictor
  with the load's PC and the front-end branch/path history and decides
  whether a bypass should be attempted (confidence saturated, distance in
  range, load not blacklisted after an earlier validation failure);
* a **commit-side** half that maintains the Commit-Rename-Map CSN fields
  and the Data Dependency Table, computes the *actual* distance of every
  committed load and trains the predictor with it.

The actual ROB lookup (turning ``load.seq - distance`` into a physical
register) and the register-sharing request are performed by the renamer,
which owns those structures; the engine records the outcome through the
``note_*`` methods so all Figure 6 statistics come from one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ddt import CommitCsnTable, DataDependencyTable, DdtConfig
from repro.core.distance import (
    DistancePrediction,
    NoSqDistanceConfig,
    TageDistanceConfig,
    make_distance_predictor,
)
from repro.isa.executor import DynamicOp


@dataclass(frozen=True)
class SmbConfig:
    """Configuration of speculative memory bypassing.

    Attributes
    ----------
    enabled:
        Master switch.
    predictor:
        ``"tage"`` for the paper's TAGE-like Instruction Distance predictor
        or ``"nosq"`` for the two-table NoSQ-style baseline.
    allow_load_load:
        Also bypass load-load pairs (Section 3's generalisation); disabling
        this reproduces the store-only ablation of Section 6.2.
    bypass_from_committed:
        Allow bypassing from instructions that have committed but whose ROB
        entries have not been reclaimed yet (Figure 6c's lazy reclaim).
    max_distance:
        Largest predictable distance; the paper notes the distance cannot
        exceed the ROB size plus the instructions in flight to Dispatch
        (about 256 for the Table 1 machine).
    ddt:
        Geometry of the Data Dependency Table.
    suppress_repeat_failures:
        After a validation failure, never bypass the same dynamic load
        again (prevents flush livelock on re-execution).
    """

    enabled: bool = True
    predictor: str = "tage"
    allow_load_load: bool = True
    bypass_from_committed: bool = False
    max_distance: int = 256
    ddt: DdtConfig = field(default_factory=DdtConfig)
    suppress_repeat_failures: bool = True


@dataclass
class SmbStats:
    """Counters behind Figures 6a/6b/6c."""

    loads_seen: int = 0
    predictions_usable: int = 0
    bypasses_store_load: int = 0
    bypasses_load_load: int = 0
    bypasses_from_committed: int = 0
    rejected_no_producer: int = 0
    rejected_tracker: int = 0
    rejected_out_of_reach: int = 0
    validation_successes: int = 0
    validation_failures: int = 0
    distance_correct: int = 0
    distance_incorrect: int = 0
    loads_trained: int = 0
    loads_without_producer: int = 0

    @property
    def bypasses_total(self) -> int:
        """Total number of loads whose destination was bypassed."""
        return (self.bypasses_store_load + self.bypasses_load_load
                + self.bypasses_from_committed)

    def as_dict(self) -> dict[str, int]:
        """Return the statistics as a plain dictionary."""
        return {
            "smb_loads_seen": self.loads_seen,
            "smb_predictions_usable": self.predictions_usable,
            "smb_bypasses_store_load": self.bypasses_store_load,
            "smb_bypasses_load_load": self.bypasses_load_load,
            "smb_bypasses_from_committed": self.bypasses_from_committed,
            "smb_bypasses_total": self.bypasses_total,
            "smb_rejected_no_producer": self.rejected_no_producer,
            "smb_rejected_tracker": self.rejected_tracker,
            "smb_rejected_out_of_reach": self.rejected_out_of_reach,
            "smb_validation_successes": self.validation_successes,
            "smb_validation_failures": self.validation_failures,
            "smb_distance_correct": self.distance_correct,
            "smb_distance_incorrect": self.distance_incorrect,
            "smb_loads_trained": self.loads_trained,
            "smb_loads_without_producer": self.loads_without_producer,
        }


class SmbEngine:
    """Prediction, training and accounting for speculative memory bypassing."""

    def __init__(self, config: SmbConfig | None = None, num_arch_regs: int = 32,
                 predictor_config: TageDistanceConfig | NoSqDistanceConfig | None = None) -> None:
        self.config = config or SmbConfig()
        self.predictor = make_distance_predictor(self.config.predictor, predictor_config)
        self.ddt = DataDependencyTable(self.config.ddt)
        self.csn_table = CommitCsnTable(num_arch_regs)
        self.stats = SmbStats()
        self._blacklisted_seqs: set[int] = set()

    # -- rename-side --------------------------------------------------------------

    def predict(self, op: DynamicOp, history: int, path: int) -> DistancePrediction | None:
        """Query the distance predictor for a load; ``None`` when SMB should not be attempted."""
        if not self.config.enabled or not op.is_load:
            return None
        self.stats.loads_seen += 1
        if self.config.suppress_repeat_failures and op.seq in self._blacklisted_seqs:
            return None
        prediction = self.predictor.predict(op.pc, history, path)
        if not prediction.usable or prediction.distance > self.config.max_distance:
            return None
        self.stats.predictions_usable += 1
        return prediction

    def note_bypass(self, producer_is_load: bool, producer_committed: bool) -> None:
        """Record a successful bypass, classified as in Figure 6."""
        if producer_committed:
            self.stats.bypasses_from_committed += 1
        elif producer_is_load:
            self.stats.bypasses_load_load += 1
        else:
            self.stats.bypasses_store_load += 1

    def note_rejection(self, reason: str) -> None:
        """Record a bypass attempt that could not be completed.

        ``reason`` is one of ``"no_producer"`` (the predicted distance does
        not name a register-producing, reachable instruction), ``"tracker"``
        (the sharing tracker is full) or ``"out_of_reach"`` (the producer
        left the window and committed-instruction bypassing is disabled).
        """
        if reason == "no_producer":
            self.stats.rejected_no_producer += 1
        elif reason == "tracker":
            self.stats.rejected_tracker += 1
        elif reason == "out_of_reach":
            self.stats.rejected_out_of_reach += 1
        else:
            raise ValueError(f"unknown SMB rejection reason {reason!r}")

    def note_validation(self, op: DynamicOp, success: bool, history: int = 0, path: int = 0,
                        prediction: DistancePrediction | None = None) -> None:
        """Record the writeback-time validation outcome of a bypassed load.

        A failure also clears the confidence of the predictor entry that
        authorised the bypass -- a distance misprediction costs a pipeline
        flush, so the predictor must re-earn its confidence (Section 3.1).
        """
        if success:
            self.stats.validation_successes += 1
        else:
            self.stats.validation_failures += 1
            self.predictor.punish(op.pc, history, path, prediction)
            if self.config.suppress_repeat_failures:
                self._blacklisted_seqs.add(op.seq)

    def is_blacklisted(self, seq: int) -> bool:
        """``True`` when this dynamic load already failed validation once."""
        return seq in self._blacklisted_seqs

    # -- commit-side --------------------------------------------------------------

    def train_commit(self, op: DynamicOp, csn: int, history: int, path: int,
                     prediction: DistancePrediction | None = None) -> None:
        """Update CSN / DDT state for a committing micro-op and train the predictor."""
        if not self.config.enabled:
            return
        if op.is_store and op.mem_addr is not None and op.srcs:
            data_arch_flat = op.src_flats[0]
            producer = self.csn_table.producer_of(data_arch_flat)
            if producer is not None:
                self.ddt.update(op.mem_addr, producer)
        if op.is_load and op.mem_addr is not None:
            recorded = self.ddt.lookup(op.mem_addr)
            actual = csn - recorded if recorded is not None else None
            if actual is not None and actual <= 0:
                actual = None
            self.stats.loads_trained += 1
            if actual is None:
                self.stats.loads_without_producer += 1
            elif prediction is not None and prediction.usable:
                if prediction.distance == actual:
                    self.stats.distance_correct += 1
                else:
                    self.stats.distance_incorrect += 1
            self.predictor.train(op.pc, history, path, actual, prediction)
            if self.config.allow_load_load:
                # The load's own destination becomes the closest producer of
                # this address, enabling load-load bypassing.
                self.ddt.update(op.mem_addr, csn)
        if op.writes_register:
            self.csn_table.define(op.dest_flat, csn)

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> dict:
        """Serialise the distance predictor, the DDT and the CSN table.

        The validation-failure blacklist is keyed by *trace sequence
        number* and is therefore window-local: it is intentionally dropped,
        just like the Store Sets LFST.  CSNs are absolute across windows
        (the pipeline adds a commit base), so DDT contents stay meaningful
        after a restore.  Statistics are not part of the snapshot.
        """
        return {
            "predictor": self.predictor.to_snapshot(),
            "ddt": self.ddt.to_snapshot(),
            "csn_table": self.csn_table.to_snapshot(),
        }

    def restore_snapshot(self, snapshot: dict) -> None:
        """Overwrite the trained state with a :meth:`to_snapshot` image."""
        self.predictor.restore_snapshot(snapshot["predictor"])
        self.ddt.restore_snapshot(snapshot["ddt"])
        self.csn_table.restore_snapshot(snapshot["csn_table"])
        self._blacklisted_seqs = set()

    # -- reporting ----------------------------------------------------------------

    def storage_bits(self) -> int:
        """Predictor plus DDT storage in bits (the ~21KB figure of Section 3.1)."""
        return self.predictor.storage_bits() + self.ddt.storage_bits()

    def stats_dict(self) -> dict[str, int]:
        """All SMB counters as a dictionary (merged into the simulation statistics)."""
        return self.stats.as_dict()
