"""The Register Duplicate Array (RDA) of Sundar et al. (Apple patent).

Like the ISRB, the RDA is a small fully-associative structure whose entries
are allocated on demand when a register acquires more than one sharer, and
it is not limited to move elimination.  The difference is in how it is made
recoverable: each entry holds a single reference counter, and to keep the
checkpointed copies consistent *every* checkpoint must be updated whenever a
tracked mapping retires ("committing a mapping relating to a tracked
physical register requires decrementing up to n counters, with n the number
of checkpoints" -- Section 4.2).

Functionally the RDA resolves sharing exactly like a capacity-limited ISRB;
this class therefore reuses that machinery and overrides the cost model:

* per-entry storage is a register tag plus a *single* counter;
* per-checkpoint storage is one counter per entry (same as the ISRB);
* every retirement of a tracked mapping costs ``live checkpoints`` extra
  counter updates, which the class counts so experiments can report the
  update-port pressure the paper objects to.
"""

from __future__ import annotations

from repro.core.isrb import InflightSharedRegisterBuffer
from repro.core.tracker import ReclaimDecision, TrackerConfig


class RegisterDuplicateArray(InflightSharedRegisterBuffer):
    """A capacity-limited sharing tracker with RDA-style checkpoint maintenance costs."""

    name = "rda"
    supports_memory_bypass = True
    supports_move_elimination = True
    checkpoint_recovery = True

    def __init__(self, config: TrackerConfig | None = None) -> None:
        super().__init__(config or TrackerConfig(scheme="rda", entries=32, counter_bits=3))
        #: Number of checkpoint-copy counter updates forced by retiring mappings.
        self.checkpoint_update_operations = 0

    def reclaim(self, preg: int, arch_reg: int) -> ReclaimDecision:
        """Reclaim check; additionally accounts for the per-checkpoint update cost."""
        if self.is_tracked(preg):
            # All live checkpoints must observe the retirement (the cost the
            # paper's Section 4.2 highlights).  The provisioned checkpoint
            # count is used when no explicit checkpoints are live.
            live = self.live_checkpoints or self.config.checkpoints
            self.checkpoint_update_operations += live
        return super().reclaim(preg, arch_reg)

    def storage_bits(self) -> int:
        """Per entry: a physical register tag plus a single reference counter."""
        entries = self.capacity if self.capacity is not None else self.config.num_phys_regs
        counter_bits = self.config.counter_bits if self.config.counter_bits is not None else 32
        tag_bits = max((self.config.num_phys_regs - 1).bit_length(), 1)
        return entries * (tag_bits + counter_bits)
