"""The Data Dependency Table (DDT) and commit-side CSN tracking (Section 3.1).

The Instruction Distance predictor is trained entirely at commit, using two
structures:

* the **Commit Rename Map CSN fields** (:class:`CommitCsnTable`): every
  committing register-writing instruction writes its Commit Sequence
  Number (CSN) into the entry of its architectural destination register;
* the **Data Dependency Table** (:class:`DataDependencyTable`): when a
  store commits it reads the CSN of the instruction that produced its data
  from the CSN table and writes it into the DDT entry indexed by the
  store's virtual address.  When a load commits it reads that entry; the
  difference between the load's CSN and the recorded CSN is the
  *instruction distance* used to train the predictor.  To generalise SMB to
  load-load pairs the load then writes its own CSN into the entry.

The paper uses a 16K-entry DDT as the primary design point and shows that a
1K-entry, 5-bit-tag DDT loses almost nothing (Section 3.1); both are
configurations of :class:`DataDependencyTable` (``entries=None`` gives the
idealised unlimited table).
"""

from __future__ import annotations

from dataclasses import dataclass


class CommitCsnTable:
    """Commit Sequence Numbers of the most recent committed definition of each register."""

    def __init__(self, num_arch_regs: int = 32) -> None:
        self.num_arch_regs = num_arch_regs
        self._csn: list[int | None] = [None] * num_arch_regs

    def define(self, arch_flat: int, csn: int) -> None:
        """Record that the instruction with CSN ``csn`` defined ``arch_flat``."""
        self._csn[arch_flat] = csn

    def producer_of(self, arch_flat: int) -> int | None:
        """CSN of the last committed definition of ``arch_flat`` (``None`` if never defined)."""
        return self._csn[arch_flat]

    def reset(self) -> None:
        """Forget all definitions (used by tests)."""
        self._csn = [None] * self.num_arch_regs

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> list:
        """Serialise the per-register CSNs (``None`` for never-defined registers)."""
        return list(self._csn)

    def restore_snapshot(self, snapshot: list) -> None:
        """Overwrite the CSNs with a :meth:`to_snapshot` image."""
        if len(snapshot) != self.num_arch_regs:
            raise ValueError("CSN table snapshot size does not match this table")
        self._csn = list(snapshot)


@dataclass(frozen=True)
class DdtConfig:
    """Geometry of the Data Dependency Table.

    ``entries=None`` models the unlimited DDT; otherwise the table is
    direct-mapped on the word address with a ``tag_bits``-wide partial tag,
    as in the paper's 1K-entry / 5-bit-tag cost-reduced design point.
    """

    entries: int | None = 16384
    tag_bits: int = 14

    def __post_init__(self) -> None:
        if self.entries is not None and self.entries <= 0:
            raise ValueError("DDT entry count must be positive (or None for unlimited)")
        if self.tag_bits < 0:
            raise ValueError("tag_bits must be >= 0")


class DataDependencyTable:
    """Virtual-address-indexed table of producer CSNs."""

    def __init__(self, config: DdtConfig | None = None) -> None:
        self.config = config or DdtConfig()
        # Unlimited: a plain dict keyed by word address.
        self._unlimited: dict[int, int] = {}
        # Limited: index -> (tag, csn).
        self._table: dict[int, tuple[int, int]] = {}
        self.updates = 0
        self.lookups = 0
        self.hits = 0
        self.tag_mismatches = 0
        self.conflict_evictions = 0

    def _locate(self, address: int) -> tuple[int, int]:
        word = address >> 3
        index = word % self.config.entries
        tag = (word // self.config.entries) & ((1 << self.config.tag_bits) - 1)
        return index, tag

    def update(self, address: int, csn: int) -> None:
        """Record ``csn`` as the producer of the value at ``address``."""
        self.updates += 1
        if self.config.entries is None:
            self._unlimited[address >> 3] = csn
            return
        index, tag = self._locate(address)
        previous = self._table.get(index)
        if previous is not None and previous[0] != tag:
            self.conflict_evictions += 1
        self._table[index] = (tag, csn)

    def lookup(self, address: int) -> int | None:
        """Return the recorded producer CSN for ``address`` (``None`` on a miss)."""
        self.lookups += 1
        if self.config.entries is None:
            csn = self._unlimited.get(address >> 3)
            if csn is not None:
                self.hits += 1
            return csn
        index, tag = self._locate(address)
        entry = self._table.get(index)
        if entry is None:
            return None
        entry_tag, csn = entry
        if entry_tag != tag:
            self.tag_mismatches += 1
            return None
        self.hits += 1
        return csn

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> dict:
        """Serialise the table contents (statistics excluded)."""
        return {
            "unlimited": dict(self._unlimited),
            "table": {index: list(entry) for index, entry in self._table.items()},
        }

    def restore_snapshot(self, snapshot: dict) -> None:
        """Overwrite the table contents with a :meth:`to_snapshot` image."""
        self._unlimited = {int(word): csn for word, csn in snapshot["unlimited"].items()}
        self._table = {int(index): (tag, csn)
                       for index, (tag, csn) in snapshot["table"].items()}

    def storage_bits(self, csn_bits: int = 8, address_bits: int = 64) -> int:
        """Approximate storage cost in bits.

        The paper charges the unlimited/16K design with full virtual
        addresses (156KB) and the 1K-entry design with a 5-bit tag plus the
        64-bit address (8.6KB); here the cost is ``entries x (tag + csn)``
        for tagged tables and ``entries x (address + csn)`` for the
        untagged 16K-entry base design.
        """
        if self.config.entries is None:
            return len(self._unlimited) * (address_bits + csn_bits)
        per_entry = (self.config.tag_bits + csn_bits) if self.config.tag_bits \
            else (address_bits + csn_bits)
        return self.config.entries * per_entry

    def __repr__(self) -> str:
        entries = "unlimited" if self.config.entries is None else str(self.config.entries)
        return f"DataDependencyTable(entries={entries}, tag_bits={self.config.tag_bits})"
