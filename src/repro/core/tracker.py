"""Common interface and cost model for register reference-counting schemes.

Register sharing breaks the classic invariant that committing an
instruction frees the physical register previously mapped to its
architectural destination.  Every scheme studied by the paper therefore has
to answer the same three questions, which form the
:class:`SharingTracker` interface used by the renamer and the commit stage:

* ``try_share(preg, ...)`` -- may one more in-flight instruction reference
  this physical register (move elimination or SMB)?  Schemes with limited
  capacity (ISRB, MIT, RDA) may refuse, in which case the optimisation is
  simply not performed for that instruction.
* ``reclaim(preg, arch_reg)`` -- a committing instruction overwrites a
  mapping that pointed to ``preg``; may the register be returned to the
  free list now?
* ``flush_to_committed()`` -- the pipeline squashes every in-flight
  instruction (memory-order trap or bypass validation failure at commit);
  the tracker must fall back to a state consistent with the committed
  machine state and report any register whose reclaim had been deferred on
  behalf of a now-squashed sharer.

In addition every scheme exposes a *cost model*: storage bits, per-checkpoint
bits and the branch-misprediction recovery latency in cycles.  The paper's
argument is precisely about these costs -- the ISRB is small, checkpointable
and recovers in a single cycle, whereas per-register counters need a
sequential walk of the squashed instructions.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field


class ReclaimDecision(enum.Enum):
    """Outcome of a reclaim check for a physical register."""

    FREE = "free"
    KEEP = "keep"


@dataclass(frozen=True)
class TrackerConfig:
    """Configuration shared by all sharing-tracker schemes.

    Attributes
    ----------
    scheme:
        One of ``"isrb"``, ``"unlimited"``, ``"refcount"``,
        ``"refcount_checkpoint"``, ``"rda"``, ``"mit"``, ``"matrix"`` or
        ``"battle"``.
    entries:
        Capacity of the tracking structure for limited schemes (ISRB, MIT,
        RDA).  ``None`` means unlimited.
    counter_bits:
        Width of the ``referenced`` / ``committed`` fields.  ``None`` means
        unbounded counters (the paper's 32-bit comparison point).
    checkpoints:
        Number of in-flight checkpoints provisioned (for the checkpoint
        storage figures of Section 4.3.3).
    num_phys_regs:
        Total number of physical registers (used for storage accounting of
        per-register schemes).
    num_arch_regs:
        Number of architectural registers (used by the MIT bit-vectors).
    rob_entries:
        Reorder buffer size (used by the Roth matrix storage model).
    """

    scheme: str = "isrb"
    entries: int | None = 32
    counter_bits: int | None = 3
    checkpoints: int = 8
    num_phys_regs: int = 512
    num_arch_regs: int = 32
    rob_entries: int = 192


@dataclass
class TrackerStats:
    """Event counters every tracker keeps."""

    share_requests: int = 0
    shares_granted: int = 0
    shares_rejected_full: int = 0
    shares_rejected_saturated: int = 0
    shares_rejected_unsupported: int = 0
    reclaim_checks: int = 0
    reclaim_deferred: int = 0
    entries_freed: int = 0
    flush_recoveries: int = 0
    registers_freed_on_flush: int = 0
    peak_occupancy: int = 0

    def as_dict(self) -> dict[str, int]:
        """Return the statistics as a plain dictionary."""
        return {
            "share_requests": self.share_requests,
            "shares_granted": self.shares_granted,
            "shares_rejected_full": self.shares_rejected_full,
            "shares_rejected_saturated": self.shares_rejected_saturated,
            "shares_rejected_unsupported": self.shares_rejected_unsupported,
            "reclaim_checks": self.reclaim_checks,
            "reclaim_deferred": self.reclaim_deferred,
            "entries_freed": self.entries_freed,
            "flush_recoveries": self.flush_recoveries,
            "registers_freed_on_flush": self.registers_freed_on_flush,
            "peak_occupancy": self.peak_occupancy,
        }


class SharingTracker(ABC):
    """Abstract register reference-counting scheme."""

    #: Human-readable scheme name.
    name: str = "abstract"
    #: Whether the scheme can track SMB sharing (the MIT cannot).
    supports_memory_bypass: bool = True
    #: Whether the scheme can track move-elimination sharing.
    supports_move_elimination: bool = True
    #: Whether recovery is achieved by restoring checkpoints (single cycle)
    #: rather than walking the squashed instructions.
    checkpoint_recovery: bool = True

    def __init__(self, config: TrackerConfig) -> None:
        self.config = config
        self.stats = TrackerStats()

    # -- sharing ------------------------------------------------------------------

    @abstractmethod
    def try_share(self, preg: int, *, dest_arch: int, src_arch: int | None = None,
                  memory_bypass: bool = False) -> bool:
        """Request one more reference to ``preg`` on behalf of a renamed instruction.

        ``dest_arch``/``src_arch`` are flat architectural register indices
        (the MIT is the only scheme that uses them).  ``memory_bypass`` is
        ``True`` for SMB and ``False`` for move elimination.  Returns
        ``True`` when the reference was recorded; ``False`` means the
        optimisation must be aborted for this instruction.
        """

    @abstractmethod
    def on_share_commit(self, preg: int) -> None:
        """A sharing (bypassing/eliminated) instruction referencing ``preg`` committed."""

    @abstractmethod
    def reclaim(self, preg: int, arch_reg: int) -> ReclaimDecision:
        """A committing instruction overwrites a mapping of ``arch_reg`` that held ``preg``."""

    @abstractmethod
    def flush_to_committed(self) -> list[int]:
        """Squash all in-flight state; return physical registers that become free."""

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> dict:
        """Serialise the tracker's live entries (drained-pipeline state).

        Snapshots are taken at detailed-window boundaries with no
        instruction in flight, so speculative state (branch checkpoints,
        in-flight sharers) is empty by construction; only the committed
        tracking entries -- the ones whose deferred reclaims must survive
        the window gap -- are captured.  Statistics are not included.
        """
        raise NotImplementedError(
            f"tracker scheme {self.name!r} does not implement snapshots")

    def restore_snapshot(self, snapshot: dict) -> None:
        """Overwrite the live entries with a :meth:`to_snapshot` image."""
        raise NotImplementedError(
            f"tracker scheme {self.name!r} does not implement snapshots")

    # -- introspection ------------------------------------------------------------

    @abstractmethod
    def is_tracked(self, preg: int) -> bool:
        """Return ``True`` while ``preg`` has an active tracking entry."""

    @abstractmethod
    def occupancy(self) -> int:
        """Number of live tracking entries."""

    @abstractmethod
    def storage_bits(self) -> int:
        """Storage required by the main structure, in bits."""

    @abstractmethod
    def checkpoint_bits(self) -> int:
        """Storage required per additional checkpoint, in bits."""

    def total_checkpoint_bits(self) -> int:
        """Storage required by all provisioned checkpoints, in bits."""
        return self.checkpoint_bits() * self.config.checkpoints

    def recovery_cycles(self, squashed_instructions: int, walk_width: int = 8) -> int:
        """Branch-misprediction recovery latency added by this scheme, in cycles.

        Checkpoint-based schemes repair their state in a single cycle
        (Section 4.3.1); walk-based schemes must visit every squashed
        instruction, ``walk_width`` per cycle (Section 4.2).
        """
        if self.checkpoint_recovery:
            return 1
        if squashed_instructions <= 0:
            return 0
        return -(-squashed_instructions // walk_width)  # ceiling division

    def _note_occupancy(self) -> None:
        """Update the peak-occupancy statistic (call after any allocation)."""
        occupancy = self.occupancy()
        if occupancy > self.stats.peak_occupancy:
            self.stats.peak_occupancy = occupancy

    def __repr__(self) -> str:
        return f"{type(self).__name__}(entries={self.config.entries}, occupancy={self.occupancy()})"


def make_tracker(config: TrackerConfig) -> SharingTracker:
    """Instantiate the sharing tracker selected by ``config.scheme``."""
    # Imported here to avoid circular imports between tracker implementations.
    from repro.core.isrb import InflightSharedRegisterBuffer
    from repro.core.matrix import BattleMatrixTracker, RothMatrixTracker
    from repro.core.mit import MultipleInstantiationTable
    from repro.core.rda import RegisterDuplicateArray
    from repro.core.refcount import (
        CheckpointedReferenceCounterTracker,
        ReferenceCounterTracker,
    )

    scheme = config.scheme.lower()
    if scheme == "isrb":
        return InflightSharedRegisterBuffer(config)
    if scheme == "unlimited":
        unlimited = TrackerConfig(
            scheme="unlimited",
            entries=None,
            counter_bits=None,
            checkpoints=config.checkpoints,
            num_phys_regs=config.num_phys_regs,
            num_arch_regs=config.num_arch_regs,
            rob_entries=config.rob_entries,
        )
        return InflightSharedRegisterBuffer(unlimited)
    if scheme == "refcount":
        return ReferenceCounterTracker(config)
    if scheme == "refcount_checkpoint":
        return CheckpointedReferenceCounterTracker(config)
    if scheme == "rda":
        return RegisterDuplicateArray(config)
    if scheme == "mit":
        return MultipleInstantiationTable(config)
    if scheme == "matrix":
        return RothMatrixTracker(config)
    if scheme == "battle":
        return BattleMatrixTracker(config)
    raise ValueError(
        f"unknown sharing tracker scheme {config.scheme!r}; expected one of "
        "'isrb', 'unlimited', 'refcount', 'refcount_checkpoint', 'rda', 'mit', "
        "'matrix', 'battle'"
    )
