"""The Multiple Instantiation Table (MIT) of Raikin et al. (Intel patent).

The MIT is a small fully-associative structure allocated when a move is
eliminated.  Each entry holds a bit-vector over *architectural* registers:
a set bit means that architectural register currently maps to the tracked
physical register.  A bit is cleared when the corresponding architectural
register is redefined (i.e. when the redefining instruction commits), and
the physical register is freed when the whole vector is empty.

Because the algorithm is based on architectural names it only works when
*both* names sharing the register are known at the sharing point -- true
for move elimination (source and destination are visible in the move), but
not for SMB, where the store's source architectural register may already
have been re-renamed when the load is processed (Section 4.2).  The MIT
therefore rejects memory-bypass sharing requests, which is exactly the
limitation the paper uses it to illustrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tracker import ReclaimDecision, SharingTracker, TrackerConfig


@dataclass
class MitEntry:
    """One MIT entry: committed and pending architectural-register sets."""

    committed_archs: set[int] = field(default_factory=set)
    pending_pairs: list[tuple[int, int]] = field(default_factory=list)
    deferred_overwrites: int = 0

    def pending_archs(self) -> set[int]:
        """Architectural registers referenced only by in-flight eliminated moves."""
        pending: set[int] = set()
        for src_arch, dest_arch in self.pending_pairs:
            pending.add(src_arch)
            pending.add(dest_arch)
        return pending


class MultipleInstantiationTable(SharingTracker):
    """Architectural-name based sharing tracker (move elimination only)."""

    name = "mit"
    supports_memory_bypass = False
    supports_move_elimination = True
    checkpoint_recovery = True

    def __init__(self, config: TrackerConfig | None = None) -> None:
        super().__init__(config or TrackerConfig(scheme="mit", entries=8))
        self._entries: dict[int, MitEntry] = {}

    # -- SharingTracker interface -------------------------------------------------

    def try_share(self, preg: int, *, dest_arch: int, src_arch: int | None = None,
                  memory_bypass: bool = False) -> bool:
        """Record an eliminated move; SMB requests are always rejected."""
        self.stats.share_requests += 1
        if memory_bypass:
            self.stats.shares_rejected_unsupported += 1
            return False
        if src_arch is None:
            raise ValueError("the MIT needs the move's source architectural register")
        entry = self._entries.get(preg)
        if entry is None:
            if self.config.entries is not None and len(self._entries) >= self.config.entries:
                self.stats.shares_rejected_full += 1
                return False
            entry = MitEntry()
            self._entries[preg] = entry
        entry.pending_pairs.append((src_arch, dest_arch))
        self.stats.shares_granted += 1
        self._note_occupancy()
        return True

    def on_share_commit(self, preg: int) -> None:
        """The eliminated move committed: both of its architectural names are now architectural."""
        entry = self._entries.get(preg)
        if entry is None or not entry.pending_pairs:
            return
        src_arch, dest_arch = entry.pending_pairs.pop(0)
        entry.committed_archs.add(src_arch)
        entry.committed_archs.add(dest_arch)

    def reclaim(self, preg: int, arch_reg: int) -> ReclaimDecision:
        """Clear the redefined architectural register's bit; free when the vector empties."""
        self.stats.reclaim_checks += 1
        entry = self._entries.get(preg)
        if entry is None:
            return ReclaimDecision.FREE
        entry.committed_archs.discard(arch_reg)
        if not entry.committed_archs and not entry.pending_pairs:
            del self._entries[preg]
            self.stats.entries_freed += 1
            return ReclaimDecision.FREE
        entry.deferred_overwrites += 1
        self.stats.reclaim_deferred += 1
        return ReclaimDecision.KEEP

    def flush_to_committed(self) -> list[int]:
        """Drop in-flight eliminated moves; release registers their sharing was holding back."""
        self.stats.flush_recoveries += 1
        freed: list[int] = []
        for preg in list(self._entries):
            entry = self._entries[preg]
            entry.pending_pairs.clear()
            if not entry.committed_archs:
                if entry.deferred_overwrites:
                    freed.append(preg)
                del self._entries[preg]
                self.stats.entries_freed += 1
        self.stats.registers_freed_on_flush += len(freed)
        return freed

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> dict:
        """Serialise the live entries (see :meth:`SharingTracker.to_snapshot`).

        ``pending_pairs`` (in-flight eliminated moves) are empty with the
        pipeline drained but are captured anyway for generality.
        """
        return {
            "scheme": self.name,
            "entries": {
                preg: {
                    "committed_archs": sorted(entry.committed_archs),
                    "pending_pairs": [list(pair) for pair in entry.pending_pairs],
                    "deferred_overwrites": entry.deferred_overwrites,
                }
                for preg, entry in self._entries.items()
            },
        }

    def restore_snapshot(self, snapshot: dict) -> None:
        """Overwrite the live entries with a :meth:`to_snapshot` image."""
        if snapshot.get("scheme") != self.name:
            raise ValueError(
                f"tracker snapshot of scheme {snapshot.get('scheme')!r} cannot be "
                f"restored into {self.name!r}")
        self._entries = {
            int(preg): MitEntry(
                committed_archs=set(data["committed_archs"]),
                pending_pairs=[tuple(pair) for pair in data["pending_pairs"]],
                deferred_overwrites=data["deferred_overwrites"],
            )
            for preg, data in snapshot["entries"].items()
        }

    # -- introspection ------------------------------------------------------------

    def is_tracked(self, preg: int) -> bool:
        """Return ``True`` while ``preg`` has a MIT entry."""
        return preg in self._entries

    def occupancy(self) -> int:
        """Number of live MIT entries."""
        return len(self._entries)

    def storage_bits(self) -> int:
        """Per entry: a physical register tag plus one bit per architectural register."""
        entries = self.config.entries if self.config.entries is not None else 8
        tag_bits = max((self.config.num_phys_regs - 1).bit_length(), 1)
        return entries * (tag_bits + self.config.num_arch_regs)

    def checkpoint_bits(self) -> int:
        """Per checkpoint: the architectural bit-vector of every entry (Section 4.2)."""
        entries = self.config.entries if self.config.entries is not None else 8
        return entries * self.config.num_arch_regs
