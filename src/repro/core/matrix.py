"""Matrix-based reference tracking schemes (Roth; Battle et al.).

Roth's scheme keeps a 2D bit matrix whose rows are ROB entries and whose
columns are physical registers: a register is free when the OR of its
column is zero.  Battle et al. compress this to ``#preg x
max_sharers_per_register`` bits but checkpoint the whole structure.

Both schemes track every physical register, so they never limit sharing and
their *functional* reclaim behaviour matches an unlimited dual-counter
tracker; what distinguishes them in the paper is storage.  These classes
therefore reuse the unlimited tracking machinery and override the storage
model with the figures of Section 4.2 (about 7.8KB for a Haswell-sized
matrix, versus 480 bits for a 32-entry ISRB).
"""

from __future__ import annotations

from repro.core.isrb import InflightSharedRegisterBuffer
from repro.core.tracker import TrackerConfig


def _unlimited(config: TrackerConfig | None, scheme: str) -> TrackerConfig:
    base = config or TrackerConfig(scheme=scheme)
    return TrackerConfig(
        scheme=scheme,
        entries=None,
        counter_bits=None,
        checkpoints=base.checkpoints,
        num_phys_regs=base.num_phys_regs,
        num_arch_regs=base.num_arch_regs,
        rob_entries=base.rob_entries,
    )


class RothMatrixTracker(InflightSharedRegisterBuffer):
    """Roth's ROB-entries x physical-registers reference matrix."""

    name = "matrix"
    supports_memory_bypass = True
    supports_move_elimination = True
    checkpoint_recovery = False

    def __init__(self, config: TrackerConfig | None = None) -> None:
        super().__init__(_unlimited(config, "matrix"))

    def storage_bits(self) -> int:
        """``rob_entries x num_phys_regs`` bits (Section 4.2's 7.8KB figure for Haswell)."""
        return self.config.rob_entries * self.config.num_phys_regs

    def checkpoint_bits(self) -> int:
        """Recovering the matrix means clearing squashed rows, not checkpointing."""
        return 0


class BattleMatrixTracker(InflightSharedRegisterBuffer):
    """Battle et al.'s compressed matrix (``#preg x max_sharers`` bits, fully checkpointed)."""

    name = "battle"
    supports_memory_bypass = True
    supports_move_elimination = True
    checkpoint_recovery = True

    #: Maximum number of simultaneous sharers provisioned per register.
    max_sharers_per_register = 4

    def __init__(self, config: TrackerConfig | None = None) -> None:
        super().__init__(_unlimited(config, "battle"))

    def storage_bits(self) -> int:
        """``num_phys_regs x max_sharers`` bits."""
        return self.config.num_phys_regs * self.max_sharers_per_register

    def checkpoint_bits(self) -> int:
        """The entire matrix is checkpointed in a checkpointing processor (Section 4.2)."""
        return self.storage_bits()
