"""Classic per-physical-register reference counters.

This is the scheme most prior work on register sharing assumes (Jourdan et
al., RENO, Continuous Optimization): one counter per physical register,
incremented on every (re-)reference and decremented when a mapping is
destroyed.  It tracks every register, so it never limits sharing, but the
paper argues it is impractical because

* the counter array must support ``rename_width`` increments plus
  ``commit_width`` decrements of arbitrary registers every cycle, and
* its state cannot simply be checkpointed: recovering from a branch
  misprediction requires *sequentially walking* the squashed instructions
  and undoing their counter updates, lengthening the misprediction penalty
  (Section 4.2).

Functionally the counters resolve sharing exactly like an unlimited ISRB,
so this class reuses that machinery and overrides the *cost model*: storage
is one counter per physical register, recovery is a walk whose length is
the number of squashed instructions divided by the walk width, and
checkpointing would require saving every counter.
"""

from __future__ import annotations

from repro.core.isrb import InflightSharedRegisterBuffer
from repro.core.tracker import TrackerConfig


class ReferenceCounterTracker(InflightSharedRegisterBuffer):
    """Per-register reference counters with sequential-walk recovery."""

    name = "refcount"
    supports_memory_bypass = True
    supports_move_elimination = True
    checkpoint_recovery = False

    def __init__(self, config: TrackerConfig | None = None) -> None:
        base = config or TrackerConfig(scheme=type(self).name)
        # Every physical register has a counter, so capacity never limits
        # sharing; only the counter width matters functionally.
        unlimited = TrackerConfig(
            scheme=type(self).name,
            entries=None,
            counter_bits=base.counter_bits,
            checkpoints=base.checkpoints,
            num_phys_regs=base.num_phys_regs,
            num_arch_regs=base.num_arch_regs,
            rob_entries=base.rob_entries,
        )
        super().__init__(unlimited)

    def storage_bits(self) -> int:
        """One ``counter_bits``-wide counter per physical register."""
        counter_bits = self.config.counter_bits if self.config.counter_bits is not None else 32
        return self.config.num_phys_regs * counter_bits

    def checkpoint_bits(self) -> int:
        """What a checkpoint *would* cost: one counter per physical register.

        Section 4.2 points out that making reference counters recoverable
        through checkpoints would add "600+ bits" per checkpoint on a
        Haswell-sized register file; this method reports that figure for
        the storage-comparison benchmark.  The scheme is still modelled
        with walk-based recovery (``checkpoint_recovery`` is ``False``).
        """
        counter_bits = self.config.counter_bits if self.config.counter_bits is not None else 32
        return self.config.num_phys_regs * counter_bits


class CheckpointedReferenceCounterTracker(ReferenceCounterTracker):
    """Reference counters made recoverable by checkpointing every counter.

    This is the comparison point Section 4.2 dismisses on storage grounds:
    recovery becomes single cycle (like the ISRB), but each in-flight
    checkpoint must copy one counter per physical register, so the
    per-checkpoint storage is the full :meth:`checkpoint_bits` figure
    instead of the ISRB's 96 bits.  Functionally it behaves like an
    unlimited tracker; only the recovery latency and the cost model differ
    from :class:`ReferenceCounterTracker`.
    """

    name = "refcount_checkpoint"
    checkpoint_recovery = True
