"""Move elimination eligibility rules and bookkeeping (Section 2).

Move elimination maps the destination architectural register of a
register-to-register move onto the physical register of its source at
rename time, so the move never occupies a scheduler entry or an ALU.  On
x86_64 not every move is eligible (Section 2.1, following Intel's
optimisation manual):

* 64-bit and 32-bit register-to-register moves can be eliminated (a 32-bit
  move zeroes the upper half of the destination);
* 16-bit and 8-bit moves are *merge* micro-ops -- they preserve the upper
  bits of the destination -- and cannot be eliminated;
* zero-extending byte moves can be eliminated unless the source is the
  high byte of a 16-bit register (``AH``-style);
* the paper's evaluation only eliminates integer moves; recent Intel parts
  also eliminate SIMD moves, which the policy can optionally allow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.executor import DynamicOp
from repro.isa.opcodes import Opcode
from repro.isa.registers import RegClass


@dataclass(frozen=True)
class MoveEliminationPolicy:
    """Which moves are candidates for elimination.

    Attributes
    ----------
    enabled:
        Master switch; when ``False`` no move is ever a candidate.
    integer_moves:
        Eliminate 64/32-bit integer register moves (the paper's setting).
    zero_extend_moves:
        Eliminate zero-extending byte moves whose source is a low byte.
    fp_moves:
        Eliminate floating-point register moves (disabled in the paper's
        evaluation, available on recent Intel microarchitectures).
    """

    enabled: bool = True
    integer_moves: bool = True
    zero_extend_moves: bool = True
    fp_moves: bool = False

    def is_candidate(self, op: DynamicOp) -> bool:
        """Return ``True`` when ``op`` is a move that the policy may eliminate."""
        if not self.enabled or not op.is_move:
            return False
        if op.dest is None or not op.srcs:
            return False
        source = op.srcs[0]
        if op.dest == source:
            # A self-move carries no new mapping; let it execute normally.
            return False
        if op.opcode is Opcode.FMOV:
            return self.fp_moves and op.dest.reg_class is RegClass.FP
        if op.opcode is Opcode.MOVZX8:
            # Zero-extension overwrites the full destination, so it is
            # eliminable -- unless it reads the high byte of its source.
            return self.zero_extend_moves and not op.src_high8
        if op.opcode is Opcode.MOV:
            if not self.integer_moves:
                return False
            # 16- and 8-bit moves merge into the old destination value.
            return op.width in (64, 32)
        return False


@dataclass
class MoveEliminationStats:
    """Counters reported by Figure 5 (a/b)."""

    candidates: int = 0
    eliminated: int = 0
    rejected_by_tracker: int = 0
    renamed_instructions: int = 0

    def elimination_rate(self) -> float:
        """Fraction of *renamed* instructions that were eliminated (Figure 5b metric)."""
        if not self.renamed_instructions:
            return 0.0
        return self.eliminated / self.renamed_instructions

    def candidate_success_rate(self) -> float:
        """Fraction of candidate moves that were actually eliminated."""
        if not self.candidates:
            return 0.0
        return self.eliminated / self.candidates

    def as_dict(self) -> dict[str, float]:
        """Return the statistics as a plain dictionary."""
        return {
            "move_candidates": self.candidates,
            "moves_eliminated": self.eliminated,
            "moves_rejected_by_tracker": self.rejected_by_tracker,
            "elimination_rate": self.elimination_rate(),
        }
