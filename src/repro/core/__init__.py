"""The paper's contribution: register sharing, move elimination and SMB.

This package contains everything Sections 2-4 of the paper describe:

* :mod:`repro.core.tracker` -- the common interface every register
  reference-counting scheme implements, plus its storage/recovery cost
  model.
* :mod:`repro.core.isrb` -- the **Inflight Shared Register Buffer**, the
  paper's proposal: a small fully-associative buffer of
  ``(physical register, referenced, committed)`` entries using resettable
  up-counters, which makes the structure checkpointable and recovery
  single-cycle.
* :mod:`repro.core.refcount` -- classic per-physical-register reference
  counters (the scheme most prior work assumes), including the unlimited
  "ideal" variant, with sequential-walk recovery.
* :mod:`repro.core.matrix` -- Roth's 2D reference matrix and the
  Battle et al. compressed variant (storage comparison points).
* :mod:`repro.core.mit` -- Intel's Multiple Instantiation Table
  (architectural-name based, move elimination only).
* :mod:`repro.core.rda` -- Apple's Register Duplicate Array (counter per
  entry, checkpoints must be updated at retirement).
* :mod:`repro.core.move_elim` -- x86_64 move-elimination eligibility rules
  and bookkeeping.
* :mod:`repro.core.ddt` -- the Data Dependency Table and commit-side CSN
  tracking that identify store-load / load-load pairs at retirement.
* :mod:`repro.core.distance` -- the Instruction Distance predictors: the
  TAGE-like predictor proposed by the paper and the NoSQ-style two-table
  baseline.
* :mod:`repro.core.smb` -- the Speculative Memory Bypassing engine tying
  prediction, ROB lookup, sharing and validation together.
"""

from repro.core.ddt import CommitCsnTable, DataDependencyTable, DdtConfig
from repro.core.distance import (
    DistancePrediction,
    NoSqDistancePredictor,
    TageDistancePredictor,
    TageDistanceConfig,
    NoSqDistanceConfig,
    make_distance_predictor,
)
from repro.core.isrb import InflightSharedRegisterBuffer, IsrbConfig
from repro.core.matrix import BattleMatrixTracker, RothMatrixTracker
from repro.core.mit import MultipleInstantiationTable
from repro.core.move_elim import MoveEliminationPolicy, MoveEliminationStats
from repro.core.rda import RegisterDuplicateArray
from repro.core.refcount import ReferenceCounterTracker
from repro.core.smb import SmbConfig, SmbEngine
from repro.core.tracker import ReclaimDecision, SharingTracker, TrackerConfig, make_tracker

__all__ = [
    "SharingTracker",
    "TrackerConfig",
    "ReclaimDecision",
    "make_tracker",
    "InflightSharedRegisterBuffer",
    "IsrbConfig",
    "ReferenceCounterTracker",
    "RothMatrixTracker",
    "BattleMatrixTracker",
    "MultipleInstantiationTable",
    "RegisterDuplicateArray",
    "MoveEliminationPolicy",
    "MoveEliminationStats",
    "DataDependencyTable",
    "DdtConfig",
    "CommitCsnTable",
    "DistancePrediction",
    "TageDistancePredictor",
    "TageDistanceConfig",
    "NoSqDistancePredictor",
    "NoSqDistanceConfig",
    "make_distance_predictor",
    "SmbEngine",
    "SmbConfig",
]
